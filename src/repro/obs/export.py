"""Trace export: JSONL serialization and a human-readable timeline.

JSONL (one event object per line) is the interchange format: it appends
cheaply from long runs, greps well, and loads into any dataframe tool.
:func:`render_timeline` is the terminal view — an aligned, span-indented
listing that makes a protocol session readable top to bottom (see
``docs/OBSERVABILITY.md`` for a rendered SYNCS example).
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterable, Iterator, List, Optional, Union

from repro.obs import trace as _trace
from repro.obs.trace import SPAN_END, SPAN_START, TraceEvent

#: Distinct timeline glyphs for the reliability/correctness event kinds;
#: everything else renders its kind bare.  ``CONTROL`` is glyphed only
#: for the ``session_resume`` signal (ordinary HALT/SKIP control flow is
#: the protocols' routine vocabulary, not an incident marker).
TIMELINE_GLYPHS: Dict[str, str] = {
    _trace.FAULT: "✗",
    _trace.RETRY: "↻",
    _trace.TIMEOUT: "⏱",
    _trace.SESSION_ABORT: "⊘",
    _trace.INVARIANT_VIOLATION: "‼",
    _trace.READ_REPAIR: "⇄",
    _trace.CONSISTENCY_VIOLATION: "⚠",
}

#: Glyph for a ``control`` event carrying ``signal="session_resume"``.
RESUME_GLYPH = "⟲"

#: Per-op glyphs for ``store_op`` events, keyed on ``fields["op"]``.
STORE_OP_GLYPHS: Dict[str, str] = {
    "put": "⊕",
    "get": "⊙",
    "delete": "⊖",
}


def _kind_cell(event: TraceEvent) -> str:
    glyph = TIMELINE_GLYPHS.get(event.kind)
    if glyph is None and event.kind == _trace.STORE_OP:
        glyph = STORE_OP_GLYPHS.get(str(event.fields.get("op")))
    if (glyph is None and event.kind == _trace.CONTROL
            and event.fields.get("signal") == "session_resume"):
        glyph = RESUME_GLYPH
    return f"{glyph} {event.kind}" if glyph is not None else event.kind


def event_to_dict(event: TraceEvent) -> Dict[str, object]:
    """A compact JSON-ready dict (empty/zero attributes omitted)."""
    record: Dict[str, object] = {"seq": event.seq, "kind": event.kind}
    if event.span_id is not None:
        record["span"] = event.span_id
    if event.time is not None:
        record["time"] = event.time
    if event.party is not None:
        record["party"] = event.party
    if event.message is not None:
        record["message"] = event.message
    if event.bits:
        record["bits"] = event.bits
    if event.fields:
        record["fields"] = event.fields
    return record


def event_from_dict(record: Dict[str, object]) -> TraceEvent:
    """Inverse of :func:`event_to_dict`."""
    return TraceEvent(
        seq=int(record["seq"]),  # type: ignore[arg-type]
        kind=str(record["kind"]),
        span_id=record.get("span"),  # type: ignore[arg-type]
        time=record.get("time"),  # type: ignore[arg-type]
        party=record.get("party"),  # type: ignore[arg-type]
        message=record.get("message"),  # type: ignore[arg-type]
        bits=int(record.get("bits", 0)),  # type: ignore[arg-type]
        fields=dict(record.get("fields", {})),  # type: ignore[arg-type]
    )


def events_to_jsonl(events: Iterable[TraceEvent]) -> str:
    """The whole trace as newline-delimited JSON."""
    return "\n".join(json.dumps(event_to_dict(event), sort_keys=True)
                     for event in events)


def events_from_jsonl(lines: Union[str, Iterable[str]]) -> Iterator[TraceEvent]:
    """Parse JSONL text (or an iterable of lines) back into events."""
    if isinstance(lines, str):
        lines = lines.splitlines()
    for line in lines:
        line = line.strip()
        if line:
            yield event_from_dict(json.loads(line))


def write_jsonl(events: Iterable[TraceEvent],
                destination: Union[str, IO[str]]) -> int:
    """Write the trace to a path or open file; returns the event count."""
    text = events_to_jsonl(events)
    count = len(text.splitlines()) if text else 0
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text + ("\n" if text else ""))
    else:
        destination.write(text + ("\n" if text else ""))
    return count


def render_timeline(events: Iterable[TraceEvent], *,
                    max_events: Optional[int] = None,
                    kinds: Optional[Iterable[str]] = None) -> str:
    """An aligned, span-indented listing of the trace.

    Columns: sequence, simulated time (blank under the instant driver),
    party, kind (indented by span nesting depth; reliability events get
    distinct glyphs — ``✗`` fault, ``↻`` retry, ``⏱`` timeout, ``⊘``
    abort, ``⟲`` resume, ``‼`` invariant violation, ``⇄`` read repair,
    ``⚠`` consistency violation, and ``⊕``/``⊙``/``⊖`` for store
    put/get/delete), message type, bits, and the event's extra fields as
    ``key=value`` pairs.  ``kinds`` keeps only the named event kinds
    (``"session_resume"`` selects the ``control`` events carrying that
    signal; ``"put"``/``"get"``/``"delete"`` select the ``store_op``
    events with that ``op``); ``max_events`` truncates long traces with
    an elision line.
    """
    materialized = list(events)
    if kinds is not None:
        wanted = set(kinds)
        materialized = [
            event for event in materialized
            if event.kind in wanted
            or (event.kind == _trace.CONTROL
                and event.fields.get("signal") in wanted)
            or (event.kind == _trace.STORE_OP
                and event.fields.get("op") in wanted)]
    elided = 0
    if max_events is not None and len(materialized) > max_events:
        elided = len(materialized) - max_events
        materialized = materialized[:max_events]

    depth_by_span: Dict[int, int] = {}
    depth = 0
    rows: List[List[str]] = []
    for event in materialized:
        if event.kind == SPAN_START:
            depth_by_span[event.span_id] = depth  # type: ignore[index]
            indent = depth
            depth += 1
        elif event.kind == SPAN_END:
            depth = max(0, depth - 1)
            indent = depth_by_span.get(event.span_id, depth)  # type: ignore[arg-type]
        else:
            indent = depth
        extras = " ".join(f"{key}={value}"
                          for key, value in event.fields.items())
        rows.append([
            str(event.seq),
            "" if event.time is None else f"{event.time:.6f}",
            event.party or "",
            "  " * indent + _kind_cell(event),
            event.message or "",
            str(event.bits) if event.bits else "",
            extras,
        ])

    headers = ["seq", "time", "party", "kind", "message", "bits", "detail"]
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render(cells: List[str]) -> str:
        return "  ".join(cell.ljust(widths[i])
                         for i, cell in enumerate(cells)).rstrip()

    lines = [render(headers), render(["-" * width for width in widths])]
    lines.extend(render(row) for row in rows)
    if elided:
        lines.append(f"... {elided} more event(s) elided")
    return "\n".join(lines)


def trace_stats(events: Iterable[TraceEvent]) -> Dict[str, object]:
    """Size up a trace: per-kind counts, span count, longest spans.

    Span duration uses the events' simulated clock when both ends carry
    one; clockless spans (instant driver) fall back to a duration of 0
    and are ranked by their event count instead.  The result is a plain
    dict so ``repro trace --stats`` can print or JSON-dump it.
    """
    kinds: Dict[str, int] = {}
    spans: Dict[int, Dict[str, object]] = {}
    total = 0
    for event in events:
        total += 1
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
        if event.kind == SPAN_START:
            spans[event.span_id] = {
                "span_id": event.span_id,
                "name": event.fields.get("name", ""),
                "start": event.time, "end": None, "events": 0,
            }
        elif event.kind == SPAN_END and event.span_id in spans:
            spans[event.span_id]["end"] = event.time
        elif event.span_id in spans:
            spans[event.span_id]["events"] = \
                int(spans[event.span_id]["events"]) + 1
    ranked = []
    for span in spans.values():
        start, end = span["start"], span["end"]
        duration = (end - start if isinstance(start, float)
                    and isinstance(end, float) else 0.0)
        ranked.append({**span, "duration": duration})
    ranked.sort(key=lambda span: (span["duration"], span["events"]),
                reverse=True)
    return {"events": total, "kinds": dict(sorted(kinds.items())),
            "spans": len(spans), "longest_spans": ranked[:5]}


def format_trace_stats(stats: Dict[str, object]) -> str:
    """Terminal rendering of :func:`trace_stats` output."""
    lines = [f"{stats['events']} events across {stats['spans']} span(s)"]
    lines.append("events by kind:")
    kinds: Dict[str, int] = stats["kinds"]  # type: ignore[assignment]
    width = max((len(kind) for kind in kinds), default=4)
    for kind, count in sorted(kinds.items(), key=lambda item: -item[1]):
        lines.append(f"  {kind:<{width}}  {count}")
    longest = stats["longest_spans"]
    if longest:
        lines.append("longest spans:")
        for span in longest:  # type: ignore[union-attr]
            name = span["name"] or f"span#{span['span_id']}"
            lines.append(f"  {name}: {span['duration']:.6f}s, "
                         f"{span['events']} event(s)")
    return "\n".join(lines)
