"""Live cluster health monitoring and inline invariant checking.

Everything before this module answered questions *after* a run: read the
bench document, replay a JSONL trace.  A :class:`ClusterMonitor` answers
them *during* one — attach it to a :class:`~repro.net.cluster.ClusterRunner`
and it maintains, per site, live health gauges sampled on a simulated-time
cadence into time-series ring buffers:

* **frontier distance** — how many elements the site is behind the global
  maximum (the fleet-wide frontier over every site's every object);
* **Δ backlog** — the total number of missing updates (the sum of the
  per-element gaps, i.e. the |Δ| a full catch-up would ship);
* **conflict-bit density** — conflict-tagged elements / total elements;
* **segment count** — segments across the site's objects (SRV skip fuel);
* **retry/timeout/resume pressure** — cumulative ARQ reliability events
  attributed to the site, read live off the trace stream;
* **convergence score** — the scalar ``known / frontier`` in ``[0, 1]``;
  1.0 means the site holds every update any site has seen.

The monitor is an *observer*: it subscribes to the runner's
:class:`~repro.obs.trace.Tracer` event stream (owning a private tracer when
the runner has none), reads the runner's vectors in place, and never
mutates them — a run with ``monitor=None`` (the default) executes
byte-for-byte the unmonitored code path.

Inline invariant checkers
-------------------------

Three families of checks run continuously, not just in tests:

* **Accounting** — ``retransmitted == total − goodput`` and
  ``0 ≤ retransmitted ≤ total`` per direction, per session, and (at
  :meth:`~ClusterMonitor.finalize`) for the cluster totals against the
  sum of per-session stats.
* **Ancestor closure** — after every completed session the receiver's
  vectors must equal the element-wise max of their pre-session state and
  the sender's state: every applied prefix is causally closed and the
  transfer is complete.  (Checked under ``fanout=1``, where endpoint
  state is pinned for the session's duration; forfeit otherwise, exactly
  like the scheduling-independence guarantee.)
* **COMPARE spot checks** — on a seeded schedule of sessions, Algorithm
  1's O(1) verdict is re-derived against the element-wise oracle
  (:meth:`~repro.core.rotating.BasicRotatingVector.compare_full`).

Each failure raises a structured ``invariant_violation`` trace event
carrying the check name and evidence; under ``strict=True`` it also
raises :class:`~repro.errors.InvariantViolationError` immediately
(fail-fast), otherwise it is counted (``monitor.invariant_violations``)
and the run continues.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import InvariantViolationError
from repro.obs import trace as obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceEvent, Tracer

#: The per-site gauges every sample records, in documentation order.
GAUGE_NAMES = ("frontier_distance", "delta_backlog", "conflict_density",
               "segment_count", "pressure", "convergence_score")


@dataclass(frozen=True)
class MonitorConfig:
    """Knobs of one :class:`ClusterMonitor`.

    Attributes:
        cadence: simulated seconds between health samples (> 0).  Samples
            are taken lazily as observed events move the clock past each
            cadence boundary, so monitoring never schedules simulator
            events of its own and cannot perturb the run's drain order.
        ring_capacity: samples kept per (site, gauge) series; older
            samples fall off the ring.
        strict: fail fast — raise
            :class:`~repro.errors.InvariantViolationError` on the first
            violation instead of counting it.
        spot_check_period: run the COMPARE-vs-oracle spot check on every
            ``spot_check_period``-th session (0 disables it).
        spot_check_seed: seed of the spot checker's private object draw.
        check_accounting: enable the retransmitted/goodput identity
            checks.
        check_ancestor_closure: enable the post-session element-wise max
            oracle (automatically skipped when ``fanout > 1``).
    """

    cadence: float = 0.25
    ring_capacity: int = 1024
    strict: bool = False
    spot_check_period: int = 5
    spot_check_seed: int = 0
    check_accounting: bool = True
    check_ancestor_closure: bool = True

    def __post_init__(self) -> None:
        if self.cadence <= 0:
            raise ValueError(f"cadence must be > 0, got {self.cadence}")
        if self.ring_capacity < 1:
            raise ValueError(f"ring_capacity must be >= 1, "
                             f"got {self.ring_capacity}")
        if self.spot_check_period < 0:
            raise ValueError(f"spot_check_period must be >= 0, "
                             f"got {self.spot_check_period}")


class RingBuffer:
    """A fixed-capacity append-only series; oldest entries fall off."""

    __slots__ = ("capacity", "_items", "dropped")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._items: List[Tuple[float, float]] = []
        self.dropped = 0

    def append(self, time: float, value: float) -> None:
        """Push one ``(time, value)`` sample, evicting the oldest if full."""
        self._items.append((time, value))
        if len(self._items) > self.capacity:
            del self._items[0]
            self.dropped += 1

    def items(self) -> List[Tuple[float, float]]:
        """``(time, value)`` pairs, oldest first."""
        return list(self._items)

    def values(self) -> List[float]:
        """The sample values alone, oldest first."""
        return [value for _, value in self._items]

    def latest(self) -> Optional[float]:
        """The most recent sample value (None when empty)."""
        return self._items[-1][1] if self._items else None

    def __len__(self) -> int:
        return len(self._items)


@dataclass
class InvariantViolation:
    """Structured evidence of one failed inline check."""

    check: str
    message: str
    time: Optional[float] = None
    fields: Dict[str, Any] = field(default_factory=dict)


class ClusterMonitor:
    """Live health gauges + inline invariant checkers for one cluster run.

    One-shot like the runner it watches::

        monitor = ClusterMonitor(MonitorConfig(strict=True))
        runner = ClusterRunner(sites, config, monitor=monitor)
        result = runner.run(sessions, updates)
        print(render_dashboard(monitor))          # repro.obs.dashboard

    The runner calls :meth:`attach` when its run starts, the per-event
    hooks while it executes, and :meth:`finalize` when its simulator
    drains; user code only reads the series afterwards (or live, from
    another tracer subscriber).
    """

    def __init__(self, config: MonitorConfig = MonitorConfig(), *,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.config = config
        self.metrics = metrics
        #: The monitor's private tracer; a runner constructed without a
        #: tracer adopts it so reliability events exist to observe.
        self.tracer = Tracer()
        self.violations: List[InvariantViolation] = []
        self.samples = 0
        self.sites: List[str] = []
        self._runner: Any = None
        self._series: Dict[str, Dict[str, RingBuffer]] = {}
        self._pressure: Dict[str, Dict[str, int]] = {}
        self._session_snapshots: Dict[int, Tuple[List[Dict[str, int]],
                                                 List[Dict[str, int]]]] = {}
        self._session_bits = 0
        self._session_retransmitted = 0
        self._sessions_checked = 0
        self._next_sample: Optional[float] = None
        self._subscribed: Optional[Tracer] = None
        self._spot_rng = random.Random(config.spot_check_seed)
        self._finalized = False

    # -- lifecycle ---------------------------------------------------------------

    def attach(self, runner: Any) -> None:
        """Bind to a :class:`~repro.net.cluster.ClusterRunner` starting up.

        Called by the runner itself at the top of ``run()``; subscribes to
        its tracer, initializes every site's series, and takes the t=0
        sample.
        """
        if self._runner is not None:
            raise InvariantViolationError(
                "ClusterMonitor instances are one-shot; attach a fresh one "
                "per run")
        self._runner = runner
        self.sites = list(runner.sites)
        for site in self.sites:
            self._series[site] = {name: RingBuffer(self.config.ring_capacity)
                                  for name in GAUGE_NAMES}
            self._pressure[site] = {"retries": 0, "timeouts": 0,
                                    "aborts": 0, "resumes": 0}
        tracer = runner.tracer
        if tracer is not None:
            tracer.subscribe(self._on_trace_event)
            self._subscribed = tracer
        self._next_sample = self.config.cadence
        self._sample(0.0)

    def finalize(self) -> None:
        """Take the final sample, run cluster-level checks, unsubscribe."""
        if self._runner is None or self._finalized:
            return
        self._finalized = True
        now = self._now()
        self._sample(now)
        if self.config.check_accounting:
            totals = self._runner._totals
            if (totals.total_bits != self._session_bits
                    or totals.total_retransmitted_bits
                    != self._session_retransmitted):
                self._violate(
                    "accounting", now,
                    f"cluster totals disagree with the sum of sessions: "
                    f"totals {totals.total_bits}b/"
                    f"{totals.total_retransmitted_bits}b retransmitted vs "
                    f"summed {self._session_bits}b/"
                    f"{self._session_retransmitted}b",
                    level="cluster")
        if self._subscribed is not None:
            self._subscribed.unsubscribe(self._on_trace_event)
            self._subscribed = None

    # -- runner hooks ------------------------------------------------------------

    def on_session_start(self, record: Any) -> None:
        """A session is about to launch; snapshot endpoints for the oracle."""
        now = self._now()
        self._maybe_sample(now)
        runner = self._runner
        fanout_one = runner.config.fanout == 1
        if self.config.check_ancestor_closure and fanout_one:
            objs = self._session_objs(record)
            src_snap = [runner.objects[record.src][obj]
                        .to_version_vector().as_dict() for obj in objs]
            dst_snap = [runner.objects[record.dst][obj]
                        .to_version_vector().as_dict() for obj in objs]
            self._session_snapshots[record.index] = (src_snap, dst_snap)
        period = self.config.spot_check_period
        if period and fanout_one and record.index % period == 0:
            self._spot_check(record, now)

    def on_session_end(self, record: Any, result: Any) -> None:
        """A session completed; run the accounting and closure checks.

        The runner calls this *before* applying §2.2's reconciliation
        self-increment, so the element-wise-max oracle is exact.
        """
        now = self._now()
        stats = result.stats
        self._sessions_checked += 1
        self._session_bits += stats.total_bits
        self._session_retransmitted += stats.total_retransmitted_bits
        if self.config.check_accounting:
            self._check_accounting(record, stats, now)
        snapshot = self._session_snapshots.pop(record.index, None)
        if snapshot is not None:
            self._check_closure(record, snapshot, now)
        self._maybe_sample(now)

    def on_update(self, site: str, obj: int) -> None:
        """A local update applied; the clock may have crossed a boundary."""
        self._maybe_sample(self._now())

    # -- the trace stream --------------------------------------------------------

    def _on_trace_event(self, event: TraceEvent) -> None:
        kind = event.kind
        party = event.party
        if party in self._pressure:
            if kind == obs.RETRY:
                self._pressure[party]["retries"] += 1
            elif kind == obs.TIMEOUT:
                self._pressure[party]["timeouts"] += 1
            elif kind == obs.SESSION_ABORT:
                self._pressure[party]["aborts"] += 1
            elif (kind == obs.CONTROL
                    and event.fields.get("signal") == "session_resume"):
                self._pressure[party]["resumes"] += 1
        if event.time is not None and kind != obs.INVARIANT_VIOLATION:
            self._maybe_sample(event.time)

    # -- sampling ----------------------------------------------------------------

    def _now(self) -> float:
        sim = getattr(self._runner, "_sim", None)
        return sim.now if sim is not None else 0.0

    def _session_objs(self, record: Any) -> Tuple[int, ...]:
        """The object ids one session synchronizes (all, when unsharded)."""
        objs = getattr(record, "objects", None)
        if objs:
            return tuple(objs)
        return tuple(range(self._runner.config.n_objects))

    def _hosted(self, site: str) -> Tuple[int, ...]:
        """The object ids one site replicates (all, when unsharded)."""
        hosted = getattr(self._runner, "hosted_objects", None)
        if hosted is not None:
            return hosted(site)
        return tuple(range(self._runner.config.n_objects))

    def _maybe_sample(self, now: float) -> None:
        if self._next_sample is None or now < self._next_sample:
            return
        self._sample(now)
        cadence = self.config.cadence
        # Skip boundaries the clock already jumped over: the next sample
        # is due one cadence past *now*, not past the missed boundary.
        periods = int((now - self._next_sample) / cadence) + 1
        self._next_sample += periods * cadence

    def _sample(self, now: float) -> None:
        """Record one health sample for every site at simulated ``now``.

        The frontier for an object is the element-wise max over the sites
        *hosting* it (all sites, when unsharded).  A sharded site's
        convergence score is measured against the frontiers of its own
        hosted objects only — a site cannot be behind on objects it does
        not replicate.
        """
        runner = self._runner
        n_objects = runner.config.n_objects
        sharded = getattr(runner, "shards", None) is not None
        # The global frontier: per object, the element-wise max over its
        # hosting sites.
        frontiers: Dict[int, Dict[str, int]] = {
            obj: {} for obj in range(n_objects)}
        for site in self.sites:
            for obj in self._hosted(site):
                frontier = frontiers[obj]
                for element in runner.objects[site][obj].order:
                    if element.value > frontier.get(element.site, 0):
                        frontier[element.site] = element.value
        frontier_sums = {obj: sum(f.values())
                         for obj, f in frontiers.items()}
        frontier_total = sum(frontier_sums.values())
        for site in self.sites:
            hosted = self._hosted(site)
            distance = 0
            backlog = 0
            conflicted = 0
            elements = 0
            segments = 0
            for obj in hosted:
                vector = runner.objects[site][obj]
                known: Dict[str, int] = {}
                open_segment = False
                for element in vector.order:
                    known[element.site] = element.value
                    elements += 1
                    if element.conflict:
                        conflicted += 1
                    if element.segment:
                        segments += 1
                        open_segment = False
                    else:
                        open_segment = True
                if open_segment:
                    segments += 1  # the trailing implicit-terminator segment
                for elem_site, peak in frontiers[obj].items():
                    gap = peak - known.get(elem_site, 0)
                    if gap > 0:
                        distance += 1
                        backlog += gap
            pressure = self._pressure[site]
            pressure_total = (pressure["retries"] + pressure["timeouts"]
                              + pressure["resumes"])
            site_frontier = (sum(frontier_sums[obj] for obj in hosted)
                             if sharded else frontier_total)
            score = (1.0 if site_frontier == 0
                     else (site_frontier - backlog) / site_frontier)
            series = self._series[site]
            series["frontier_distance"].append(now, float(distance))
            series["delta_backlog"].append(now, float(backlog))
            series["conflict_density"].append(
                now, conflicted / elements if elements else 0.0)
            series["segment_count"].append(now, float(segments))
            series["pressure"].append(now, float(pressure_total))
            series["convergence_score"].append(now, score)
            if self.metrics is not None:
                for name in GAUGE_NAMES:
                    self.metrics.gauge(
                        f"monitor.{site}.{name}").set(
                            series[name].latest())
        self.samples += 1
        if self.metrics is not None:
            self.metrics.counter("monitor.samples").inc()

    # -- invariant checkers ------------------------------------------------------

    def _violate(self, check: str, now: float, message: str,
                 **fields: Any) -> None:
        violation = InvariantViolation(check=check, message=message,
                                       time=now, fields=dict(fields))
        self.violations.append(violation)
        tracer = self._runner.tracer if self._runner is not None else None
        if tracer is None:
            tracer = self.tracer
        tracer.event(obs.INVARIANT_VIOLATION, time=now, check=check,
                     message=message, **fields)
        if self.metrics is not None:
            self.metrics.counter("monitor.invariant_violations").inc()
            self.metrics.counter(
                f"monitor.invariant_violations.{check}").inc()
        if self.config.strict:
            raise InvariantViolationError(
                f"invariant {check!r} violated at t={now:.6f}: {message}")

    def _check_accounting(self, record: Any, stats: Any, now: float) -> None:
        """``retransmitted == total − goodput`` at every session level."""
        for direction_name in ("forward", "backward"):
            direction = getattr(stats, direction_name)
            if not 0 <= direction.retransmitted_bits <= direction.bits:
                self._violate(
                    "accounting", now,
                    f"session {record.src}->{record.dst} {direction_name} "
                    f"retransmitted_bits {direction.retransmitted_bits} "
                    f"outside [0, {direction.bits}]",
                    session=record.index, direction=direction_name)
            if (direction.goodput_bits
                    != direction.bits - direction.retransmitted_bits):
                self._violate(
                    "accounting", now,
                    f"session {record.src}->{record.dst} {direction_name} "
                    f"goodput {direction.goodput_bits} != bits "
                    f"{direction.bits} - retransmitted "
                    f"{direction.retransmitted_bits}",
                    session=record.index, direction=direction_name)
            if direction.retransmitted_messages > direction.messages:
                self._violate(
                    "accounting", now,
                    f"session {record.src}->{record.dst} {direction_name} "
                    f"retransmitted {direction.retransmitted_messages} of "
                    f"only {direction.messages} messages",
                    session=record.index, direction=direction_name)
        if (stats.total_retransmitted_bits
                != stats.total_bits - stats.total_goodput_bits):
            self._violate(
                "accounting", now,
                f"session {record.src}->{record.dst}: retransmitted "
                f"{stats.total_retransmitted_bits} != total "
                f"{stats.total_bits} - goodput {stats.total_goodput_bits}",
                session=record.index)

    def _check_closure(self, record: Any,
                       snapshot: Tuple[List[Dict[str, int]],
                                       List[Dict[str, int]]],
                       now: float) -> None:
        """The receiver's post-state must be max(pre-state, sender's state).

        Anything less means a torn (non-ancestor-closed) prefix was
        committed; anything else means phantom updates appeared.
        """
        src_snap, dst_snap = snapshot
        runner = self._runner
        for obj, src_state, dst_state in zip(self._session_objs(record),
                                             src_snap, dst_snap):
            expected = dict(dst_state)
            for site_name, value in src_state.items():
                if value > expected.get(site_name, 0):
                    expected[site_name] = value
            actual = (runner.objects[record.dst][obj]
                      .to_version_vector().as_dict())
            if actual != expected:
                self._violate(
                    "ancestor_closure", now,
                    f"session {record.src}->{record.dst} object {obj}: "
                    f"receiver state {actual} != element-wise max "
                    f"{expected} of its pre-session state and the sender",
                    session=record.index, object=obj)

    def _spot_check(self, record: Any, now: float) -> None:
        """Algorithm 1's O(1) verdict vs the element-wise oracle."""
        runner = self._runner
        objs = self._session_objs(record)
        obj = objs[self._spot_rng.randrange(len(objs))]
        dst_vector = runner.objects[record.dst][obj]
        src_vector = runner.objects[record.src][obj]
        fast = dst_vector.compare(src_vector)
        oracle = dst_vector.compare_full(src_vector)
        if self.metrics is not None:
            self.metrics.counter("monitor.spot_checks").inc()
        if fast is not oracle:
            self._violate(
                "compare_oracle", now,
                f"session {record.src}->{record.dst} object {obj}: "
                f"COMPARE said {fast.name}, element-wise oracle says "
                f"{oracle.name}",
                session=record.index, object=obj,
                compare=fast.name, oracle=oracle.name)

    # -- read API ----------------------------------------------------------------

    @property
    def violation_count(self) -> int:
        return len(self.violations)

    def series(self, site: str, name: str) -> List[Tuple[float, float]]:
        """One site's ``(time, value)`` series for gauge ``name``."""
        return self._series[site][name].items()

    def latest(self, site: str, name: str) -> Optional[float]:
        """The most recent sample of one site's gauge (None before any)."""
        return self._series[site][name].latest()

    def pressure(self, site: str) -> Dict[str, int]:
        """Cumulative retry/timeout/abort/resume counts for ``site``."""
        return dict(self._pressure[site])

    def worst_offenders(self, limit: int = 5) -> List[str]:
        """Sites ranked worst-first: lowest score, then largest backlog."""
        def sort_key(site: str) -> Tuple[float, float]:
            score = self.latest(site, "convergence_score")
            backlog = self.latest(site, "delta_backlog")
            return (score if score is not None else 1.0,
                    -(backlog if backlog is not None else 0.0))
        return sorted(self.sites, key=sort_key)[:limit]

    def health_summary(self) -> Dict[str, Any]:
        """A JSON-ready digest for benchmark documents and reports.

        When the watched runner carries a :class:`TopologySpec` the digest
        additionally rolls scores up per region; when it shards, a shard
        summary (group count and per-site load spread) is included.  Both
        keys are simply absent on classic single-region runs, so existing
        documents are unchanged.
        """
        final_scores = {site: self.latest(site, "convergence_score")
                        for site in self.sites}
        known = [score for score in final_scores.values()
                 if score is not None]
        summary: Dict[str, Any] = {
            "samples": self.samples,
            "sites": len(self.sites),
            "invariant_violations": self.violation_count,
            "sessions_checked": self._sessions_checked,
            "final_scores": final_scores,
            "min_final_score": min(known) if known else 1.0,
            "mean_final_score": (sum(known) / len(known)
                                 if known else 1.0),
        }
        topology = getattr(self._runner, "topology", None)
        if topology is not None:
            per_region: Dict[str, Any] = {}
            for region in topology.regions:
                scores = [final_scores[site]
                          for site in topology.region_sites(region.name)
                          if final_scores.get(site) is not None]
                per_region[region.name] = {
                    "sites": region.sites,
                    "min_final_score": min(scores) if scores else 1.0,
                    "mean_final_score": (sum(scores) / len(scores)
                                         if scores else 1.0),
                }
            summary["per_region"] = per_region
        shards = getattr(self._runner, "shards", None)
        if shards is not None:
            summary["shards"] = {
                "groups": len(shards.groups()),
                "objects": shards.n_objects,
                "load": shards.load_summary(),
            }
        return summary
