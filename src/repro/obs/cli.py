"""The ``repro monitor`` subcommand: run a fleet under live observation.

Runs the standard chaos fleet (the bench's E11 cell: 8 sites × 32
objects, batch 8, the standard drop/duplicate/reorder mix for the chosen
loss rate) once per protocol with a :class:`~repro.obs.monitor.ClusterMonitor`
attached, renders the terminal dashboard for each, and optionally writes
the Prometheus text dump, the OTLP-style JSON export (validated against
the checked-in schema before it hits disk), and the self-contained HTML
report.  ``--strict-invariants`` makes any inline-checker failure abort
the run with a non-zero exit instead of being counted.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import InvariantViolationError
from repro.net.channel import ChannelSpec
from repro.net.cluster import ClusterConfig, ClusterRunner
from repro.net.wire import Encoding
from repro.obs.dashboard import render_dashboard, write_html_report
from repro.obs.exporters import to_otlp, to_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitor import ClusterMonitor, MonitorConfig
from repro.obs.otlp_schema import validate_otlp
from repro.workload.cluster import (SessionRequest, chaos_faults,
                                    gossip_schedule, site_names,
                                    update_schedule)


def run_monitored_fleet(protocol: str, *, n_sites: int = 8,
                        n_objects: int = 32, batch_size: int = 8,
                        loss: float = 0.1, rounds: int = 3, seed: int = 0,
                        chaos_seed: int = 11, latency: float = 0.005,
                        bandwidth: float = 1_000_000.0,
                        monitor_config: MonitorConfig = MonitorConfig(),
                        metrics: Optional[MetricsRegistry] = None,
                        converge_sweep: bool = True
                        ) -> Tuple[ClusterMonitor, ClusterRunner, Any]:
    """One monitored chaos-fleet run; returns (monitor, runner, result).

    The workload is the benchmark's chaos cell — same schedules, same
    per-session fault seeds — so what the dashboard shows is the same
    regime the regression gate measures.  ``loss=0`` runs the fleet on a
    perfect link (useful for a fast smoke pass).

    ``converge_sweep`` appends a deterministic star sweep well after the
    gossip schedule: every site pushes into ``sites[0]`` (the hub, which
    then holds the global element-wise max), then the hub pushes back
    out.  Under ``fanout=1`` every sweep session shares the hub, so they
    serialize in request order and the fleet provably ends converged —
    the dashboard's convergence scores must all close at 1.0, which is
    itself a checkable property of the whole pipeline.
    """
    sites = site_names(n_sites)
    n_updates = max(1, round(n_sites * 2.0))
    faults = (chaos_faults(loss, latency=latency, seed=chaos_seed)
              if loss > 0 else None)
    channel = (ChannelSpec(latency=latency, bandwidth=bandwidth,
                           faults=faults)
               if faults is not None
               else ChannelSpec(latency=latency, bandwidth=bandwidth))
    cluster_config = ClusterConfig(
        protocol=protocol,
        channel=channel,
        encoding=Encoding.for_system(n_sites, max(16, n_updates)),
        n_objects=n_objects,
        batch_size=batch_size,
    )
    sessions = gossip_schedule(sites, rounds=rounds, period=1.0,
                               jitter=0.2, seed=seed)
    # BRV cannot reconcile concurrent vectors (Algorithm 2's
    # precondition), so its fleet takes single-writer updates.
    writers = [sites[0]] if protocol == "brv" else None
    updates = update_schedule(sites, n_updates=n_updates, interval=0.25,
                              seed=seed + 1, writers=writers,
                              n_objects=n_objects)
    if converge_sweep:
        hub = sites[0]
        last = max([request.at for request in sessions]
                   + [update.at for update in updates], default=0.0)
        # The 50-second idle margins let the gossip/gather queues drain
        # fully (simulated time is free) before the next phase begins.
        gather_at = last + 50.0
        scatter_at = gather_at + 2.0 * n_sites + 50.0
        sessions = list(sessions)
        sessions.extend(
            SessionRequest(src=site, dst=hub, at=gather_at + index * 0.01)
            for index, site in enumerate(sites[1:]))
        sessions.extend(
            SessionRequest(src=hub, dst=site, at=scatter_at + index * 0.01)
            for index, site in enumerate(sites[1:]))
    monitor = ClusterMonitor(monitor_config, metrics=metrics)
    runner = ClusterRunner(sites, cluster_config, metrics=metrics,
                           monitor=monitor)
    result = runner.run(sessions, updates)
    return monitor, runner, result


def monitor_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro monitor [--protocols ...] [--strict-invariants]``."""
    parser = argparse.ArgumentParser(
        prog="repro monitor",
        description="Run the chaos fleet under live health monitoring and "
                    "render a per-site dashboard.")
    parser.add_argument("--protocols", default="brv,crv,srv",
                        help="comma-separated protocol list "
                             "(default: brv,crv,srv)")
    parser.add_argument("--sites", type=int, default=8,
                        help="fleet size (default: 8)")
    parser.add_argument("--objects", type=int, default=32,
                        help="replicated objects per site (default: 32)")
    parser.add_argument("--batch", type=int, default=8,
                        help="objects per wire frame (default: 8)")
    parser.add_argument("--loss", type=float, default=0.1,
                        help="nominal loss rate of the chaos mix "
                             "(default: 0.1; 0 disables faults)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="gossip rounds (default: 3)")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload seed (default: 0)")
    parser.add_argument("--chaos-seed", type=int, default=11,
                        help="fault-injection seed (default: 11)")
    parser.add_argument("--cadence", type=float, default=0.25,
                        help="simulated seconds between health samples "
                             "(default: 0.25)")
    parser.add_argument("--strict-invariants", action="store_true",
                        help="abort on the first invariant violation "
                             "instead of counting")
    parser.add_argument("--prom", metavar="PATH", default=None,
                        help="write a Prometheus text-format dump")
    parser.add_argument("--otlp", metavar="PATH", default=None,
                        help="write an OTLP-style JSON export "
                             "(schema-validated)")
    parser.add_argument("--html", metavar="PATH", default=None,
                        help="write the self-contained HTML report")
    args = parser.parse_args(argv)

    protocols = [name.strip() for name in args.protocols.split(",")
                 if name.strip()]
    for name in protocols:
        if name not in ("brv", "crv", "srv"):
            print(f"unknown protocol {name!r}; expected brv, crv, srv")
            return 2
    monitor_config = MonitorConfig(cadence=args.cadence,
                                   strict=args.strict_invariants)
    metrics = MetricsRegistry()
    monitors: Dict[str, ClusterMonitor] = {}
    last_runner: Optional[ClusterRunner] = None
    total_violations = 0
    for protocol in protocols:
        print(f"=== monitor {protocol}: {args.sites} sites × "
              f"{args.objects} objects, loss {args.loss:g} ===")
        try:
            monitor, runner, result = run_monitored_fleet(
                protocol, n_sites=args.sites, n_objects=args.objects,
                batch_size=args.batch, loss=args.loss, rounds=args.rounds,
                seed=args.seed, chaos_seed=args.chaos_seed,
                monitor_config=monitor_config, metrics=metrics)
        except InvariantViolationError as error:
            print(f"ABORTED: {error}")
            return 1
        monitors[protocol] = monitor
        last_runner = runner
        total_violations += monitor.violation_count
        print(render_dashboard(monitor))
        print(f"{result.sessions} sessions, {result.total_bits} bits, "
              f"consistent={result.consistent()}, "
              f"sim {result.completion_time:.2f}s")
        print()
    if args.prom is not None:
        # One registry accumulated across all protocols; the monitor
        # gauges come from the last run (each dump is per-fleet state).
        text = to_prometheus(metrics, next(reversed(monitors.values()))
                             if monitors else None)
        with open(args.prom, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote Prometheus dump to {args.prom}")
    if args.otlp is not None:
        last_monitor = next(reversed(monitors.values())) if monitors else None
        document = to_otlp(last_runner.tracer if last_runner else None,
                           metrics, last_monitor)
        errors = validate_otlp(document)
        if errors:
            print(f"OTLP export failed schema validation: {errors[:3]}")
            return 1
        with open(args.otlp, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote OTLP JSON to {args.otlp} (schema-valid)")
    if args.html is not None:
        write_html_report(args.html, monitors)
        print(f"wrote HTML report to {args.html}")
    if total_violations:
        print(f"{total_violations} invariant violation(s) counted")
        return 1
    return 0
