"""The ``repro monitor`` subcommand: run a fleet under live observation.

Runs the standard chaos fleet (the bench's E11 cell: 8 sites × 32
objects, batch 8, the standard drop/duplicate/reorder mix for the chosen
loss rate) once per protocol with a :class:`~repro.obs.monitor.ClusterMonitor`
attached, renders the terminal dashboard for each, and optionally writes
the Prometheus text dump, the OTLP-style JSON export (validated against
the checked-in schema before it hits disk), and the self-contained HTML
report.  ``--strict-invariants`` makes any inline-checker failure abort
the run with a non-zero exit instead of being counted.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import InvariantViolationError
from repro.net.channel import ChannelSpec
from repro.net.cluster import ClusterConfig, ClusterRunner, launch_cluster
from repro.net.topology import LinkProfile, TopologySpec
from repro.net.wire import Encoding
from repro.obs.dashboard import render_dashboard, write_html_report
from repro.obs.exporters import to_otlp, to_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitor import ClusterMonitor, MonitorConfig
from repro.obs.otlp_schema import validate_otlp
from repro.obs.trace import SamplingPolicy, Tracer
from repro.workload.cluster import (SessionRequest, chaos_faults,
                                    gossip_schedule, site_names,
                                    update_schedule)
from repro.workload.epidemic import (closing_sweep, epidemic_schedule,
                                     sharded_update_schedule)


def run_monitored_fleet(protocol: str, *, n_sites: int = 8,
                        n_objects: int = 32, batch_size: int = 8,
                        loss: float = 0.1, rounds: int = 3, seed: int = 0,
                        chaos_seed: int = 11, latency: float = 0.005,
                        bandwidth: float = 1_000_000.0,
                        monitor_config: MonitorConfig = MonitorConfig(),
                        metrics: Optional[MetricsRegistry] = None,
                        converge_sweep: bool = True,
                        tracer: Optional[Tracer] = None
                        ) -> Tuple[ClusterMonitor, ClusterRunner, Any]:
    """One monitored chaos-fleet run; returns (monitor, runner, result).

    ``tracer`` overrides the monitor's private tracer (e.g. to apply a
    :class:`~repro.obs.trace.SamplingPolicy` for ``repro analyze``); the
    monitor still observes the live stream through its subscription.

    The workload is the benchmark's chaos cell — same schedules, same
    per-session fault seeds — so what the dashboard shows is the same
    regime the regression gate measures.  ``loss=0`` runs the fleet on a
    perfect link (useful for a fast smoke pass).

    ``converge_sweep`` appends a deterministic star sweep well after the
    gossip schedule: every site pushes into ``sites[0]`` (the hub, which
    then holds the global element-wise max), then the hub pushes back
    out.  Under ``fanout=1`` every sweep session shares the hub, so they
    serialize in request order and the fleet provably ends converged —
    the dashboard's convergence scores must all close at 1.0, which is
    itself a checkable property of the whole pipeline.
    """
    sites = site_names(n_sites)
    n_updates = max(1, round(n_sites * 2.0))
    faults = (chaos_faults(loss, latency=latency, seed=chaos_seed)
              if loss > 0 else None)
    channel = (ChannelSpec(latency=latency, bandwidth=bandwidth,
                           faults=faults)
               if faults is not None
               else ChannelSpec(latency=latency, bandwidth=bandwidth))
    cluster_config = ClusterConfig(
        protocol=protocol,
        channel=channel,
        encoding=Encoding.for_system(n_sites, max(16, n_updates)),
        n_objects=n_objects,
        batch_size=batch_size,
    )
    sessions = gossip_schedule(sites, rounds=rounds, period=1.0,
                               jitter=0.2, seed=seed)
    # BRV cannot reconcile concurrent vectors (Algorithm 2's
    # precondition), so its fleet takes single-writer updates.
    writers = [sites[0]] if protocol == "brv" else None
    updates = update_schedule(sites, n_updates=n_updates, interval=0.25,
                              seed=seed + 1, writers=writers,
                              n_objects=n_objects)
    if converge_sweep:
        hub = sites[0]
        last = max([request.at for request in sessions]
                   + [update.at for update in updates], default=0.0)
        # The 50-second idle margins let the gossip/gather queues drain
        # fully (simulated time is free) before the next phase begins.
        gather_at = last + 50.0
        scatter_at = gather_at + 2.0 * n_sites + 50.0
        sessions = list(sessions)
        sessions.extend(
            SessionRequest(src=site, dst=hub, at=gather_at + index * 0.01)
            for index, site in enumerate(sites[1:]))
        sessions.extend(
            SessionRequest(src=hub, dst=site, at=scatter_at + index * 0.01)
            for index, site in enumerate(sites[1:]))
    monitor = ClusterMonitor(monitor_config, metrics=metrics)
    runner = ClusterRunner(sites, cluster_config, metrics=metrics,
                           monitor=monitor, tracer=tracer)
    result = runner.run(sessions, updates)
    return monitor, runner, result


def run_monitored_region_fleet(protocol: str, *, regions: int = 3,
                               sites_per_region: int = 8,
                               n_objects: int = 64, replication: int = 3,
                               batch_size: int = 8, loss: float = 0.01,
                               rounds: int = 3, seed: int = 0,
                               chaos_seed: int = 11,
                               monitor_config: MonitorConfig
                               = MonitorConfig(),
                               metrics: Optional[MetricsRegistry] = None,
                               tracer: Optional[Tracer] = None
                               ) -> Tuple[ClusterMonitor, ClusterRunner,
                                          Any]:
    """One monitored *sharded multi-region* run via :func:`launch_cluster`.

    The multi-region analogue of :func:`run_monitored_fleet`: a
    ``TopologySpec.grid`` fleet (slow lossy WAN between regions, fast
    clean LAN inside them), consistent-hash sharding at the given
    replication factor, epidemic push/pull dissemination among shard
    peers, and the deterministic two-phase closing sweep — so the run
    provably ends with every replica group converged, which the
    dashboard's per-region scores make visible.
    """
    spec = TopologySpec.grid(
        regions, sites_per_region,
        intra=LinkProfile(latency=0.002, bandwidth=1_000_000.0),
        inter=LinkProfile(latency=0.04, bandwidth=250_000.0, loss=loss),
        replication=replication, seed=seed, chaos_seed=chaos_seed)
    n_sites = spec.n_sites
    n_updates = max(1, round(n_sites * 2.0))
    monitor = ClusterMonitor(monitor_config, metrics=metrics)
    runner = launch_cluster(
        spec, protocol=protocol, n_objects=n_objects,
        batch_size=batch_size,
        encoding=Encoding.for_system(n_sites, max(16, n_updates)),
        monitor=monitor, metrics=metrics, tracer=tracer)
    shards = runner.shards
    sessions = epidemic_schedule(spec, shards, rounds=rounds)
    updates = sharded_update_schedule(
        spec, shards, n_updates=n_updates, interval=0.25,
        leader_only=protocol == "brv", seed=seed + 1)
    last = max([request.at for request in sessions]
               + [update.at for update in updates], default=0.0)
    sessions = list(sessions) + closing_sweep(shards, start=last + 500.0)
    result = runner.run(sessions, updates)
    return monitor, runner, result


def monitor_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro monitor [--protocols ...] [--strict-invariants]``."""
    parser = argparse.ArgumentParser(
        prog="repro monitor",
        description="Run the chaos fleet under live health monitoring and "
                    "render a per-site dashboard.")
    parser.add_argument("--protocols", default="brv,crv,srv",
                        help="comma-separated protocol list "
                             "(default: brv,crv,srv)")
    parser.add_argument("--sites", type=int, default=8,
                        help="fleet size (default: 8); with --regions this "
                             "is the per-region site count")
    parser.add_argument("--objects", type=int, default=32,
                        help="replicated objects per site (default: 32)")
    parser.add_argument("--batch", type=int, default=8,
                        help="objects per wire frame (default: 8)")
    parser.add_argument("--regions", type=int, default=0,
                        help="run a sharded multi-region fleet with this "
                             "many regions instead of the classic "
                             "single-region chaos cell (default: 0 = "
                             "classic)")
    parser.add_argument("--replication", type=int, default=3,
                        help="replicas per object in multi-region mode "
                             "(default: 3)")
    parser.add_argument("--loss", type=float, default=0.1,
                        help="nominal loss rate of the chaos mix "
                             "(default: 0.1; 0 disables faults)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="gossip rounds (default: 3)")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload seed (default: 0)")
    parser.add_argument("--chaos-seed", type=int, default=11,
                        help="fault-injection seed (default: 11)")
    parser.add_argument("--cadence", type=float, default=0.25,
                        help="simulated seconds between health samples "
                             "(default: 0.25)")
    parser.add_argument("--strict-invariants", action="store_true",
                        help="abort on the first invariant violation "
                             "instead of counting")
    parser.add_argument("--prom", metavar="PATH", default=None,
                        help="write a Prometheus text-format dump")
    parser.add_argument("--otlp", metavar="PATH", default=None,
                        help="write an OTLP-style JSON export "
                             "(schema-validated)")
    parser.add_argument("--html", metavar="PATH", default=None,
                        help="write the self-contained HTML report")
    args = parser.parse_args(argv)

    protocols = [name.strip() for name in args.protocols.split(",")
                 if name.strip()]
    for name in protocols:
        if name not in ("brv", "crv", "srv"):
            print(f"unknown protocol {name!r}; expected brv, crv, srv")
            return 2
    monitor_config = MonitorConfig(cadence=args.cadence,
                                   strict=args.strict_invariants)
    metrics = MetricsRegistry()
    monitors: Dict[str, ClusterMonitor] = {}
    last_runner: Optional[ClusterRunner] = None
    total_violations = 0
    for protocol in protocols:
        try:
            if args.regions > 0:
                print(f"=== monitor {protocol}: {args.regions} regions × "
                      f"{args.sites} sites × {args.objects} objects, "
                      f"replication {args.replication}, "
                      f"loss {args.loss:g} ===")
                monitor, runner, result = run_monitored_region_fleet(
                    protocol, regions=args.regions,
                    sites_per_region=args.sites, n_objects=args.objects,
                    replication=args.replication, batch_size=args.batch,
                    loss=args.loss, rounds=args.rounds, seed=args.seed,
                    chaos_seed=args.chaos_seed,
                    monitor_config=monitor_config, metrics=metrics)
            else:
                print(f"=== monitor {protocol}: {args.sites} sites × "
                      f"{args.objects} objects, loss {args.loss:g} ===")
                monitor, runner, result = run_monitored_fleet(
                    protocol, n_sites=args.sites, n_objects=args.objects,
                    batch_size=args.batch, loss=args.loss,
                    rounds=args.rounds, seed=args.seed,
                    chaos_seed=args.chaos_seed,
                    monitor_config=monitor_config, metrics=metrics)
        except InvariantViolationError as error:
            print(f"ABORTED: {error}")
            return 1
        monitors[protocol] = monitor
        last_runner = runner
        total_violations += monitor.violation_count
        print(render_dashboard(
            monitor, max_sites=24 if len(monitor.sites) > 32 else None))
        print(f"{result.sessions} sessions, {result.total_bits} bits, "
              f"consistent={result.consistent()}, "
              f"sim {result.completion_time:.2f}s")
        print()
    if args.prom is not None:
        # One registry accumulated across all protocols; the monitor
        # gauges come from the last run (each dump is per-fleet state).
        text = to_prometheus(metrics, next(reversed(monitors.values()))
                             if monitors else None)
        with open(args.prom, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote Prometheus dump to {args.prom}")
    if args.otlp is not None:
        last_monitor = next(reversed(monitors.values())) if monitors else None
        document = to_otlp(last_runner.tracer if last_runner else None,
                           metrics, last_monitor)
        errors = validate_otlp(document)
        if errors:
            print(f"OTLP export failed schema validation: {errors[:3]}")
            return 1
        with open(args.otlp, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote OTLP JSON to {args.otlp} (schema-valid)")
    if args.html is not None:
        write_html_report(args.html, monitors)
        print(f"wrote HTML report to {args.html}")
    if total_violations:
        print(f"{total_violations} invariant violation(s) counted")
        return 1
    return 0


def _format_critical_path(document: Dict[str, Any]) -> str:
    """Terminal rendering of the critical-path hop chain."""
    from repro.obs.causal import CATEGORIES
    path = document.get("critical_path")
    if path is None:
        return "no timed events — no critical path"
    lines = [f"critical path: {path['elapsed']:.6f}s over "
             f"{len(path['hops'])} hop(s), {path['rounds']} round(s)"]
    end = path["end"]
    verdict = ("convergence" if document.get("converged")
               else "last event (run did NOT converge)")
    lines.append(f"  ends at {verdict}: seq {end['seq']} "
                 f"{end['kind']} @ {end['time']:.6f}s")
    for hop in path["hops"]:
        source, target = hop["from"], hop["to"]
        categories = ", ".join(
            f"{name}={value:.6f}"
            for name in CATEGORIES
            for value in [hop["categories"].get(name)]
            if value)
        lines.append(
            f"  {source['kind']:>15} → {target['kind']:<15} "
            f"[{hop['edge']:>8}] +{hop['elapsed']:.6f}s"
            + (f"  ({categories})" if categories else ""))
    return "\n".join(lines)


def _format_attribution(document: Dict[str, Any]) -> str:
    """Terminal rendering of the per-site/protocol attribution rollup."""
    from repro.obs.causal import CATEGORIES
    lines = ["latency attribution (all causal hops, per session):"]
    for summary in document.get("sessions", []):
        attribution = summary["attribution"]
        parts = ", ".join(f"{name}={attribution[name]:.6f}"
                          for name in CATEGORIES if attribution[name])
        lines.append(
            f"  #{summary['session']} "
            f"{summary.get('src') or '?'}→{summary.get('dst') or '?'}"
            f" ({summary.get('protocol') or '?'}): {parts or '0'}"
            f"  coverage={summary.get('coverage', 1.0):.3f}")
    for title, key in (("per destination site", "sites"),
                       ("per protocol", "protocols")):
        rollup = document.get(key) or {}
        if not rollup:
            continue
        lines.append(f"{title}:")
        for label in sorted(rollup):
            bucket = rollup[label]
            attribution = bucket["attribution"]
            parts = ", ".join(f"{name}={attribution[name]:.6f}"
                              for name in CATEGORIES if attribution[name])
            lines.append(f"  {label}: {bucket['sessions']} session(s), "
                         f"{bucket['bits']} bits, "
                         f"queue {bucket['queue_wait']:.6f}s; {parts or '0'}")
    return "\n".join(lines)


def analyze_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro analyze [trace.jsonl | --fleet] [...]``."""
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="Reconstruct the causal graph of a traced run and "
                    "report the convergence critical path, latency "
                    "attribution, and a waterfall rendering.")
    parser.add_argument("trace", nargs="?", default=None,
                        help="JSONL trace file (from `repro trace --jsonl` "
                             "or any tracer export); omit with --fleet")
    parser.add_argument("--fleet", action="store_true",
                        help="trace and analyze a seeded chaos fleet run "
                             "instead of reading a file")
    parser.add_argument("--protocol", default="srv",
                        choices=("brv", "crv", "srv"),
                        help="fleet protocol (default: srv)")
    parser.add_argument("--sites", type=int, default=8,
                        help="fleet size (default: 8)")
    parser.add_argument("--objects", type=int, default=32,
                        help="replicated objects per site (default: 32)")
    parser.add_argument("--batch", type=int, default=8,
                        help="objects per wire frame (default: 8)")
    parser.add_argument("--loss", type=float, default=0.1,
                        help="nominal chaos loss rate (default: 0.1; "
                             "0 disables faults)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="gossip rounds (default: 3)")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload seed (default: 0)")
    parser.add_argument("--chaos-seed", type=int, default=11,
                        help="fault-injection seed (default: 11)")
    parser.add_argument("--sample", action="store_true",
                        help="trace the fleet under deterministic "
                             "per-session sampling")
    parser.add_argument("--sample-head", type=int, default=32,
                        help="droppable events kept per session before "
                             "sampling kicks in (default: 32)")
    parser.add_argument("--sample-tail", type=int, default=8,
                        help="trailing droppable events recovered at "
                             "session end (default: 8)")
    parser.add_argument("--sample-rate", type=float, default=0.0,
                        help="keep probability for mid-session events "
                             "(default: 0)")
    parser.add_argument("--sample-seed", type=int, default=0,
                        help="sampling hash seed (default: 0)")
    parser.add_argument("--critical-path", action="store_true",
                        help="print the convergence critical path")
    parser.add_argument("--attribute", action="store_true",
                        help="print per-session/site/protocol attribution")
    parser.add_argument("--waterfall", action="store_true",
                        help="print the terminal waterfall")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the schema-validated analysis document")
    parser.add_argument("--html", metavar="PATH", default=None,
                        help="write the self-contained HTML waterfall")
    args = parser.parse_args(argv)

    from repro.obs.causal import analyze_events, validate_analysis
    from repro.obs.export import events_from_jsonl
    from repro.obs.waterfall import render_waterfall, write_waterfall_html

    if args.fleet == (args.trace is not None):
        print("analyze needs exactly one input: a JSONL trace file "
              "or --fleet")
        return 2
    if args.fleet:
        sampling = (SamplingPolicy(head=args.sample_head,
                                   tail=args.sample_tail,
                                   rate=args.sample_rate,
                                   seed=args.sample_seed)
                    if args.sample else None)
        tracer = Tracer(sampling=sampling)
        print(f"=== analyze fleet {args.protocol}: {args.sites} sites × "
              f"{args.objects} objects, loss {args.loss:g} ===")
        _monitor, _runner, result = run_monitored_fleet(
            args.protocol, n_sites=args.sites, n_objects=args.objects,
            batch_size=args.batch, loss=args.loss, rounds=args.rounds,
            seed=args.seed, chaos_seed=args.chaos_seed, tracer=tracer)
        tracer.flush_sampling()
        events = tracer.events
        print(f"fleet done: {result.sessions} sessions, "
              f"{result.total_bits} bits, {len(events)} trace events kept")
    else:
        try:
            with open(args.trace, "r", encoding="utf-8") as handle:
                events = list(events_from_jsonl(handle))
        except (OSError, ValueError, KeyError) as error:
            print(f"cannot load trace {args.trace!r}: {error}")
            return 2
    analysis = analyze_events(events)
    document = analysis.to_dict()

    show_all = not (args.critical_path or args.attribute or args.waterfall)
    print(f"{document['nodes']} causal nodes, {document['edges']} edges"
          + (f", {document['dropped_links']} transmit link(s) lost to "
             "sampling" if document["dropped_links"] else "")
          + f"; converged={'yes' if document['converged'] else 'NO'}")
    if not document["acyclic"]:  # pragma: no cover - defensive
        print("WARNING: causal graph has a back-edge; trace is corrupt")
    if args.critical_path or show_all:
        print(_format_critical_path(document))
    if args.attribute or show_all:
        print(_format_attribution(document))
    if args.waterfall or show_all:
        print(render_waterfall(document))
    if args.json is not None:
        errors = validate_analysis(document)
        if errors:  # pragma: no cover - schema and writer move together
            print(f"analysis failed schema validation: {errors[:3]}")
            return 1
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=False)
            handle.write("\n")
        print(f"wrote analysis JSON to {args.json} (schema-valid)")
    if args.html is not None:
        write_waterfall_html(args.html, document,
                             title=f"repro causal waterfall — "
                                   f"{args.protocol if args.fleet else args.trace}")
        print(f"wrote HTML waterfall to {args.html}")
    return 0
