"""Observability: structured tracing and metrics for the whole stack.

The paper's claims are quantitative — SYNCB is O(|Δ|), SYNCC is
O(|Δ|+|Γ|), SYNCS is O(|Δ|+γ) — and :mod:`repro.net.stats` reports only
per-session aggregates.  This package adds the per-event window:

* :mod:`repro.obs.trace` — a :class:`~repro.obs.trace.Tracer` that records
  structured :class:`~repro.obs.trace.TraceEvent` rows (one span per sync
  session, one event per message and per semantic step: Δ-element,
  Γ-retransmit, γ-skip, conflict-bit, HALT/SKIP control traffic).  Every
  instrumented entry point takes ``tracer=None``; the ``None`` default is
  the zero-overhead off switch, so untraced runs price traffic exactly as
  before.
* :mod:`repro.obs.metrics` — a process-local
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges, and
  histograms with ``snapshot()``/``merge()`` for multi-run aggregation.
* :mod:`repro.obs.export` — JSONL trace export and a human-readable
  timeline renderer (``python -m repro trace <demo>`` drives both).
"""

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               observe_session)
from repro.obs.trace import Span, TraceEvent, Tracer
from repro.obs.export import (events_from_jsonl, events_to_jsonl,
                              render_timeline, write_jsonl)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TraceEvent",
    "Tracer",
    "events_from_jsonl",
    "events_to_jsonl",
    "observe_session",
    "render_timeline",
    "write_jsonl",
]
