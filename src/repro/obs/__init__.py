"""Observability: structured tracing and metrics for the whole stack.

The paper's claims are quantitative — SYNCB is O(|Δ|), SYNCC is
O(|Δ|+|Γ|), SYNCS is O(|Δ|+γ) — and :mod:`repro.net.stats` reports only
per-session aggregates.  This package adds the per-event window:

* :mod:`repro.obs.trace` — a :class:`~repro.obs.trace.Tracer` that records
  structured :class:`~repro.obs.trace.TraceEvent` rows (one span per sync
  session, one event per message and per semantic step: Δ-element,
  Γ-retransmit, γ-skip, conflict-bit, HALT/SKIP control traffic).  Every
  instrumented entry point takes ``tracer=None``; the ``None`` default is
  the zero-overhead off switch, so untraced runs price traffic exactly as
  before.
* :mod:`repro.obs.metrics` — a process-local
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges, and
  histograms with ``snapshot()``/``merge()`` for multi-run aggregation.
* :mod:`repro.obs.export` — JSONL trace export and a human-readable
  timeline renderer (``python -m repro trace <demo>`` drives both).
* :mod:`repro.obs.monitor` — a :class:`~repro.obs.monitor.ClusterMonitor`
  of live per-site health gauges (frontier distance, Δ backlog,
  conflict density, segments, pressure, convergence score) plus inline
  invariant checkers that run *during* a cluster run.
* :mod:`repro.obs.exporters` — Prometheus text format and an OTLP-style
  JSON spans/metrics dump (schema in :mod:`repro.obs.otlp_schema`).
* :mod:`repro.obs.dashboard` — the terminal sparkline dashboard and the
  self-contained HTML report behind ``python -m repro monitor``.
* :mod:`repro.obs.causal` — the causal event graph reconstructed from a
  trace: happens-before edges, the convergence critical path, and exact
  per-category latency attribution (``python -m repro analyze``).
* :mod:`repro.obs.waterfall` — terminal and self-contained-HTML
  waterfall renderings of a causal analysis.
"""

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               observe_session)
from repro.obs.trace import SamplingPolicy, Span, TraceEvent, Tracer
from repro.obs.export import (events_from_jsonl, events_to_jsonl,
                              render_timeline, trace_stats, write_jsonl)
from repro.obs.causal import (Analysis, CausalGraph, analyze_events,
                              analyze_tracer, validate_analysis)
from repro.obs.waterfall import (render_waterfall, render_waterfall_html,
                                 write_waterfall_html)
from repro.obs.monitor import (ClusterMonitor, InvariantViolation,
                               MonitorConfig)
from repro.obs.exporters import to_otlp, to_prometheus
from repro.obs.otlp_schema import OTLP_SCHEMA, validate_otlp
from repro.obs.dashboard import (render_dashboard, render_html_report,
                                 sparkline, write_html_report)

__all__ = [
    "Analysis",
    "CausalGraph",
    "ClusterMonitor",
    "Counter",
    "Gauge",
    "Histogram",
    "InvariantViolation",
    "MetricsRegistry",
    "MonitorConfig",
    "OTLP_SCHEMA",
    "SamplingPolicy",
    "Span",
    "TraceEvent",
    "Tracer",
    "analyze_events",
    "analyze_tracer",
    "events_from_jsonl",
    "events_to_jsonl",
    "observe_session",
    "render_dashboard",
    "render_html_report",
    "render_timeline",
    "render_waterfall",
    "render_waterfall_html",
    "sparkline",
    "to_otlp",
    "to_prometheus",
    "trace_stats",
    "validate_analysis",
    "validate_otlp",
    "write_html_report",
    "write_jsonl",
    "write_waterfall_html",
]
