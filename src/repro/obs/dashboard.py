"""Terminal dashboard and static HTML report over a ClusterMonitor.

The terminal view is a per-site table of unicode sparklines — one row
per site, one column per health gauge — followed by a worst-offender
ranking (lowest convergence score first) and the invariant-checker
verdict.  The HTML report is fully self-contained (inline CSS, inline
SVG polylines, zero external assets), so CI can archive it as a single
artifact and a browser anywhere can open it.

The same shapes exist for the store's
:class:`~repro.obs.consistency.ConsistencyMonitor` —
:func:`render_consistency_dashboard` (per-site divergence sparklines,
the per-key worst-offender panel, the session-guarantee verdict) and
:func:`render_consistency_html_report`.
"""

from __future__ import annotations

import html
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.consistency import CONSISTENCY_GAUGE_NAMES, ConsistencyMonitor
from repro.obs.monitor import GAUGE_NAMES, ClusterMonitor

#: Eight-level block ramp, lowest to highest.
SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: Gauge -> short column header for the terminal table.
_HEADERS = {
    "frontier_distance": "frontier",
    "delta_backlog": "backlog",
    "conflict_density": "conflict",
    "segment_count": "segments",
    "pressure": "pressure",
    "convergence_score": "converge",
}

#: Consistency gauge -> short column header for the terminal table.
_CONSISTENCY_HEADERS = {
    "sibling_population": "siblings",
    "frontier_distance": "frontier",
    "anti_entropy_lag": "ae lag",
    "replication_lag": "repl lag",
}


def sparkline(values: Sequence[float], width: int = 16) -> str:
    """``values`` as a fixed-width unicode sparkline.

    Longer series are resampled by bucketing (each output char covers an
    equal share of the input, showing its max — spikes must not vanish);
    shorter ones are left-padded with spaces.  A flat series renders at
    its level: all-zero stays low, a constant positive renders high.
    """
    if not values:
        return " " * width
    if len(values) > width:
        buckets: List[float] = []
        for index in range(width):
            start = index * len(values) // width
            end = max(start + 1, (index + 1) * len(values) // width)
            buckets.append(max(values[start:end]))
        values = buckets
    low = min(values)
    high = max(values)
    span = high - low
    chars = []
    for value in values:
        if span == 0:
            level = 7 if high > 0 else 0
        else:
            level = int((value - low) / span * 7)
        chars.append(SPARK_CHARS[level])
    return "".join(chars).rjust(width)


def render_dashboard(monitor: ClusterMonitor, *, width: int = 16,
                     offenders: int = 5,
                     max_sites: Optional[int] = None) -> str:
    """The terminal dashboard: sparkline table + ranking + verdict.

    ``max_sites`` truncates the per-site sparkline table (worst offenders
    and the rollups below still cover the whole fleet) — pass it when
    rendering a 1000-site fleet to a terminal.  Multi-region monitors
    additionally get a per-region health table and, when sharded, a
    one-line shard-load summary.
    """
    lines: List[str] = []
    site_width = max([len(site) for site in monitor.sites] + [4])
    header = "  ".join([_HEADERS[name].center(width) for name in GAUGE_NAMES])
    lines.append(f"{'site'.ljust(site_width)}  {header}")
    shown = (monitor.sites if max_sites is None
             else monitor.sites[:max_sites])
    for site in shown:
        cells = []
        for name in GAUGE_NAMES:
            cells.append(sparkline(
                [value for _, value in monitor.series(site, name)], width))
        lines.append(f"{site.ljust(site_width)}  " + "  ".join(cells))
    if len(shown) < len(monitor.sites):
        lines.append(f"{'…'.ljust(site_width)}  "
                     f"({len(monitor.sites) - len(shown)} more sites)")
    summary = monitor.health_summary()
    per_region = summary.get("per_region")
    if per_region:
        lines.append("")
        name_width = max([len(name) for name in per_region] + [6])
        lines.append(f"{'region'.ljust(name_width)}  sites  min score  "
                     f"mean score")
        for name, stats in per_region.items():
            lines.append(
                f"{name.ljust(name_width)}  {stats['sites']:>5}  "
                f"{stats['min_final_score']:>9.3f}  "
                f"{stats['mean_final_score']:>10.3f}")
    shard_stats = summary.get("shards")
    if shard_stats:
        load = shard_stats["load"]
        lines.append("")
        lines.append(
            f"shards: {shard_stats['groups']} groups over "
            f"{shard_stats['objects']} objects · per-site load "
            f"min={load['min']:.0f} mean={load['mean']:.1f} "
            f"max={load['max']:.0f}")
    lines.append("")
    lines.append(f"worst offenders (of {len(monitor.sites)} sites, "
                 f"lowest convergence first):")
    for rank, site in enumerate(monitor.worst_offenders(offenders), 1):
        score = monitor.latest(site, "convergence_score")
        backlog = monitor.latest(site, "delta_backlog")
        pressure = monitor.pressure(site)
        pressure_total = (pressure["retries"] + pressure["timeouts"]
                          + pressure["resumes"])
        lines.append(
            f"  {rank}. {site.ljust(site_width)} "
            f"score={score if score is not None else 'n/a':>6} "
            f"backlog={int(backlog) if backlog is not None else 0:>5} "
            f"pressure={pressure_total}")
    lines.append("")
    if monitor.violation_count:
        lines.append(f"INVARIANT VIOLATIONS: {monitor.violation_count}")
        for violation in monitor.violations[:10]:
            stamp = (f"t={violation.time:.3f}" if violation.time is not None
                     else "t=?")
            lines.append(f"  [{violation.check}] {stamp} "
                         f"{violation.message}")
    else:
        lines.append(f"invariants: all checks passed "
                     f"({monitor.samples} samples, "
                     f"{monitor.health_summary()['sessions_checked']} "
                     f"sessions checked)")
    return "\n".join(lines)


# -- HTML report -------------------------------------------------------------------


def _svg_series(series: List[Tuple[float, float]], *, width: int = 320,
                height: int = 60, color: str = "#2563eb",
                y_max: Optional[float] = None) -> str:
    """One time series as a self-contained inline SVG polyline."""
    if not series:
        return (f'<svg width="{width}" height="{height}" '
                f'class="series"></svg>')
    times = [time for time, _ in series]
    values = [value for _, value in series]
    t_low, t_high = min(times), max(times)
    t_span = (t_high - t_low) or 1.0
    v_high = y_max if y_max is not None else max(max(values), 1e-9)
    v_low = 0.0 if y_max is not None else min(min(values), 0.0)
    v_span = (v_high - v_low) or 1.0
    points = " ".join(
        f"{(time - t_low) / t_span * (width - 4) + 2:.1f},"
        f"{height - 2 - (value - v_low) / v_span * (height - 4):.1f}"
        for time, value in series)
    return (f'<svg width="{width}" height="{height}" class="series" '
            f'viewBox="0 0 {width} {height}">'
            f'<polyline fill="none" stroke="{color}" stroke-width="1.5" '
            f'points="{points}"/></svg>')


_HTML_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem; color: #111; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; }
th, td { padding: 4px 10px; border-bottom: 1px solid #ddd;
         text-align: left; font-size: 0.85rem; }
th { background: #f3f4f6; }
.num { text-align: right; font-variant-numeric: tabular-nums; }
.ok { color: #15803d; font-weight: 600; }
.bad { color: #b91c1c; font-weight: 600; }
.series { background: #f9fafb; border: 1px solid #e5e7eb; }
.meta { color: #555; font-size: 0.8rem; }
"""


def render_html_report(monitors: Dict[str, ClusterMonitor], *,
                       title: str = "repro convergence observatory"
                       ) -> str:
    """A self-contained static HTML report over one monitor per label.

    ``monitors`` maps a label (typically the protocol name) to its run's
    monitor; each gets a convergence-score section (one SVG series per
    site, y pinned to [0, 1] so 1.0 reads as "touching the top"), a
    final-gauges table, and its invariant verdict.
    """
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
    ]
    for label, monitor in monitors.items():
        summary = monitor.health_summary()
        verdict = ("all invariants held"
                   if not monitor.violation_count
                   else f"{monitor.violation_count} invariant "
                        f"violation(s)")
        verdict_class = "ok" if not monitor.violation_count else "bad"
        parts.append(f"<h2>{html.escape(label)}</h2>")
        parts.append(
            f'<p class="meta">{summary["sites"]} sites · '
            f'{summary["samples"]} samples · '
            f'{summary["sessions_checked"]} sessions checked · '
            f'<span class="{verdict_class}">{verdict}</span> · '
            f'min final score '
            f'{summary["min_final_score"]:.3f}</p>')
        parts.append("<table><tr><th>site</th>"
                     "<th>convergence score</th>"
                     "<th class=num>final</th>"
                     "<th class=num>backlog</th>"
                     "<th class=num>segments</th>"
                     "<th class=num>conflict</th>"
                     "<th class=num>pressure</th></tr>")
        for site in monitor.sites:
            score_series = monitor.series(site, "convergence_score")
            score = monitor.latest(site, "convergence_score")
            backlog = monitor.latest(site, "delta_backlog") or 0
            segments = monitor.latest(site, "segment_count") or 0
            conflict = monitor.latest(site, "conflict_density") or 0.0
            pressure = monitor.pressure(site)
            pressure_total = (pressure["retries"] + pressure["timeouts"]
                              + pressure["resumes"])
            score_text = f"{score:.3f}" if score is not None else "n/a"
            score_class = ("ok" if score is not None and score >= 1.0
                           else "bad")
            parts.append(
                f"<tr><td>{html.escape(site)}</td>"
                f"<td>{_svg_series(score_series, y_max=1.0)}</td>"
                f'<td class="num {score_class}">{score_text}</td>'
                f'<td class="num">{int(backlog)}</td>'
                f'<td class="num">{int(segments)}</td>'
                f'<td class="num">{conflict:.3f}</td>'
                f'<td class="num">{pressure_total}</td></tr>')
        parts.append("</table>")
        if monitor.violation_count:
            parts.append("<h3>violations</h3><ul>")
            for violation in monitor.violations[:50]:
                parts.append(f"<li><code>{html.escape(violation.check)}"
                             f"</code> {html.escape(violation.message)}"
                             f"</li>")
            parts.append("</ul>")
    parts.append("</body></html>")
    return "\n".join(parts)


def write_html_report(path: str, monitors: Dict[str, ClusterMonitor],
                      **kwargs: Any) -> None:
    """Render and write the report to ``path`` (UTF-8)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_html_report(monitors, **kwargs))


# -- consistency observatory views -------------------------------------------------


def render_consistency_dashboard(monitor: ConsistencyMonitor, *,
                                 width: int = 16, offenders: int = 5,
                                 max_sites: Optional[int] = None) -> str:
    """The store consistency dashboard: divergence sparklines per site,
    visibility percentiles, the per-key worst-offender panel, and the
    session-guarantee verdict."""
    lines: List[str] = []
    site_width = max([len(site) for site in monitor.sites] + [4])
    header = "  ".join(_CONSISTENCY_HEADERS[name].center(width)
                       for name in CONSISTENCY_GAUGE_NAMES)
    lines.append(f"{'site'.ljust(site_width)}  {header}")
    shown = (monitor.sites if max_sites is None
             else monitor.sites[:max_sites])
    for site in shown:
        cells = [sparkline([value for _, value in monitor.series(site, name)],
                           width)
                 for name in CONSISTENCY_GAUGE_NAMES]
        lines.append(f"{site.ljust(site_width)}  " + "  ".join(cells))
    if len(shown) < len(monitor.sites):
        lines.append(f"{'…'.ljust(site_width)}  "
                     f"({len(monitor.sites) - len(shown)} more sites)")
    summary = monitor.summary()
    w_k = summary["w_k_seconds"]
    w_all = summary["w_all_seconds"]
    lines.append("")
    lines.append(
        f"write visibility (k={summary['visibility_k']}, "
        f"{summary['writes_tracked']} writes, "
        f"{summary['writes_pending']} pending):")
    for label, quantiles in (("w_k", w_k), ("w_all", w_all)):
        lines.append(
            f"  {label:<6} p50={quantiles['p50'] * 1000:8.3f}ms  "
            f"p90={quantiles['p90'] * 1000:8.3f}ms  "
            f"p99={quantiles['p99'] * 1000:8.3f}ms  "
            f"p999={quantiles['p999'] * 1000:8.3f}ms")
    lines.append(
        f"replication lag: max "
        f"{summary['max_replication_lag_seconds'] * 1000:.3f}ms")
    per_region = summary.get("per_region")
    if per_region:
        lines.append("")
        name_width = max([len(name) for name in per_region] + [6])
        lines.append(f"{'region'.ljust(name_width)}  sites  "
                     f"max lag ms  mean lag ms")
        for name, stats in per_region.items():
            lines.append(
                f"{name.ljust(name_width)}  {stats['sites']:>5}  "
                f"{stats['max_replication_lag_seconds'] * 1000:>10.3f}  "
                f"{stats['mean_replication_lag_seconds'] * 1000:>11.3f}")
    lines.append("")
    lines.append("worst keys (violations, max siblings, spread):")
    for rank, entry in enumerate(monitor.worst_keys(offenders), 1):
        lines.append(
            f"  {rank}. {entry['key']:<12} "
            f"violations={entry['violations']:>4} "
            f"siblings={entry['max_siblings']:>3} "
            f"spread={entry['staleness_spread_seconds'] * 1000:.3f}ms")
    lines.append("")
    audit = summary["audit"]
    if monitor.violation_count:
        lines.append(
            f"CONSISTENCY VIOLATIONS: {monitor.violation_count} "
            f"(ryw={audit['read_your_writes']} "
            f"monotonic={audit['monotonic_reads']} "
            f"resurrection={audit['resurrections']}) over "
            f"{audit['ops_audited']} audited ops, "
            f"{audit['clients_affected']} clients affected")
        for violation in monitor.violations[:10]:
            stamp = (f"t={violation.time:.3f}" if violation.time is not None
                     else "t=?")
            lines.append(f"  [{violation.check}] {stamp} "
                         f"{violation.message}")
    else:
        lines.append(f"session guarantees: all checks passed "
                     f"({audit['ops_audited']} ops audited, "
                     f"{monitor.samples} samples)")
    return "\n".join(lines)


def render_consistency_html_report(
        monitors: Dict[str, ConsistencyMonitor], *,
        title: str = "repro store consistency observatory") -> str:
    """A self-contained static HTML report over one consistency monitor
    per label: replication-lag series per site, visibility percentiles,
    the per-key worst-offender panel, and the audit verdict."""
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
    ]
    for label, monitor in monitors.items():
        summary = monitor.summary()
        audit = summary["audit"]
        verdict = ("all session guarantees held"
                   if not monitor.violation_count
                   else f"{monitor.violation_count} consistency "
                        f"violation(s)")
        verdict_class = "ok" if not monitor.violation_count else "bad"
        w_all = summary["w_all_seconds"]
        parts.append(f"<h2>{html.escape(label)}</h2>")
        parts.append(
            f'<p class="meta">{summary["sites"]} sites · '
            f'{summary["samples"]} samples · '
            f'{summary["writes_tracked"]} writes tracked · '
            f'w_all p99 {w_all["p99"] * 1000:.3f}ms / '
            f'p999 {w_all["p999"] * 1000:.3f}ms · '
            f'{audit["ops_audited"]} ops audited · '
            f'<span class="{verdict_class}">{verdict}</span></p>')
        parts.append("<table><tr><th>site</th>"
                     "<th>replication lag</th>"
                     "<th class=num>final lag s</th>"
                     "<th class=num>ae lag s</th>"
                     "<th class=num>siblings</th>"
                     "<th class=num>frontier</th></tr>")
        for site in monitor.sites:
            lag_series = monitor.series(site, "replication_lag")
            lag = monitor.latest(site, "replication_lag") or 0.0
            ae_lag = monitor.latest(site, "anti_entropy_lag") or 0.0
            siblings = monitor.latest(site, "sibling_population") or 0
            frontier = monitor.latest(site, "frontier_distance") or 0
            lag_class = "ok" if lag == 0.0 else "bad"
            parts.append(
                f"<tr><td>{html.escape(site)}</td>"
                f"<td>{_svg_series(lag_series, color='#b45309')}</td>"
                f'<td class="num {lag_class}">{lag:.6f}</td>'
                f'<td class="num">{ae_lag:.6f}</td>'
                f'<td class="num">{int(siblings)}</td>'
                f'<td class="num">{int(frontier)}</td></tr>')
        parts.append("</table>")
        parts.append("<h3>worst keys</h3>")
        parts.append("<table><tr><th>key</th>"
                     "<th class=num>violations</th>"
                     "<th class=num>max siblings</th>"
                     "<th class=num>staleness spread s</th></tr>")
        for entry in summary["worst_keys"]:
            parts.append(
                f"<tr><td>{html.escape(entry['key'])}</td>"
                f'<td class="num">{entry["violations"]}</td>'
                f'<td class="num">{entry["max_siblings"]}</td>'
                f'<td class="num">'
                f'{entry["staleness_spread_seconds"]:.6f}</td></tr>')
        parts.append("</table>")
        if monitor.violation_count:
            parts.append("<h3>violations</h3><ul>")
            for violation in monitor.violations[:50]:
                parts.append(f"<li><code>{html.escape(violation.check)}"
                             f"</code> {html.escape(violation.message)}"
                             f"</li>")
            parts.append("</ul>")
    parts.append("</body></html>")
    return "\n".join(parts)


def write_consistency_html_report(path: str,
                                  monitors: Dict[str, ConsistencyMonitor],
                                  **kwargs: Any) -> None:
    """Render and write the consistency report to ``path`` (UTF-8)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_consistency_html_report(monitors, **kwargs))
