"""Structured tracing for drivers, protocols, and the simulator.

A :class:`Tracer` records a flat, ordered list of :class:`TraceEvent` rows.
Spans group events: each synchronization session opens one span (the
drivers do it), and every message or semantic step inside becomes a child
event carrying the span's id.  Events are cheap plain dataclasses; the
semantic vocabulary (module constants below) mirrors the paper's
quantities so traces can be checked against Table 2 claims event by event:

* ``MESSAGE`` — one ``Send`` crossing the (simulated) wire, priced in bits
  exactly as :class:`~repro.net.stats.DirectionStats` prices it; summing
  ``bits`` over a session span reproduces ``TransferStats.total_bits``.
* ``DELTA_ELEMENT`` — the receiver wrote one element it lacked (|Δ|).
* ``GAMMA_RETRANSMIT`` — the receiver examined a known element (|Γ| for
  CRV; the pre-skip known elements for SRV).
* ``GAMMA_SKIP`` — the sender honored a SKIP (the measured γ).
* ``CONFLICT_BIT`` — a written element had its conflict bit set.
* ``CONTROL`` — HALT/SKIP/skip-to/abort control-flow steps, with the
  concrete signal in ``fields["signal"]``.

The off switch is ``tracer=None`` (the default of every instrumented entry
point): instrumentation sites guard with ``if tracer is not None``, so an
untraced run executes exactly the pre-observability code path and its
measured bit counts are byte-for-byte identical.

Sampling
--------

Full traces are untenable at fleet scale (a 1000-site chaos run emits
millions of wire events), so a tracer may carry a
:class:`SamplingPolicy`: high-volume *droppable* kinds (messages,
delivers, Δ/Γ steps, faults, retries, timeouts, kernel dispatches) are
retained per session key — the first ``head`` outright, a seeded
pseudo-random ``rate`` fraction of the middle, and a ``tail`` ring
flushed when the session ends.  Lifecycle and incident kinds (spans,
session request/start/end/abort/resume, updates, invariant violations)
are **always** kept, and every event — retained or not — is still
delivered to live subscribers, so a
:class:`~repro.obs.monitor.ClusterMonitor` sees the unsampled stream.
Each flushed session emits one synthetic ``sampling`` event recording
``seen``/``kept``, which the causal analyzer turns into coverage
fractions.  ``sampling=None`` (the default) leaves every code path
exactly as it was.
"""

from __future__ import annotations

import bisect
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

# -- event kinds ------------------------------------------------------------------

SPAN_START = "span_start"
SPAN_END = "span_end"
#: A message crossing the wire (driver-emitted, priced in bits).
MESSAGE = "message"
#: A delayed message reaching its destination (randomized/timed drivers).
#: ``fields["sent_seq"]`` links back to the ``MESSAGE`` event of the copy
#: that arrived (the happens-before edge the causal analyzer walks).
DELIVER = "deliver"
#: Receiver wrote an element it lacked — one unit of the paper's |Δ|.
DELTA_ELEMENT = "delta_element"
#: Receiver examined an element it already knew — one unit of |Γ|.
GAMMA_RETRANSMIT = "gamma_retransmit"
#: Sender honored a SKIP and fast-forwarded a segment — one unit of γ.
GAMMA_SKIP = "gamma_skip"
#: A written element ended up conflict-tagged (inherited or reconcile-set).
CONFLICT_BIT = "conflict_bit"
#: Control-flow step (HALT/SKIP/skip-to/abort); ``fields["signal"]`` names it.
CONTROL = "control"
#: One discrete-event dispatch of the simulator kernel.
SIM_DISPATCH = "sim_dispatch"
#: The fault injector acted on a transmission; ``fields["fault"]`` is
#: ``"drop"``, ``"duplicate"``, or ``"reorder"``.
FAULT = "fault"
#: The ARQ transport retransmitted a message (``fields["attempt"]``).
RETRY = "retry"
#: A per-message retransmission timer expired before its ack arrived.
TIMEOUT = "timeout"
#: A session attempt aborted (retry budget exhausted) and will resume
#: from the receiver's pre-session snapshot — or fail, per
#: ``fields["resuming"]``.
SESSION_ABORT = "session_abort"
#: An inline invariant checker caught the system lying to itself;
#: ``fields["check"]`` names the invariant and the remaining fields carry
#: the structured evidence (see :mod:`repro.obs.monitor`).
INVARIANT_VIOLATION = "invariant_violation"
#: A cluster scheduler received a synchronization request (the session
#: itself may start later if an endpoint is busy — the queueing edge).
SESSION_REQUEST = "session_request"
#: A cluster session's coroutines were launched (``fields["session"]``).
SESSION_START = "session_start"
#: A cluster session's final attempt completed (``fields["session"]``).
SESSION_END = "session_end"
#: A local update landed on ``party`` (cluster runs).
UPDATE = "update"
#: The pulling site's §2.2 post-reconciliation self-increment — new
#: knowledge originating at ``party`` that later sessions must propagate.
RECONCILE = "reconcile"
#: Synthetic retention accounting emitted by a sampling tracer:
#: ``fields["seen"]``/``fields["kept"]`` per session key.
SAMPLING = "sampling"
#: A store client operation executed at its coordinating site;
#: ``fields["op"]`` is ``"put"``, ``"get"``, or ``"delete"``.
STORE_OP = "store_op"
#: A divergent read scheduled a per-key repair session (store runs).
READ_REPAIR = "read_repair"
#: The consistency observatory caught a session-guarantee breach;
#: ``fields["check"]`` names the guarantee (``read_your_writes``,
#: ``monotonic_reads``, ``resurrection``, ``visibility_watermark``) and
#: the remaining fields carry the evidence (see
#: :mod:`repro.obs.consistency`).
CONSISTENCY_VIOLATION = "consistency_violation"

#: High-volume kinds a :class:`SamplingPolicy` may decline to retain.
#: Everything else — lifecycle, incidents, accounting — is always kept.
DROPPABLE_KINDS = frozenset({
    MESSAGE, DELIVER, DELTA_ELEMENT, GAMMA_RETRANSMIT, GAMMA_SKIP,
    CONFLICT_BIT, SIM_DISPATCH, FAULT, RETRY, TIMEOUT, STORE_OP,
})


@dataclass(frozen=True)
class SamplingPolicy:
    """Deterministic retention policy for droppable event kinds.

    Retention is decided per *session key* (``fields["session"]`` when
    present, one shared pool otherwise): the first ``head`` droppable
    events of a session are kept outright, later ones are kept with
    pseudo-probability ``rate`` (a seeded CRC32 hash of (seed, key,
    index) — deterministic across processes, unlike Python's randomized
    ``hash``), and the last ``tail`` withheld events are recovered from a
    ring when the session ends.  Violations and lifecycle events are
    never dropped (see :data:`DROPPABLE_KINDS`).
    """

    head: int = 32
    tail: int = 8
    rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.head < 0:
            raise ValueError(f"head must be >= 0, got {self.head}")
        if self.tail < 0:
            raise ValueError(f"tail must be >= 0, got {self.tail}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")

    def keeps(self, key: Any, index: int) -> bool:
        """Deterministic middle-of-session keep decision."""
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        digest = zlib.crc32(f"{self.seed}:{key}:{index}".encode("utf-8"))
        return digest < self.rate * 4_294_967_296.0


class _SessionSampler:
    """Per-session-key retention state of a sampling tracer."""

    __slots__ = ("seen", "kept", "ring")

    def __init__(self, tail: int) -> None:
        self.seen = 0
        self.kept = 0
        self.ring: Deque["TraceEvent"] = deque(maxlen=tail)


@dataclass
class TraceEvent:
    """One structured trace record.

    Attributes:
        seq: tracer-wide monotonic sequence number (interleaving order).
        kind: event vocabulary entry (module constants, or free-form for
            layer-specific events like ``"gossip"``).
        span_id: enclosing span, or ``None`` for top-level events.
        time: simulated-clock stamp when a clock exists (timed driver,
            anti-entropy), else ``None`` — the instant driver has no clock.
        party: which side acted (``"sender"``/``"receiver"``, a site name…).
        message: message type name for wire-level events.
        bits: wire price for ``MESSAGE`` events, 0 otherwise.
        fields: free-form structured attributes (site, value, signal…).
    """

    seq: int
    kind: str
    span_id: Optional[int] = None
    time: Optional[float] = None
    party: Optional[str] = None
    message: Optional[str] = None
    bits: int = 0
    fields: Dict[str, Any] = field(default_factory=dict)


class Span:
    """A named group of events (one per sync session); context manager."""

    __slots__ = ("tracer", "span_id", "name")

    def __init__(self, tracer: "Tracer", span_id: int, name: str) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.name = name

    def event(self, kind: str, **kwargs: Any) -> TraceEvent:
        """Emit an event explicitly bound to this span."""
        return self.tracer.event(kind, span_id=self.span_id, **kwargs)

    def end(self, *, time: Optional[float] = None) -> None:
        """Close the span, emitting its ``span_end`` event."""
        self.tracer._end_span(self, time=time)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.end()


class Tracer:
    """Records structured events; attach one to any instrumented entry point.

    A single tracer may span many sessions (e.g. a whole anti-entropy run):
    its ``seq`` counter totally orders everything it saw.  The optional
    ``clock`` callable (set by timed drivers) stamps events that do not
    pass an explicit ``time=``.

    ``sampling`` bounds retention of high-volume kinds (see
    :class:`SamplingPolicy`); ``strict_subscribers`` re-raises subscriber
    exceptions instead of merely counting them in ``subscriber_errors``
    (wired to ``--strict-invariants`` by the monitor CLI); ``metrics``
    optionally mirrors that count into a
    ``tracer.subscriber_errors`` counter.
    """

    def __init__(self, *, sampling: Optional[SamplingPolicy] = None,
                 strict_subscribers: bool = False,
                 metrics: Optional[Any] = None) -> None:
        self.events: List[TraceEvent] = []
        self._seq = 0
        self._next_span = 0
        self._stack: List[int] = []
        self.clock = None  # type: Optional[Any]
        self._subscribers: List[Any] = []
        self.sampling = sampling
        self.strict_subscribers = strict_subscribers
        self.metrics = metrics
        self.subscriber_errors = 0
        self.last_subscriber_error: Optional[BaseException] = None
        self._samplers: Dict[Any, _SessionSampler] = {}
        self._kept_seqs: List[int] = []

    # -- subscription ---------------------------------------------------------------

    def subscribe(self, callback: Any) -> None:
        """Call ``callback(event)`` for every event recorded from now on.

        Subscribers see events live, in emission order — and *unsampled*:
        a retention policy only limits what ``events`` keeps, never what
        a live :class:`~repro.obs.monitor.ClusterMonitor` observes.  A
        callback must not mutate the event; it may emit further events
        (re-entrant emission is ordered after the event being delivered).
        A callback that raises does not abort the run or starve later
        subscribers: the exception is counted in ``subscriber_errors``
        (and the ``tracer.subscriber_errors`` metric when a registry is
        attached) and re-raised only when ``strict_subscribers`` is set.
        """
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Any) -> None:
        """Stop delivering events to ``callback`` (no-op if absent)."""
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    def _notify(self, record: TraceEvent) -> None:
        first_error: Optional[BaseException] = None
        for callback in self._subscribers:
            try:
                callback(record)
            except Exception as error:  # noqa: BLE001 - isolation boundary
                self.subscriber_errors += 1
                self.last_subscriber_error = error
                if self.metrics is not None:
                    self.metrics.counter("tracer.subscriber_errors").inc()
                if first_error is None:
                    first_error = error
        if first_error is not None and self.strict_subscribers:
            raise first_error

    # -- emission -------------------------------------------------------------------

    def event(self, kind: str, *, span_id: Optional[int] = None,
              time: Optional[float] = None, party: Optional[str] = None,
              message: Optional[str] = None, bits: int = 0,
              **fields: Any) -> TraceEvent:
        """Record one event inside the current span (unless overridden)."""
        if span_id is None and self._stack:
            span_id = self._stack[-1]
        if time is None and self.clock is not None:
            time = self.clock()
        record = TraceEvent(self._seq, kind, span_id=span_id, time=time,
                            party=party, message=message, bits=bits,
                            fields=fields)
        self._seq += 1
        if self.sampling is None:
            self.events.append(record)
        else:
            self._consider(record)
        self._notify(record)
        return record

    def span(self, name: str, *, time: Optional[float] = None,
             **attrs: Any) -> Span:
        """Open a span; use as a context manager or call ``end()``."""
        span_id = self._next_span
        self._next_span += 1
        self.event(SPAN_START, span_id=span_id, time=time, name=name, **attrs)
        self._stack.append(span_id)
        return Span(self, span_id, name)

    def _end_span(self, span: Span, *, time: Optional[float] = None) -> None:
        if span.span_id in self._stack:
            self._stack.remove(span.span_id)
        self.event(SPAN_END, span_id=span.span_id, time=time, name=span.name)

    # -- sampling -------------------------------------------------------------------

    def _retain(self, record: TraceEvent) -> None:
        """Keep ``record``, preserving seq order under late ring flushes."""
        if not self._kept_seqs or self._kept_seqs[-1] < record.seq:
            self.events.append(record)
            self._kept_seqs.append(record.seq)
            return
        index = bisect.bisect_left(self._kept_seqs, record.seq)
        self.events.insert(index, record)
        self._kept_seqs.insert(index, record.seq)

    def _consider(self, record: TraceEvent) -> None:
        policy = self.sampling
        if record.kind not in DROPPABLE_KINDS:
            if record.kind in (SESSION_END, SESSION_ABORT):
                # Recover the session's trailing context before the event
                # that explains it; the ring's seqs all precede this one.
                key = record.fields.get("session")
                if key in self._samplers:
                    self._flush_key(key, final=(record.kind == SESSION_END))
            self._retain(record)
            return
        key = record.fields.get("session")
        sampler = self._samplers.get(key)
        if sampler is None:
            sampler = self._samplers[key] = _SessionSampler(policy.tail)
        sampler.seen += 1
        if (sampler.seen <= policy.head
                or policy.keeps(key, sampler.seen)):
            sampler.kept += 1
            self._retain(record)
        elif policy.tail:
            sampler.ring.append(record)

    def _flush_key(self, key: Any, *, final: bool = True) -> None:
        sampler = self._samplers[key]
        for withheld in sampler.ring:
            sampler.kept += 1
            self._retain(withheld)
        sampler.ring.clear()
        if final:
            del self._samplers[key]
            extra = {"session": key} if key is not None else {}
            self.event(SAMPLING, seen=sampler.seen, kept=sampler.kept,
                       **extra)

    def flush_sampling(self) -> None:
        """Flush every open tail ring and emit its coverage accounting.

        Call once at end of run (the cluster runner does); sessions that
        ended already flushed themselves at their ``session_end``.
        No-op without a sampling policy.
        """
        if self.sampling is None:
            return
        for key in list(self._samplers):
            self._flush_key(key, final=True)

    # -- queries --------------------------------------------------------------------

    def count(self, kind: str, **match: Any) -> int:
        """How many events of ``kind`` match every given field filter."""
        return len(self.select(kind, **match))

    def select(self, kind: str, **match: Any) -> List[TraceEvent]:
        """Events of ``kind`` whose attributes/fields match the filters."""
        return [event for event in self.events
                if event.kind == kind
                and all(getattr(event, key, None) == value
                        or event.fields.get(key) == value
                        for key, value in match.items())]

    def message_bits(self, **match: Any) -> int:
        """Total wire bits over matching ``MESSAGE`` events."""
        return sum(event.bits for event in self.select(MESSAGE, **match))

    def __len__(self) -> int:
        return len(self.events)
