"""Structured tracing for drivers, protocols, and the simulator.

A :class:`Tracer` records a flat, ordered list of :class:`TraceEvent` rows.
Spans group events: each synchronization session opens one span (the
drivers do it), and every message or semantic step inside becomes a child
event carrying the span's id.  Events are cheap plain dataclasses; the
semantic vocabulary (module constants below) mirrors the paper's
quantities so traces can be checked against Table 2 claims event by event:

* ``MESSAGE`` — one ``Send`` crossing the (simulated) wire, priced in bits
  exactly as :class:`~repro.net.stats.DirectionStats` prices it; summing
  ``bits`` over a session span reproduces ``TransferStats.total_bits``.
* ``DELTA_ELEMENT`` — the receiver wrote one element it lacked (|Δ|).
* ``GAMMA_RETRANSMIT`` — the receiver examined a known element (|Γ| for
  CRV; the pre-skip known elements for SRV).
* ``GAMMA_SKIP`` — the sender honored a SKIP (the measured γ).
* ``CONFLICT_BIT`` — a written element had its conflict bit set.
* ``CONTROL`` — HALT/SKIP/skip-to/abort control-flow steps, with the
  concrete signal in ``fields["signal"]``.

The off switch is ``tracer=None`` (the default of every instrumented entry
point): instrumentation sites guard with ``if tracer is not None``, so an
untraced run executes exactly the pre-observability code path and its
measured bit counts are byte-for-byte identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

# -- event kinds ------------------------------------------------------------------

SPAN_START = "span_start"
SPAN_END = "span_end"
#: A message crossing the wire (driver-emitted, priced in bits).
MESSAGE = "message"
#: A delayed message reaching its destination (randomized/timed drivers).
DELIVER = "deliver"
#: Receiver wrote an element it lacked — one unit of the paper's |Δ|.
DELTA_ELEMENT = "delta_element"
#: Receiver examined an element it already knew — one unit of |Γ|.
GAMMA_RETRANSMIT = "gamma_retransmit"
#: Sender honored a SKIP and fast-forwarded a segment — one unit of γ.
GAMMA_SKIP = "gamma_skip"
#: A written element ended up conflict-tagged (inherited or reconcile-set).
CONFLICT_BIT = "conflict_bit"
#: Control-flow step (HALT/SKIP/skip-to/abort); ``fields["signal"]`` names it.
CONTROL = "control"
#: One discrete-event dispatch of the simulator kernel.
SIM_DISPATCH = "sim_dispatch"
#: The fault injector acted on a transmission; ``fields["fault"]`` is
#: ``"drop"``, ``"duplicate"``, or ``"reorder"``.
FAULT = "fault"
#: The ARQ transport retransmitted a message (``fields["attempt"]``).
RETRY = "retry"
#: A per-message retransmission timer expired before its ack arrived.
TIMEOUT = "timeout"
#: A session attempt aborted (retry budget exhausted) and will resume
#: from the receiver's pre-session snapshot — or fail, per
#: ``fields["resuming"]``.
SESSION_ABORT = "session_abort"
#: An inline invariant checker caught the system lying to itself;
#: ``fields["check"]`` names the invariant and the remaining fields carry
#: the structured evidence (see :mod:`repro.obs.monitor`).
INVARIANT_VIOLATION = "invariant_violation"


@dataclass
class TraceEvent:
    """One structured trace record.

    Attributes:
        seq: tracer-wide monotonic sequence number (interleaving order).
        kind: event vocabulary entry (module constants, or free-form for
            layer-specific events like ``"gossip"``).
        span_id: enclosing span, or ``None`` for top-level events.
        time: simulated-clock stamp when a clock exists (timed driver,
            anti-entropy), else ``None`` — the instant driver has no clock.
        party: which side acted (``"sender"``/``"receiver"``, a site name…).
        message: message type name for wire-level events.
        bits: wire price for ``MESSAGE`` events, 0 otherwise.
        fields: free-form structured attributes (site, value, signal…).
    """

    seq: int
    kind: str
    span_id: Optional[int] = None
    time: Optional[float] = None
    party: Optional[str] = None
    message: Optional[str] = None
    bits: int = 0
    fields: Dict[str, Any] = field(default_factory=dict)


class Span:
    """A named group of events (one per sync session); context manager."""

    __slots__ = ("tracer", "span_id", "name")

    def __init__(self, tracer: "Tracer", span_id: int, name: str) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.name = name

    def event(self, kind: str, **kwargs: Any) -> TraceEvent:
        """Emit an event explicitly bound to this span."""
        return self.tracer.event(kind, span_id=self.span_id, **kwargs)

    def end(self, *, time: Optional[float] = None) -> None:
        """Close the span, emitting its ``span_end`` event."""
        self.tracer._end_span(self, time=time)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.end()


class Tracer:
    """Records structured events; attach one to any instrumented entry point.

    A single tracer may span many sessions (e.g. a whole anti-entropy run):
    its ``seq`` counter totally orders everything it saw.  The optional
    ``clock`` callable (set by timed drivers) stamps events that do not
    pass an explicit ``time=``.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._seq = 0
        self._next_span = 0
        self._stack: List[int] = []
        self.clock = None  # type: Optional[Any]
        self._subscribers: List[Any] = []

    # -- subscription ---------------------------------------------------------------

    def subscribe(self, callback: Any) -> None:
        """Call ``callback(event)`` for every event recorded from now on.

        Subscribers see events live, in emission order, which is what lets
        a :class:`~repro.obs.monitor.ClusterMonitor` maintain health
        gauges *during* a run instead of post-hoc.  A callback must not
        mutate the event; it may emit further events (re-entrant emission
        is ordered after the event being delivered).
        """
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Any) -> None:
        """Stop delivering events to ``callback`` (no-op if absent)."""
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    # -- emission -------------------------------------------------------------------

    def event(self, kind: str, *, span_id: Optional[int] = None,
              time: Optional[float] = None, party: Optional[str] = None,
              message: Optional[str] = None, bits: int = 0,
              **fields: Any) -> TraceEvent:
        """Record one event inside the current span (unless overridden)."""
        if span_id is None and self._stack:
            span_id = self._stack[-1]
        if time is None and self.clock is not None:
            time = self.clock()
        record = TraceEvent(self._seq, kind, span_id=span_id, time=time,
                            party=party, message=message, bits=bits,
                            fields=fields)
        self._seq += 1
        self.events.append(record)
        for callback in self._subscribers:
            callback(record)
        return record

    def span(self, name: str, *, time: Optional[float] = None,
             **attrs: Any) -> Span:
        """Open a span; use as a context manager or call ``end()``."""
        span_id = self._next_span
        self._next_span += 1
        self.event(SPAN_START, span_id=span_id, time=time, name=name, **attrs)
        self._stack.append(span_id)
        return Span(self, span_id, name)

    def _end_span(self, span: Span, *, time: Optional[float] = None) -> None:
        if span.span_id in self._stack:
            self._stack.remove(span.span_id)
        self.event(SPAN_END, span_id=span.span_id, time=time, name=span.name)

    # -- queries --------------------------------------------------------------------

    def count(self, kind: str, **match: Any) -> int:
        """How many events of ``kind`` match every given field filter."""
        return len(self.select(kind, **match))

    def select(self, kind: str, **match: Any) -> List[TraceEvent]:
        """Events of ``kind`` whose attributes/fields match the filters."""
        return [event for event in self.events
                if event.kind == kind
                and all(getattr(event, key, None) == value
                        or event.fields.get(key) == value
                        for key, value in match.items())]

    def message_bits(self, **match: Any) -> int:
        """Total wire bits over matching ``MESSAGE`` events."""
        return sum(event.bits for event in self.select(MESSAGE, **match))

    def __len__(self) -> int:
        return len(self.events)
