"""Causal analysis of traces: convergence critical path and attribution.

The tracer records *what* happened; this module reconstructs *why the run
converged when it did*.  From a flat event list (or a live stream — feed
events to :meth:`CausalGraph.feed`, e.g. via ``tracer.subscribe``) it
builds the happens-before DAG:

* **transmit edges** — every ``deliver`` links back to the ``message``
  event whose copy landed (``fields["sent_seq"]``, emitted by the wire
  drivers).  Acyclic by construction: the send was recorded strictly
  earlier.
* **program edges** — per-(site, session) order among wire events, and a
  per-site lifecycle order among updates, reconciles, and session
  start/end (a session start/end synchronizes *both* endpoints).
* **queue edges** — each ``session_start`` links to its
  ``session_request``, matched FIFO per (src, dst) pair, exactly the
  order the cluster scheduler dispatches them.

On that DAG :func:`analyze_events` replays the paper's knowledge model —
each update or §2.2 reconcile self-increment is an item; a session merges
the source's item set (snapshotted at session start) into the
destination — to locate the **convergence event**: the first event after
which every site holds every item.  The **critical path** is the backward
chain of *binding predecessors* (the latest-finishing cause, ties broken
by trace order) from that event down to the update or root that seeded
it.  In a time-weighted DAG every path between two events spans the same
elapsed time; the binding walk selects the chain that was actually tight.

Each hop is attributed to the :data:`CATEGORIES`: channel ``latency``,
bandwidth ``serialization`` (a pipelined session's inter-deliver spacing
*is* serialization), fault-injected ``fault_delay``, ARQ ``arq`` time
(timeouts, retries, aborts, resumes), fanout ``queueing``, and residual
``processing``.  The per-path category sums are exact: ``processing``
absorbs the float remainder so that summing the attribution dict in
canonical order reproduces ``elapsed`` bit-for-bit.

Per-session / per-site / per-protocol summaries attribute *all* causal
hops, not just the critical path's; because pipelined hops overlap in
time, those sums may legitimately exceed a session's wall duration.
Sampled traces (see :class:`~repro.obs.trace.SamplingPolicy`) analyze
fine — dropped wire events cost transmit edges, counted in
``dropped_links``, and every summary carries the coverage fraction from
the tracer's ``sampling`` accounting events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from collections import deque

from repro.obs import trace as obs

SCHEMA_ID = "repro.obs.causal/1"

#: Attribution categories, in canonical (summation) order.
CATEGORIES = ("latency", "serialization", "fault_delay", "arq",
              "queueing", "processing")

#: Wire-level node kinds that live in per-(site, session) program order.
_WIRE_KINDS = frozenset({obs.MESSAGE, obs.DELIVER, obs.RETRY, obs.TIMEOUT,
                         obs.SESSION_ABORT, obs.CONTROL, obs.RECONCILE})
#: Node kinds in the per-site lifecycle order (knowledge flow).
_LIFECYCLE_KINDS = frozenset({obs.UPDATE, obs.RECONCILE,
                              obs.SESSION_START, obs.SESSION_END})
#: Program-edge endpoints that mark ARQ recovery time.
_ARQ_KINDS = frozenset({obs.RETRY, obs.TIMEOUT, obs.SESSION_ABORT,
                        obs.CONTROL})

_EPS = 1e-12


@dataclass
class Node:
    """One causally-relevant trace event in the graph."""

    seq: int
    kind: str
    time: float
    party: Optional[str] = None
    #: The other endpoint for session request/start/end events (the
    #: source site ``dst`` pulls from).
    peer: Optional[str] = None
    message: Optional[str] = None
    bits: int = 0
    span_id: Optional[int] = None
    session: Optional[Any] = None
    #: Wire direction (``"forward"``/``"backward"``) for message events.
    direction: Optional[str] = None
    #: In-edges as ``(source_seq, edge_kind)``; edge kinds are
    #: ``"program"``, ``"transmit"``, ``"queue"``.
    preds: List[Tuple[int, str]] = field(default_factory=list)

    def brief(self) -> Dict[str, Any]:
        """The node as a small JSON-able endpoint reference."""
        doc: Dict[str, Any] = {"seq": self.seq, "kind": self.kind,
                               "time": self.time}
        if self.party is not None:
            doc["party"] = self.party
        if self.message is not None:
            doc["message"] = self.message
        if self.session is not None:
            doc["session"] = self.session
        return doc


@dataclass(frozen=True)
class ChannelInfo:
    """Channel constants recovered from a driver's ``span_start`` event."""

    latency: float
    bandwidth: float
    protocol: Optional[str] = None


class CausalGraph:
    """Streaming happens-before graph builder over trace events.

    Feed events in emission order (``graph.feed`` works directly as a
    ``Tracer.subscribe`` callback); untimed events and non-causal kinds
    are ignored.  All edges point from an earlier ``seq`` to a later one,
    so the graph is acyclic by construction — :meth:`is_acyclic` verifies
    the invariant rather than trusting it.
    """

    def __init__(self) -> None:
        self.nodes: Dict[int, Node] = {}
        self.order: List[int] = []
        self.edges = 0
        #: Transmit edges lost because the matching send was sampled out.
        self.dropped_links = 0
        self.channels: Dict[int, ChannelInfo] = {}
        self.session_start: Dict[Any, Node] = {}
        self.coverage: Dict[Any, Tuple[int, int]] = {}
        self._updates: List[int] = []
        self._items: List[int] = []
        self._wire_tail: Dict[Tuple[Optional[str], Any], int] = {}
        self._life_tail: Dict[str, int] = {}
        self._queue: Dict[Tuple[str, str], Deque[int]] = {}

    # -- construction ---------------------------------------------------------------

    def feed(self, event: Any) -> Optional[Node]:
        """Incorporate one trace event; returns its node, if it made one."""
        kind = event.kind
        fields = event.fields
        if kind == obs.SPAN_START:
            if "latency" in fields and "bandwidth" in fields:
                protocol = fields.get("protocol")
                if protocol is None:
                    name = fields.get("name", "")
                    protocol = name.rsplit(":", 1)[-1] or None
                self.channels[event.span_id] = ChannelInfo(
                    latency=fields["latency"],
                    bandwidth=fields["bandwidth"], protocol=protocol)
            return None
        if kind == obs.SAMPLING:
            seen, kept = fields.get("seen", 0), fields.get("kept", 0)
            old = self.coverage.get(fields.get("session"), (0, 0))
            self.coverage[fields.get("session")] = (old[0] + seen,
                                                    old[1] + kept)
            return None
        if event.time is None:
            return None
        if kind == obs.CONTROL and fields.get("signal") != "session_resume":
            return None
        session = fields.get("session")
        if kind in _WIRE_KINDS:
            node = self._add(event, session)
            self._link_wire(node)
            if kind == obs.DELIVER:
                sent_seq = fields.get("sent_seq")
                if sent_seq is None or sent_seq not in self.nodes:
                    # Either a pre-instrumentation trace or the send was
                    # sampled out; the program edge still anchors the node.
                    self.dropped_links += 1
                else:
                    self._edge(sent_seq, node, "transmit")
            if kind == obs.RECONCILE:
                self._link_lifecycle(node, node.party)
                self._items.append(node.seq)
            return node
        if kind == obs.UPDATE:
            node = self._add(event, session)
            self._link_lifecycle(node, node.party)
            self._updates.append(node.seq)
            self._items.append(node.seq)
            return node
        if kind == obs.SESSION_REQUEST:
            node = self._add(event, session)
            pair = (fields.get("peer"), node.party)
            self._queue.setdefault(pair, deque()).append(node.seq)
            return node
        if kind == obs.SESSION_START:
            node = self._add(event, session)
            src, dst = fields.get("peer"), node.party
            waiting = self._queue.get((src, dst))
            if waiting:
                self._edge(waiting.popleft(), node, "queue")
            self._link_lifecycle(node, dst)
            self._link_lifecycle(node, src)
            if session is not None:
                self.session_start[session] = node
                self._wire_tail[(dst, session)] = node.seq
                self._wire_tail[(src, session)] = node.seq
            return node
        if kind == obs.SESSION_END:
            node = self._add(event, session)
            src, dst = fields.get("peer"), node.party
            for site in (dst, src):
                tail = self._wire_tail.get((site, session))
                if tail is not None:
                    self._edge(tail, node, "program")
            if not node.preds and session in self.session_start:
                self._edge(self.session_start[session].seq, node, "program")
            for site in (dst, src):
                if site is not None:
                    self._life_tail[site] = node.seq
                    self._wire_tail.pop((site, session), None)
            return node
        return None

    def feed_all(self, events: Any) -> "CausalGraph":
        """Feed every event in order; returns ``self`` for chaining."""
        for event in events:
            self.feed(event)
        return self

    def _add(self, event: Any, session: Any) -> Node:
        node = Node(seq=event.seq, kind=event.kind, time=event.time,
                    party=event.party, peer=event.fields.get("peer"),
                    message=event.message,
                    bits=event.bits, span_id=event.span_id, session=session,
                    direction=event.fields.get("direction"))
        self.nodes[node.seq] = node
        self.order.append(node.seq)
        return node

    def _edge(self, source_seq: int, target: Node, kind: str) -> None:
        if any(source == source_seq for source, _ in target.preds):
            return
        target.preds.append((source_seq, kind))
        self.edges += 1

    def _link_wire(self, node: Node) -> None:
        key = (node.party, node.session)
        tail = self._wire_tail.get(key)
        if tail is None and node.session in self.session_start:
            tail = self.session_start[node.session].seq
        if tail is not None:
            self._edge(tail, node, "program")
        self._wire_tail[key] = node.seq

    def _link_lifecycle(self, node: Node, site: Optional[str]) -> None:
        if site is None:
            return
        tail = self._life_tail.get(site)
        if tail is not None:
            self._edge(tail, node, "program")
        self._life_tail[site] = node.seq

    # -- queries --------------------------------------------------------------------

    def channel_for(self, node: Node) -> Optional[ChannelInfo]:
        """The link model of the span ``node`` belongs to, if known."""
        if node.span_id is None:
            return None
        return self.channels.get(node.span_id)

    def is_acyclic(self) -> bool:
        """Every edge points from an earlier seq to a later one."""
        return all(source < seq
                   for seq, node in self.nodes.items()
                   for source, _ in node.preds)

    @property
    def updates(self) -> List[Node]:
        return [self.nodes[seq] for seq in self._updates]

    @property
    def items(self) -> List[int]:
        """Knowledge items (update + reconcile seqs), in creation order."""
        return list(self._items)


# ---------------------------------------------------------------------------
# Hop categorization.
# ---------------------------------------------------------------------------


def _is_arq(source: Node, target: Node) -> bool:
    return (target.kind in _ARQ_KINDS
            or source.kind in (obs.TIMEOUT, obs.RETRY, obs.SESSION_ABORT,
                               obs.CONTROL))


def _categorize(source: Node, target: Node, edge_kind: str,
                channel: Optional[ChannelInfo]) -> Dict[str, float]:
    """Split one hop's elapsed time over the attribution categories.

    Returns a dict whose values sum to ``target.time - source.time`` up to
    float addition order; path-level accounting makes the total exact by
    folding any residue into ``processing`` (see ``_path_attribution``).
    """
    dt = target.time - source.time
    if edge_kind == "queue":
        return {"queueing": dt}
    if edge_kind == "transmit":
        if channel is None or channel.latency > dt:
            # No channel constants (foreign trace) — the whole hop is
            # propagation as far as we can tell.
            return {"latency": dt}
        serialization = dt - channel.latency
        ideal = (source.bits / channel.bandwidth if channel.bandwidth
                 else serialization)
        if serialization - ideal > _EPS:
            # The fault injector held this copy back (reorder delay).
            return {"latency": channel.latency, "serialization": ideal,
                    "fault_delay": serialization - ideal}
        return {"latency": channel.latency, "serialization": serialization}
    # program edges
    if _is_arq(source, target):
        return {"arq": dt}
    if source.kind == obs.DELIVER and target.kind == obs.DELIVER:
        # Pipelined FIFO spacing between consecutive deliveries *is* the
        # next message's serialization time.
        return {"serialization": dt}
    if source.kind == obs.MESSAGE and target.kind == obs.MESSAGE:
        ideal = (source.bits / channel.bandwidth
                 if channel is not None and channel.bandwidth else dt)
        if dt - ideal > _EPS:
            # Stop-and-wait: the sender stalled for the round trip after
            # serializing; the stall is propagation (plus the ack's bits).
            return {"serialization": ideal, "latency": dt - ideal}
        return {"serialization": dt}
    return {"processing": dt}


def _exact_attribution(parts: Dict[str, float],
                       elapsed: float) -> Dict[str, float]:
    """Attribution dict in canonical order whose sum is exactly elapsed.

    Float addition is order-sensitive, so the residue is folded into
    ``processing`` and re-checked: summing the returned dict's values in
    :data:`CATEGORIES` order reproduces ``elapsed`` bit-for-bit.
    """
    out = {category: parts.get(category, 0.0) for category in CATEGORIES}
    for _ in range(8):
        total = 0.0
        for category in CATEGORIES:
            total += out[category]
        if total == elapsed:
            break
        out["processing"] += elapsed - total
    return out


# ---------------------------------------------------------------------------
# Convergence and the critical path.
# ---------------------------------------------------------------------------


def _find_convergence(graph: CausalGraph) -> Optional[Node]:
    """First event after which every site holds every knowledge item.

    Replays the paper's knowledge model over the trace: each update or
    reconcile creates an item at its site; a session end merges the
    source's item set — snapshotted at session start (and re-snapshotted
    at each transactional resume, whose rebuilt coroutines read current
    state) — into the destination's.
    """
    sites = set()
    for seq in graph.order:
        node = graph.nodes[seq]
        if node.kind in (obs.UPDATE, obs.RECONCILE, obs.SESSION_REQUEST,
                         obs.SESSION_START, obs.SESSION_END):
            sites.add(node.party)
            sites.add(node.peer)
    sites.discard(None)
    total = len(graph.items)
    if not total or not sites:
        return None
    knowledge: Dict[str, set] = {site: set() for site in sites}
    snapshots: Dict[Any, frozenset] = {}
    peers: Dict[Any, Optional[str]] = {}
    emitted = 0
    for seq in graph.order:
        node = graph.nodes[seq]
        changed: Optional[str] = None
        if node.kind in (obs.UPDATE, obs.RECONCILE):
            knowledge.setdefault(node.party, set()).add(seq)
            emitted += 1
            changed = node.party
        elif node.kind == obs.SESSION_START:
            peers[node.session] = node.peer
            snapshots[node.session] = frozenset(
                knowledge.get(node.peer, ()))
        elif node.kind == obs.CONTROL and node.session in peers:
            # Transactional resume rebuilds coroutines from the source's
            # *current* state; refresh what this session will deliver.
            snapshots[node.session] = frozenset(
                knowledge.get(peers[node.session], ()))
        elif node.kind == obs.SESSION_END:
            merged = snapshots.pop(node.session, frozenset())
            knowledge.setdefault(node.party, set()).update(merged)
            changed = node.party
        if changed is None or emitted < total:
            continue
        if all(len(held) == total for held in knowledge.values()):
            return node
    return None


def _binding_predecessor(graph: CausalGraph,
                         node: Node) -> Tuple[Node, str]:
    """The latest-finishing cause of ``node`` (ties broken by seq)."""
    source_seq, edge_kind = max(
        node.preds, key=lambda edge: (graph.nodes[edge[0]].time, edge[0]))
    return graph.nodes[source_seq], edge_kind


def _critical_path(graph: CausalGraph,
                   anchor: Node) -> Dict[str, Any]:
    """Backward binding-predecessor walk from ``anchor`` to its seed."""
    hops: List[Dict[str, Any]] = []
    parts: Dict[str, float] = {}
    rounds = 0
    cursor = anchor
    while cursor.preds and cursor.kind != obs.UPDATE:
        source, edge_kind = _binding_predecessor(graph, cursor)
        channel = graph.channel_for(cursor) or graph.channel_for(source)
        categories = _categorize(source, cursor, edge_kind, channel)
        hops.append({
            "from": source.brief(), "to": cursor.brief(),
            "edge": edge_kind, "elapsed": cursor.time - source.time,
            "categories": {category: categories[category]
                           for category in CATEGORIES
                           if category in categories},
        })
        if edge_kind == "transmit":
            rounds += 1
        for category, value in categories.items():
            parts[category] = parts.get(category, 0.0) + value
        cursor = source
    hops.reverse()
    elapsed = anchor.time - cursor.time
    return {
        "start": cursor.brief(), "end": anchor.brief(),
        "elapsed": elapsed, "hops": hops, "rounds": rounds,
        "attribution": _exact_attribution(parts, elapsed),
    }


# ---------------------------------------------------------------------------
# Aggregate summaries.
# ---------------------------------------------------------------------------


def _fraction(counts: Tuple[int, int]) -> float:
    seen, kept = counts
    return kept / seen if seen else 1.0


def _session_summaries(graph: CausalGraph) -> List[Dict[str, Any]]:
    grouped: Dict[Any, List[Node]] = {}
    for seq in graph.order:
        node = graph.nodes[seq]
        if node.session is not None:
            grouped.setdefault(node.session, []).append(node)
    summaries: List[Dict[str, Any]] = []
    for session in sorted(grouped, key=lambda key: (str(type(key)), key)):
        members = grouped[session]
        start = next((node for node in members
                      if node.kind == obs.SESSION_START), None)
        end = next((node for node in members
                    if node.kind == obs.SESSION_END), None)
        channel = graph.channel_for(start or members[0])
        requested: Optional[float] = None
        if start is not None:
            for source_seq, edge_kind in start.preds:
                if edge_kind == "queue":
                    requested = graph.nodes[source_seq].time
        directions = [node.direction for node in members
                      if node.kind == obs.MESSAGE and node.message != "Ack"
                      and node.direction is not None]
        rounds = (1 + sum(1 for previous, current
                          in zip(directions, directions[1:])
                          if previous != current)) if directions else 0
        parts: Dict[str, float] = {}
        for node in members:
            for source_seq, edge_kind in node.preds:
                source = graph.nodes[source_seq]
                if edge_kind == "program" and not _is_arq(source, node):
                    # Non-ARQ program edges overlap transmit edges in
                    # time (pipelining); counting both would double-bill
                    # serialization.
                    continue
                for category, value in _categorize(
                        source, node, edge_kind, channel).items():
                    parts[category] = parts.get(category, 0.0) + value
        summary: Dict[str, Any] = {
            "session": session,
            "src": start.peer if start is not None else None,
            "dst": start.party if start is not None else None,
            "protocol": channel.protocol if channel is not None else None,
            "messages": sum(1 for node in members
                            if node.kind == obs.MESSAGE),
            "rounds": rounds,
            "retries": sum(1 for node in members
                           if node.kind == obs.RETRY),
            "timeouts": sum(1 for node in members
                            if node.kind == obs.TIMEOUT),
            "resumes": sum(1 for node in members
                           if node.kind == obs.CONTROL),
            "aborts": sum(1 for node in members
                          if node.kind == obs.SESSION_ABORT),
            "attribution": {category: parts.get(category, 0.0)
                            for category in CATEGORIES},
            "coverage": _fraction(graph.coverage.get(session, (0, 0))),
        }
        if start is not None:
            summary["started"] = start.time
            summary["requested"] = (requested if requested is not None
                                    else start.time)
            summary["queue_wait"] = start.time - summary["requested"]
        if end is not None:
            summary["bits"] = end.bits
            summary["ended"] = end.time
            if start is not None:
                summary["duration"] = end.time - start.time
        summaries.append(summary)
    return summaries


def _aggregate(summaries: List[Dict[str, Any]],
               key: str) -> Dict[str, Dict[str, Any]]:
    """Roll session summaries up by destination site or protocol."""
    rollup: Dict[str, Dict[str, Any]] = {}
    for summary in summaries:
        label = summary.get(key)
        if label is None:
            continue
        bucket = rollup.setdefault(label, {
            "sessions": 0, "bits": 0, "messages": 0, "rounds": 0,
            "retries": 0, "queue_wait": 0.0, "busy": 0.0,
            "attribution": {category: 0.0 for category in CATEGORIES},
        })
        bucket["sessions"] += 1
        bucket["bits"] += summary.get("bits", 0)
        bucket["messages"] += summary["messages"]
        bucket["rounds"] += summary["rounds"]
        bucket["retries"] += summary["retries"]
        bucket["queue_wait"] += summary.get("queue_wait", 0.0)
        bucket["busy"] += summary.get("duration", 0.0)
        for category in CATEGORIES:
            bucket["attribution"][category] += \
                summary["attribution"][category]
    return rollup


# ---------------------------------------------------------------------------
# The analysis entry point.
# ---------------------------------------------------------------------------


@dataclass
class Analysis:
    """Everything the causal analyzer derived from one trace."""

    graph: CausalGraph
    mode: str
    converged: bool
    convergence: Optional[Node]
    origin: Optional[Node]
    critical_path: Optional[Dict[str, Any]]
    sessions: List[Dict[str, Any]]
    sites: Dict[str, Dict[str, Any]]
    protocols: Dict[str, Dict[str, Any]]

    def to_dict(self) -> Dict[str, Any]:
        """The schema-stable JSON document (``repro.obs.causal/1``)."""
        seen = sum(counts[0] for counts in self.graph.coverage.values())
        kept = sum(counts[1] for counts in self.graph.coverage.values())
        document: Dict[str, Any] = {
            "schema": SCHEMA_ID,
            "mode": self.mode,
            "nodes": len(self.graph.nodes),
            "edges": self.graph.edges,
            "dropped_links": self.graph.dropped_links,
            "acyclic": self.graph.is_acyclic(),
            "converged": self.converged,
            "sessions": self.sessions,
            "sites": self.sites,
            "protocols": self.protocols,
            "coverage": {
                "sampled": bool(self.graph.coverage),
                "seen": seen, "kept": kept,
                "fraction": kept / seen if seen else 1.0,
            },
        }
        if self.convergence is not None:
            document["convergence"] = self.convergence.brief()
        if self.origin is not None:
            document["origin"] = self.origin.brief()
        if self.critical_path is not None:
            document["critical_path"] = self.critical_path
        return document


def analyze_events(events: Any) -> Analysis:
    """Build the causal graph over ``events`` and analyze it.

    ``events`` is any iterable of :class:`~repro.obs.trace.TraceEvent`
    (a tracer's retained list, or rows loaded back from JSONL).  Cluster
    traces get the full convergence treatment; a standalone timed-wire
    trace falls back to ``mode="wire"``, anchoring the critical path at
    the last recorded event.
    """
    graph = CausalGraph().feed_all(events)
    cluster = bool(graph.session_start) or bool(graph.updates)
    convergence = _find_convergence(graph) if cluster else None
    anchor = convergence
    if anchor is None and graph.order:
        anchor = graph.nodes[graph.order[-1]]
    origin = graph.updates[0] if graph.updates else None
    sessions = _session_summaries(graph)
    return Analysis(
        graph=graph,
        mode="cluster" if cluster else "wire",
        converged=convergence is not None,
        convergence=convergence,
        origin=origin,
        critical_path=(_critical_path(graph, anchor)
                       if anchor is not None else None),
        sessions=sessions,
        sites=_aggregate(sessions, "dst"),
        protocols=_aggregate(sessions, "protocol"),
    )


def analyze_tracer(tracer: Any) -> Analysis:
    """Analyze a live tracer's retained events (flushes sampling first)."""
    tracer.flush_sampling()
    return analyze_events(tracer.events)


# ---------------------------------------------------------------------------
# The JSON document contract.
# ---------------------------------------------------------------------------

_NODE_BRIEF_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["seq", "kind", "time"],
    "properties": {
        "seq": {"type": "integer", "minimum": 0},
        "kind": {"type": "string"},
        "time": {"type": "number"},
        "party": {"type": "string"},
        "message": {"type": "string"},
    },
}

_ATTRIBUTION_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": list(CATEGORIES),
    "properties": {category: {"type": "number"} for category in CATEGORIES},
}

#: Embedded source of truth for ``schemas/repro.obs.causal.schema.json``
#: (a test pins the checked-in file to this dict).  Uses the same
#: dependency-free subset :func:`repro.obs.otlp_schema.validate` checks.
CAUSAL_SCHEMA: Dict[str, Any] = {
    "$id": "repro.obs.causal.schema.json",
    "title": "repro causal analysis document",
    "type": "object",
    "required": ["schema", "mode", "nodes", "edges", "dropped_links",
                 "acyclic", "converged", "sessions", "sites", "protocols",
                 "coverage"],
    "properties": {
        "schema": {"type": "string", "pattern": r"^repro\.obs\.causal/1$"},
        "mode": {"type": "string", "enum": ["cluster", "wire"]},
        "nodes": {"type": "integer", "minimum": 0},
        "edges": {"type": "integer", "minimum": 0},
        "dropped_links": {"type": "integer", "minimum": 0},
        "acyclic": {"type": "boolean"},
        "converged": {"type": "boolean"},
        "convergence": _NODE_BRIEF_SCHEMA,
        "origin": _NODE_BRIEF_SCHEMA,
        "critical_path": {
            "type": "object",
            "required": ["start", "end", "elapsed", "hops", "rounds",
                         "attribution"],
            "properties": {
                "start": _NODE_BRIEF_SCHEMA,
                "end": _NODE_BRIEF_SCHEMA,
                "elapsed": {"type": "number", "minimum": 0},
                "rounds": {"type": "integer", "minimum": 0},
                "attribution": _ATTRIBUTION_SCHEMA,
                "hops": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "required": ["from", "to", "edge", "elapsed",
                                     "categories"],
                        "properties": {
                            "from": _NODE_BRIEF_SCHEMA,
                            "to": _NODE_BRIEF_SCHEMA,
                            "edge": {"type": "string",
                                     "enum": ["program", "transmit",
                                              "queue"]},
                            "elapsed": {"type": "number"},
                            "categories": {"type": "object"},
                        },
                    },
                },
            },
        },
        "sessions": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["session", "messages", "rounds", "retries",
                             "timeouts", "resumes", "aborts",
                             "attribution", "coverage"],
                "properties": {
                    "messages": {"type": "integer", "minimum": 0},
                    "rounds": {"type": "integer", "minimum": 0},
                    "retries": {"type": "integer", "minimum": 0},
                    "timeouts": {"type": "integer", "minimum": 0},
                    "resumes": {"type": "integer", "minimum": 0},
                    "aborts": {"type": "integer", "minimum": 0},
                    "requested": {"type": "number"},
                    "started": {"type": "number"},
                    "ended": {"type": "number"},
                    "queue_wait": {"type": "number"},
                    "duration": {"type": "number"},
                    "bits": {"type": "integer", "minimum": 0},
                    "attribution": _ATTRIBUTION_SCHEMA,
                    "coverage": {"type": "number", "minimum": 0},
                },
            },
        },
        "sites": {"type": "object"},
        "protocols": {"type": "object"},
        "coverage": {
            "type": "object",
            "required": ["sampled", "seen", "kept", "fraction"],
            "properties": {
                "sampled": {"type": "boolean"},
                "seen": {"type": "integer", "minimum": 0},
                "kept": {"type": "integer", "minimum": 0},
                "fraction": {"type": "number", "minimum": 0},
            },
        },
    },
}


def validate_analysis(document: Any) -> List[str]:
    """Validate an analysis document against :data:`CAUSAL_SCHEMA`."""
    from repro.obs.otlp_schema import validate
    return validate(document, CAUSAL_SCHEMA)
