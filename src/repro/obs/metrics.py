"""Process-local metrics: counters, gauges, histograms, snapshot/merge.

Where :mod:`repro.obs.trace` answers "what happened, in order",
this module answers "how much, over many runs".  A
:class:`MetricsRegistry` holds named instruments; ``snapshot()`` flattens
them into plain dicts (embeddable in benchmark reports via
:func:`repro.analysis.report.format_metrics`), and ``merge()`` folds one
registry into another so sweeps can aggregate per-worker or per-seed
registries without hand-summing fields.

Histograms keep their raw observations: the experiment sizes here (one
observation per session or per gossip round) make exact percentiles
cheaper than bucket bookkeeping, and concatenation makes ``merge()``
lossless.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import ReproError
from repro.net.stats import TransferStats


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (≥ 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increment {amount} < 0")
        self.value += amount


class Gauge:
    """A last-write-wins scalar (e.g. current convergence latency)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = value


class Histogram:
    """Exact distribution over raw observations."""

    __slots__ = ("observations",)

    def __init__(self) -> None:
        self.observations: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.observations.append(value)

    @property
    def count(self) -> int:
        return len(self.observations)

    @property
    def total(self) -> float:
        return sum(self.observations)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The nearest-rank ``p``-th percentile (0 ≤ p ≤ 100).

        Raises :class:`~repro.errors.ReproError` on an empty histogram
        (there is no observation to rank) or an out-of-range ``p`` — both
        are caller bugs that a silent 0.0 would hide in a report.
        """
        if not 0 <= p <= 100:
            raise ReproError(f"percentile p must be in [0, 100], got {p}")
        if not self.observations:
            raise ReproError("percentile of an empty histogram is undefined")
        ordered = sorted(self.observations)
        rank = max(0, math.ceil(p / 100 * len(ordered)) - 1)
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        """count/total/min/max/mean plus p50/p90/p95/p99/p999."""
        if not self.observations:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p90": 0.0, "p95": 0.0,
                    "p99": 0.0, "p999": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": min(self.observations),
            "max": max(self.observations),
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
        }


class MetricsRegistry:
    """Named instruments with get-or-create accessors."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created on first use."""
        return self.counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created on first use."""
        return self.gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name``, created on first use."""
        return self.histograms.setdefault(name, Histogram())

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict view safe to serialize or embed in a report."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self.gauges.items())},
            "histograms": {name: h.summary()
                           for name, h in sorted(self.histograms.items())},
        }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (counters add, gauges adopt
        the other's last value when set, histograms concatenate)."""
        for name, counter in other.counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other.gauges.items():
            if gauge.value is not None:
                self.gauge(name).set(gauge.value)
        for name, histogram in other.histograms.items():
            self.histogram(name).observations.extend(histogram.observations)


@contextmanager
def wall_timer(registry: Optional[MetricsRegistry],
               name: str) -> Iterator[None]:
    """Record the block's wall-clock duration into histogram ``name``.

    Simulated clocks measure what the *modeled* system would take; this
    measures what the measurement itself costs — the number benchmark
    regressions watch.  A ``None`` registry makes the timer a no-op so
    call sites need no conditionals.
    """
    if registry is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        registry.histogram(name).observe(time.perf_counter() - start)


def observe_session(registry: MetricsRegistry, stats: TransferStats, *,
                    protocol: str = "session",
                    completion_time: Optional[float] = None) -> None:
    """Fold one session's transfer stats into ``registry``.

    Populates the standard instruments: a bits-per-session histogram, a
    session counter, per-direction messages-by-type counters, and (when
    the timed driver supplies one) a completion-time histogram in
    simulated seconds.
    """
    registry.counter(f"{protocol}.sessions").inc()
    registry.histogram(f"{protocol}.bits_per_session").observe(
        stats.total_bits)
    if stats.retries or stats.timeouts or stats.resumes:
        # Reliability instruments appear only when the ARQ transport
        # actually acted, keeping fault-free snapshots byte-identical.
        registry.counter(f"{protocol}.retries").inc(stats.retries)
        registry.counter(f"{protocol}.timeouts").inc(stats.timeouts)
        registry.counter(f"{protocol}.resumes").inc(stats.resumes)
        registry.counter(f"{protocol}.retransmitted_bits").inc(
            stats.total_retransmitted_bits)
    for direction_name, direction in (("forward", stats.forward),
                                      ("backward", stats.backward)):
        for type_name, count in direction.by_type.items():
            registry.counter(
                f"{protocol}.messages.{direction_name}.{type_name}"
            ).inc(count)
    if completion_time is not None:
        registry.histogram(f"{protocol}.completion_seconds").observe(
            completion_time)
