"""Waterfall rendering of a causal analysis: terminal and HTML.

The waterfall shows the convergence critical path as stacked horizontal
bars — one row per hop, offset by start time, shaded by attribution
category — followed by the per-session lanes (requested → started →
ended, queue wait hatched).  The terminal renderer draws with unicode
blocks; the HTML renderer emits a dependency-free self-contained page in
the same visual style as :mod:`repro.obs.dashboard` (and, like it,
escapes every interpolated name — site and protocol strings are
attacker-ish inputs as far as the report is concerned).

Both renderers consume the plain analysis *document* (the dict from
:meth:`repro.obs.causal.Analysis.to_dict`), so they work equally on a
fresh analysis or one loaded back from ``repro analyze --json`` output.
"""

from __future__ import annotations

import html
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.causal import CATEGORIES
from repro.obs.dashboard import _HTML_STYLE

#: Terminal shading per category, aligned with :data:`CATEGORIES`.
_GLYPHS = {"latency": "░", "serialization": "█", "fault_delay": "▒",
           "arq": "▓", "queueing": "·", "processing": "•"}
#: HTML bar colors per category (colorblind-safe-ish qualitative set).
_COLORS = {"latency": "#60a5fa", "serialization": "#1d4ed8",
           "fault_delay": "#f59e0b", "arq": "#b91c1c",
           "queueing": "#9ca3af", "processing": "#15803d"}


def _hop_label(hop: Dict[str, Any]) -> str:
    source, target = hop["from"], hop["to"]
    where = target.get("party") or source.get("party") or "?"
    what = target.get("message") or target["kind"]
    return f"{where}:{what}"


def _dominant(hop: Dict[str, Any]) -> str:
    categories = hop.get("categories") or {}
    if not categories:
        return "processing"
    return max(CATEGORIES,
               key=lambda name: categories.get(name, 0.0))


def render_waterfall(document: Dict[str, Any], *, width: int = 64) -> str:
    """Terminal waterfall of the critical path plus session lanes."""
    lines: List[str] = []
    path = document.get("critical_path")
    converged = document.get("converged", False)
    lines.append(f"causal waterfall — mode={document.get('mode', '?')} "
                 f"converged={'yes' if converged else 'NO'}")
    if path is None:
        lines.append("  (no timed events — nothing to draw)")
        return "\n".join(lines)
    start = path["start"]["time"]
    elapsed = path["elapsed"] or 1.0
    scale = width / elapsed
    lines.append(f"critical path: {path['elapsed']:.6f}s over "
                 f"{len(path['hops'])} hops, {path['rounds']} round(s)")
    for hop in path["hops"]:
        offset = int((hop["from"]["time"] - start) * scale)
        span = max(1, int(hop["elapsed"] * scale))
        glyph = _GLYPHS[_dominant(hop)]
        bar = " " * offset + glyph * span
        lines.append(f"  {bar:<{width + 2}} {_hop_label(hop)} "
                     f"[{_dominant(hop)}] {hop['elapsed']:.6f}s")
    attribution = path["attribution"]
    parts = ", ".join(f"{name}={attribution[name]:.6f}"
                      for name in CATEGORIES if attribution[name])
    lines.append(f"attribution: {parts or '0'}")
    sessions = document.get("sessions") or []
    timed = [s for s in sessions if "started" in s and "ended" in s]
    if timed:
        lo = min(s.get("requested", s["started"]) for s in timed)
        hi = max(s["ended"] for s in timed)
        scale = width / ((hi - lo) or 1.0)
        lines.append("sessions:")
        for summary in timed:
            requested = summary.get("requested", summary["started"])
            queue = int((summary["started"] - requested) * scale)
            busy = max(1, int((summary["ended"] - summary["started"])
                              * scale))
            offset = int((requested - lo) * scale)
            bar = " " * offset + "·" * queue + "█" * busy
            label = (f"#{summary['session']} "
                     f"{summary.get('src') or '?'}→"
                     f"{summary.get('dst') or '?'}")
            lines.append(f"  {bar:<{width + 2}} {label} "
                         f"{summary.get('duration', 0.0):.6f}s")
    coverage = document.get("coverage", {})
    if coverage.get("sampled"):
        lines.append(f"coverage: {coverage.get('fraction', 1.0):.3f} "
                     f"({coverage.get('kept', 0)}/{coverage.get('seen', 0)} "
                     "droppable events kept)")
    return "\n".join(lines)


def _bar_html(segments: List[Tuple[str, float]], total: float) -> str:
    """One stacked horizontal bar as nested divs (percent widths)."""
    if total <= 0:
        total = 1.0
    cells = []
    for category, value in segments:
        if value <= 0:
            continue
        pct = 100.0 * value / total
        cells.append(
            f'<div class="seg" style="width:{pct:.3f}%;'
            f'background:{_COLORS[category]}" title="{category}"></div>')
    return f'<div class="bar">{"".join(cells)}</div>'


def render_waterfall_html(document: Dict[str, Any], *,
                          title: str = "repro causal waterfall") -> str:
    """A self-contained HTML waterfall page (no external assets)."""
    out: List[str] = []
    out.append("<!DOCTYPE html><html><head><meta charset='utf-8'>")
    out.append(f"<title>{html.escape(title)}</title>")
    out.append(f"<style>{_HTML_STYLE}")
    out.append(".bar { display: flex; height: 14px; width: 420px;"
               " background: #f3f4f6; border: 1px solid #e5e7eb; }")
    out.append(".seg { height: 100%; }")
    out.append(".lane { margin-left: var(--off); }")
    out.append("</style></head><body>")
    out.append(f"<h1>{html.escape(title)}</h1>")
    converged = document.get("converged", False)
    badge = ("<span class='ok'>converged</span>" if converged
             else "<span class='bad'>did not converge</span>")
    out.append(f"<p class='meta'>mode {html.escape(str(document.get('mode', '?')))}"
               f" · {badge} · {document.get('nodes', 0)} nodes /"
               f" {document.get('edges', 0)} edges</p>")
    legend = " ".join(
        f"<span style='color:{_COLORS[name]}'>■</span> {html.escape(name)}"
        for name in CATEGORIES)
    out.append(f"<p class='meta'>{legend}</p>")
    path = document.get("critical_path")
    if path is not None:
        out.append("<h2>Convergence critical path</h2>")
        out.append(f"<p class='meta'>{path['elapsed']:.6f}s, "
                   f"{len(path['hops'])} hops, {path['rounds']} round(s); "
                   f"ends at seq {path['end']['seq']} "
                   f"({html.escape(str(path['end']['kind']))})</p>")
        out.append("<table><tr><th>hop</th><th>share</th>"
                   "<th class='num'>elapsed (s)</th><th>edge</th></tr>")
        for hop in path["hops"]:
            categories = hop.get("categories") or {}
            segments = [(name, categories.get(name, 0.0))
                        for name in CATEGORIES]
            out.append(
                "<tr>"
                f"<td>{html.escape(_hop_label(hop))}</td>"
                f"<td>{_bar_html(segments, path['elapsed'])}</td>"
                f"<td class='num'>{hop['elapsed']:.6f}</td>"
                f"<td>{html.escape(hop['edge'])}</td></tr>")
        out.append("</table>")
        attribution = path["attribution"]
        out.append("<h2>Critical-path attribution</h2>")
        out.append("<table><tr><th>category</th>"
                   "<th class='num'>seconds</th></tr>")
        for name in CATEGORIES:
            out.append(f"<tr><td>{html.escape(name)}</td>"
                       f"<td class='num'>{attribution[name]:.9f}</td></tr>")
        out.append("</table>")
    sessions = document.get("sessions") or []
    timed = [s for s in sessions if "started" in s and "ended" in s]
    if timed:
        out.append("<h2>Sessions</h2>")
        out.append("<table><tr><th>#</th><th>src→dst</th><th>protocol</th>"
                   "<th>attribution</th><th class='num'>queue (s)</th>"
                   "<th class='num'>duration (s)</th>"
                   "<th class='num'>coverage</th></tr>")
        for summary in timed:
            attribution = summary["attribution"]
            segments = [(name, attribution.get(name, 0.0))
                        for name in CATEGORIES]
            total = sum(value for _, value in segments)
            pair = (f"{summary.get('src') or '?'}"
                    f"→{summary.get('dst') or '?'}")
            out.append(
                "<tr>"
                f"<td class='num'>{html.escape(str(summary['session']))}</td>"
                f"<td>{html.escape(pair)}</td>"
                f"<td>{html.escape(str(summary.get('protocol') or '?'))}</td>"
                f"<td>{_bar_html(segments, total)}</td>"
                f"<td class='num'>{summary.get('queue_wait', 0.0):.6f}</td>"
                f"<td class='num'>{summary.get('duration', 0.0):.6f}</td>"
                f"<td class='num'>{summary.get('coverage', 1.0):.3f}</td>"
                "</tr>")
        out.append("</table>")
    out.append("</body></html>")
    return "".join(out)


def write_waterfall_html(path: str, document: Dict[str, Any], *,
                         title: str = "repro causal waterfall") -> None:
    """Write the self-contained HTML waterfall to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_waterfall_html(document, title=title))
