"""A checked-in schema for the OTLP-style JSON export, plus its validator.

Third-party schema validators are a dependency this repo does not take,
so :func:`validate` implements the small JSON-Schema subset the document
needs — ``type``, ``required``, ``properties``, ``items``, ``enum``,
``minimum``, ``pattern`` — and :data:`OTLP_SCHEMA` is the embedded source
of truth.  ``schemas/repro.obs.otlp.schema.json`` at the repository root
is the same schema checked in for external tooling (CI validates exports
against the file; a unit test pins file == dict so they cannot drift).

``python -m repro otlp-validate <export.json>`` runs the validation from
the command line and exits non-zero on the first violation.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List

from repro.errors import ReproError

#: Matches OTLP's stringified unsigned integers ("0", "12500000000").
_UINT_PATTERN = r"^[0-9]+$"

_ATTRIBUTES = {
    "type": "array",
    "items": {
        "type": "object",
        "required": ["key", "value"],
        "properties": {
            "key": {"type": "string"},
            "value": {"type": "object"},
        },
    },
}

_NUMBER_POINT = {
    "type": "object",
    "required": ["timeUnixNano"],
    "properties": {
        "timeUnixNano": {"type": "string", "pattern": _UINT_PATTERN},
        "asDouble": {"type": "number"},
        "asInt": {"type": "string", "pattern": _UINT_PATTERN},
        "attributes": _ATTRIBUTES,
    },
}

#: The OTLP-style export document produced by :func:`repro.obs.exporters.to_otlp`.
OTLP_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "$id": "repro.obs.otlp.schema.json",
    "title": "repro OTLP-style export",
    "type": "object",
    "required": ["resourceSpans", "resourceMetrics"],
    "properties": {
        "resourceSpans": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["resource", "scopeSpans"],
                "properties": {
                    "resource": {
                        "type": "object",
                        "required": ["attributes"],
                        "properties": {"attributes": _ATTRIBUTES},
                    },
                    "scopeSpans": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["scope", "spans"],
                            "properties": {
                                "scope": {
                                    "type": "object",
                                    "required": ["name"],
                                    "properties": {
                                        "name": {"type": "string"},
                                        "version": {"type": "string"},
                                    },
                                },
                                "spans": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": [
                                            "traceId", "spanId", "name",
                                            "kind", "startTimeUnixNano",
                                            "endTimeUnixNano",
                                        ],
                                        "properties": {
                                            "traceId": {
                                                "type": "string",
                                                "pattern":
                                                    "^[0-9a-f]{32}$",
                                            },
                                            "spanId": {
                                                "type": "string",
                                                "pattern":
                                                    "^[0-9a-f]{16}$",
                                            },
                                            "name": {"type": "string"},
                                            "kind": {"enum": [1, 2, 3, 4, 5]},
                                            "startTimeUnixNano": {
                                                "type": "string",
                                                "pattern": _UINT_PATTERN,
                                            },
                                            "endTimeUnixNano": {
                                                "type": "string",
                                                "pattern": _UINT_PATTERN,
                                            },
                                            "attributes": _ATTRIBUTES,
                                            "events": {
                                                "type": "array",
                                                "items": {
                                                    "type": "object",
                                                    "required": [
                                                        "name",
                                                        "timeUnixNano",
                                                    ],
                                                    "properties": {
                                                        "name": {
                                                            "type": "string",
                                                        },
                                                        "timeUnixNano": {
                                                            "type": "string",
                                                            "pattern":
                                                                _UINT_PATTERN,
                                                        },
                                                        "attributes":
                                                            _ATTRIBUTES,
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
        "resourceMetrics": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["resource", "scopeMetrics"],
                "properties": {
                    "resource": {
                        "type": "object",
                        "required": ["attributes"],
                        "properties": {"attributes": _ATTRIBUTES},
                    },
                    "scopeMetrics": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["scope", "metrics"],
                            "properties": {
                                "scope": {
                                    "type": "object",
                                    "required": ["name"],
                                    "properties": {
                                        "name": {"type": "string"},
                                        "version": {"type": "string"},
                                    },
                                },
                                "metrics": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": ["name"],
                                        "properties": {
                                            "name": {"type": "string"},
                                            "gauge": {
                                                "type": "object",
                                                "required": ["dataPoints"],
                                                "properties": {
                                                    "dataPoints": {
                                                        "type": "array",
                                                        "items":
                                                            _NUMBER_POINT,
                                                    },
                                                },
                                            },
                                            "sum": {
                                                "type": "object",
                                                "required": [
                                                    "dataPoints",
                                                    "aggregationTemporality",
                                                    "isMonotonic",
                                                ],
                                                "properties": {
                                                    "aggregationTemporality":
                                                        {"enum": [1, 2]},
                                                    "isMonotonic": {
                                                        "type": "boolean",
                                                    },
                                                    "dataPoints": {
                                                        "type": "array",
                                                        "items":
                                                            _NUMBER_POINT,
                                                    },
                                                },
                                            },
                                            "summary": {
                                                "type": "object",
                                                "required": ["dataPoints"],
                                                "properties": {
                                                    "dataPoints": {
                                                        "type": "array",
                                                        "items": {
                                                            "type": "object",
                                                            "required": [
                                                                "count",
                                                                "sum",
                                                                "timeUnixNano",
                                                                "quantileValues",
                                                            ],
                                                            "properties": {
                                                                "count": {
                                                                    "type":
                                                                        "string",
                                                                    "pattern":
                                                                        _UINT_PATTERN,
                                                                },
                                                                "sum": {
                                                                    "type":
                                                                        "number",
                                                                },
                                                                "timeUnixNano": {
                                                                    "type":
                                                                        "string",
                                                                    "pattern":
                                                                        _UINT_PATTERN,
                                                                },
                                                                "quantileValues": {
                                                                    "type":
                                                                        "array",
                                                                    "items": {
                                                                        "type":
                                                                            "object",
                                                                        "required": [
                                                                            "quantile",
                                                                            "value",
                                                                        ],
                                                                        "properties": {
                                                                            "quantile": {
                                                                                "type": "number",
                                                                                "minimum": 0,
                                                                            },
                                                                            "value": {
                                                                                "type": "number",
                                                                            },
                                                                        },
                                                                    },
                                                                },
                                                            },
                                                        },
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: (isinstance(v, (int, float))
                         and not isinstance(v, bool)),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate(document: Any, schema: Dict[str, Any],
             path: str = "$") -> List[str]:
    """Violations of ``schema`` in ``document`` (empty list = valid).

    Supports the JSON-Schema subset the OTLP export uses: ``type``,
    ``required``, ``properties``, ``items``, ``enum``, ``minimum``,
    ``pattern``.  Unknown keys in the document are allowed (OTLP is
    forward-extensible); unknown keywords in the *schema* are ignored.
    """
    errors: List[str] = []
    expected = schema.get("type")
    if expected is not None:
        check = _TYPE_CHECKS.get(expected)
        if check is None:
            raise ReproError(f"unsupported schema type {expected!r}")
        if not check(document):
            errors.append(f"{path}: expected {expected}, "
                          f"got {type(document).__name__}")
            return errors  # structural mismatch; nothing deeper to check
    if "enum" in schema and document not in schema["enum"]:
        errors.append(f"{path}: {document!r} not in {schema['enum']!r}")
    if "minimum" in schema and isinstance(document, (int, float)) \
            and not isinstance(document, bool) \
            and document < schema["minimum"]:
        errors.append(f"{path}: {document} < minimum {schema['minimum']}")
    if "pattern" in schema and isinstance(document, str) \
            and not re.search(schema["pattern"], document):
        errors.append(f"{path}: {document!r} does not match "
                      f"{schema['pattern']!r}")
    if isinstance(document, dict):
        for key in schema.get("required", ()):
            if key not in document:
                errors.append(f"{path}: missing required key {key!r}")
        for key, subschema in schema.get("properties", {}).items():
            if key in document:
                errors.extend(validate(document[key], subschema,
                                       f"{path}.{key}"))
    if isinstance(document, list) and "items" in schema:
        for index, item in enumerate(document):
            errors.extend(validate(item, schema["items"],
                                   f"{path}[{index}]"))
    return errors


def validate_otlp(document: Any) -> List[str]:
    """Violations of the export schema in ``document`` (empty = valid)."""
    return validate(document, OTLP_SCHEMA)


def schema_main(argv: Any = None) -> int:
    """``repro otlp-validate <export.json> [--schema <file>]``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro otlp-validate",
        description="Validate an OTLP-style JSON export against the "
                    "checked-in schema.")
    parser.add_argument("path", help="export document to validate")
    parser.add_argument("--schema", default=None,
                        help="validate against this schema file instead of "
                             "the embedded schema")
    args = parser.parse_args(argv)
    with open(args.path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    schema = OTLP_SCHEMA
    if args.schema is not None:
        with open(args.schema, "r", encoding="utf-8") as handle:
            schema = json.load(handle)
    errors = validate(document, schema)
    if errors:
        for error in errors:
            print(f"INVALID {error}")
        return 1
    print(f"OK {args.path} conforms to {schema.get('$id', 'schema')}")
    return 0
