"""Standard-format exporters: Prometheus text and OTLP-style JSON.

The in-tree instruments (:mod:`repro.obs.metrics`,
:mod:`repro.obs.trace`, :mod:`repro.obs.monitor`) are deliberately
dependency-free Python objects; real fleets speak Prometheus and
OpenTelemetry.  This module renders the former into the latter without
importing either client library:

* :func:`to_prometheus` — the text exposition format (``# HELP`` /
  ``# TYPE`` comments, ``_total`` counters, summary quantiles), one
  sample line per instrument, monitor gauges labeled by site.
* :func:`to_otlp` — a JSON document shaped like an OTLP export request:
  ``resourceSpans`` rebuilt from the tracer's ``span_start``/``span_end``
  pairs (reliability and invariant events nested as span events) and
  ``resourceMetrics`` covering the registry plus the monitor's full
  time-series rings (one gauge data point per sample, attributed by
  site).  Valid against :data:`repro.obs.otlp_schema.OTLP_SCHEMA`.

Both are pure functions of already-collected state: exporting twice, or
never, changes no measurement.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional

from repro.obs import trace as obs
from repro.obs.consistency import (CONSISTENCY_GAUGE_NAMES,
                                   ConsistencyMonitor)
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitor import GAUGE_NAMES, ClusterMonitor
from repro.obs.trace import Tracer

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")

#: Quantiles a histogram summary exports, in label order.
_SUMMARY_QUANTILES = ("p50", "p90", "p95", "p99", "p999")

#: Trace kinds worth re-publishing as OTLP span events (the reliability
#: and correctness signals; routine wire chatter stays out of the export).
_SPAN_EVENT_KINDS = frozenset({
    obs.FAULT, obs.RETRY, obs.TIMEOUT, obs.SESSION_ABORT,
    obs.INVARIANT_VIOLATION, obs.CONSISTENCY_VIOLATION,
})


def _quantile_label(quantile: str) -> str:
    # "p50" -> "0.50"-style labels: insert the decimal point after the
    # leading digit fraction ("p999" -> "0.999").
    return f"0.{quantile[1:]}"


def _prom_name(name: str, prefix: str) -> str:
    return f"{prefix}_{_NAME_RE.sub('_', name)}"


def _prom_value(value: float) -> str:
    # Integral floats print as integers — 3, not 3.0 — matching what
    # client_golang and client_python emit for counters.
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def to_prometheus(metrics: Optional[MetricsRegistry] = None,
                  monitor: Optional[ClusterMonitor] = None, *,
                  consistency: Optional[ConsistencyMonitor] = None,
                  prefix: str = "repro") -> str:
    """Render instruments in the Prometheus text exposition format.

    Counters become ``<prefix>_<name>_total`` counter samples, gauges
    become gauges, histograms become summaries (p50/p90/p95/p99/p999
    quantile labels plus ``_sum``/``_count``).  A monitor contributes one
    gauge family per health series, labeled ``{site="..."}`` with each
    site's latest sample, plus violation and pressure counters.  A
    consistency monitor contributes its divergence gauge families the
    same way, the w_k/w_all visibility summaries, and the
    session-guarantee violation counters.
    """
    lines: List[str] = []

    def family(name: str, kind: str, help_text: str) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    if metrics is not None:
        snapshot = metrics.snapshot()
        for name, value in snapshot["counters"].items():
            prom = _prom_name(name, prefix) + "_total"
            family(prom, "counter", f"repro counter {name}")
            lines.append(f"{prom} {_prom_value(float(value))}")
        for name, value in snapshot["gauges"].items():
            if value is None:
                continue
            prom = _prom_name(name, prefix)
            family(prom, "gauge", f"repro gauge {name}")
            lines.append(f"{prom} {_prom_value(float(value))}")
        for name, summary in snapshot["histograms"].items():
            prom = _prom_name(name, prefix)
            family(prom, "summary", f"repro histogram {name}")
            for quantile in _SUMMARY_QUANTILES:
                lines.append(
                    f'{prom}{{quantile="{_quantile_label(quantile)}"}} '
                    f'{_prom_value(float(summary[quantile]))}')
            lines.append(f"{prom}_sum {_prom_value(float(summary['total']))}")
            lines.append(f"{prom}_count {int(summary['count'])}")
    if monitor is not None:
        for gauge_name in GAUGE_NAMES:
            prom = f"{prefix}_monitor_{gauge_name}"
            family(prom, "gauge", f"cluster health gauge {gauge_name}")
            for site in monitor.sites:
                value = monitor.latest(site, gauge_name)
                if value is None:
                    continue
                label = _LABEL_RE.sub("_", site)
                lines.append(f'{prom}{{site="{label}"}} '
                             f'{_prom_value(value)}')
        prom = f"{prefix}_monitor_invariant_violations_total"
        family(prom, "counter", "inline invariant checker failures")
        lines.append(f"{prom} {monitor.violation_count}")
        prom = f"{prefix}_monitor_samples_total"
        family(prom, "counter", "health samples taken")
        lines.append(f"{prom} {monitor.samples}")
        prom = f"{prefix}_monitor_pressure_events_total"
        family(prom, "counter",
               "ARQ reliability events (retries, timeouts, aborts, resumes)")
        for site in monitor.sites:
            label = _LABEL_RE.sub("_", site)
            for event_kind, count in sorted(monitor.pressure(site).items()):
                lines.append(
                    f'{prom}{{site="{label}",kind="{event_kind}"}} {count}')
    if consistency is not None:
        for gauge_name in CONSISTENCY_GAUGE_NAMES:
            prom = f"{prefix}_consistency_{gauge_name}"
            family(prom, "gauge", f"store consistency gauge {gauge_name}")
            for site in consistency.sites:
                value = consistency.latest(site, gauge_name)
                if value is None:
                    continue
                label = _LABEL_RE.sub("_", site)
                lines.append(f'{prom}{{site="{label}"}} '
                             f'{_prom_value(value)}')
        for hist_name, histogram, help_text in (
                ("visibility_wk_seconds", consistency.w_k,
                 "write visibility latency at k replicas"),
                ("visibility_wall_seconds", consistency.w_all,
                 "write visibility latency at all sites")):
            prom = f"{prefix}_consistency_{hist_name}"
            family(prom, "summary", help_text)
            summary = histogram.summary()
            for quantile in _SUMMARY_QUANTILES:
                lines.append(
                    f'{prom}{{quantile="{_quantile_label(quantile)}"}} '
                    f'{_prom_value(float(summary[quantile]))}')
            lines.append(f"{prom}_sum {_prom_value(float(summary['total']))}")
            lines.append(f"{prom}_count {int(summary['count'])}")
        prom = f"{prefix}_consistency_violations_total"
        family(prom, "counter", "session-guarantee audit violations")
        lines.append(f"{prom} {consistency.violation_count}")
        for check, count in sorted(consistency.audit_counts().items()):
            lines.append(f'{prom}{{check="{check}"}} {count}')
        prom = f"{prefix}_consistency_samples_total"
        family(prom, "counter", "consistency samples taken")
        lines.append(f"{prom} {consistency.samples}")
    return "\n".join(lines) + "\n" if lines else ""


# -- OTLP-style JSON ---------------------------------------------------------------


def _nanos(time: Optional[float]) -> int:
    return int(round(time * 1e9)) if time is not None else 0


def _attr_value(value: Any) -> Dict[str, Any]:
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def _attrs(mapping: Dict[str, Any]) -> List[Dict[str, Any]]:
    return [{"key": key, "value": _attr_value(value)}
            for key, value in mapping.items() if value is not None]


def _build_spans(tracer: Tracer) -> List[Dict[str, Any]]:
    spans: Dict[int, Dict[str, Any]] = {}
    for event in tracer.events:
        if event.kind == obs.SPAN_START:
            attrs = {key: value for key, value in event.fields.items()
                     if key != "name"}
            spans[event.span_id] = {
                "traceId": f"{1:032x}",
                "spanId": f"{event.span_id + 1:016x}",
                "name": str(event.fields.get("name", f"span-{event.span_id}")),
                "kind": 1,  # SPAN_KIND_INTERNAL
                "startTimeUnixNano": str(_nanos(event.time)),
                "endTimeUnixNano": str(_nanos(event.time)),
                "attributes": _attrs(attrs),
                "events": [],
            }
        elif event.kind == obs.SPAN_END:
            span = spans.get(event.span_id)
            if span is not None:
                span["endTimeUnixNano"] = str(_nanos(event.time))
        elif event.kind in _SPAN_EVENT_KINDS and event.span_id in spans:
            attrs = dict(event.fields)
            if event.party is not None:
                attrs["party"] = event.party
            spans[event.span_id]["events"].append({
                "name": event.kind,
                "timeUnixNano": str(_nanos(event.time)),
                "attributes": _attrs(attrs),
            })
    return [spans[span_id] for span_id in sorted(spans)]


def _summary_point(summary: Dict[str, float]) -> Dict[str, Any]:
    return {
        "count": str(int(summary["count"])),
        "sum": float(summary["total"]),
        "timeUnixNano": "0",
        "quantileValues": [
            {"quantile": 0.5, "value": float(summary["p50"])},
            {"quantile": 0.9, "value": float(summary["p90"])},
            {"quantile": 0.95, "value": float(summary["p95"])},
            {"quantile": 0.99, "value": float(summary["p99"])},
            {"quantile": 0.999, "value": float(summary["p999"])},
        ],
    }


def _metric_entries(metrics: Optional[MetricsRegistry],
                    monitor: Optional[ClusterMonitor],
                    consistency: Optional[ConsistencyMonitor],
                    prefix: str) -> List[Dict[str, Any]]:
    entries: List[Dict[str, Any]] = []
    if metrics is not None:
        snapshot = metrics.snapshot()
        for name, value in snapshot["counters"].items():
            entries.append({
                "name": f"{prefix}.{name}",
                "sum": {
                    "aggregationTemporality": 2,  # CUMULATIVE
                    "isMonotonic": True,
                    "dataPoints": [{"asInt": str(value),
                                    "timeUnixNano": "0"}],
                },
            })
        for name, value in snapshot["gauges"].items():
            if value is None:
                continue
            entries.append({
                "name": f"{prefix}.{name}",
                "gauge": {"dataPoints": [{"asDouble": float(value),
                                          "timeUnixNano": "0"}]},
            })
        for name, summary in snapshot["histograms"].items():
            entries.append({
                "name": f"{prefix}.{name}",
                "summary": {"dataPoints": [_summary_point(summary)]},
            })
    if monitor is not None:
        for gauge_name in GAUGE_NAMES:
            points: List[Dict[str, Any]] = []
            for site in monitor.sites:
                site_attrs = _attrs({"site": site})
                for time, value in monitor.series(site, gauge_name):
                    points.append({
                        "asDouble": float(value),
                        "timeUnixNano": str(_nanos(time)),
                        "attributes": site_attrs,
                    })
            entries.append({
                "name": f"{prefix}.monitor.{gauge_name}",
                "gauge": {"dataPoints": points},
            })
        entries.append({
            "name": f"{prefix}.monitor.invariant_violations",
            "sum": {
                "aggregationTemporality": 2,
                "isMonotonic": True,
                "dataPoints": [{"asInt": str(monitor.violation_count),
                                "timeUnixNano": "0"}],
            },
        })
    if consistency is not None:
        for gauge_name in CONSISTENCY_GAUGE_NAMES:
            points: List[Dict[str, Any]] = []
            for site in consistency.sites:
                site_attrs = _attrs({"site": site})
                for time, value in consistency.series(site, gauge_name):
                    points.append({
                        "asDouble": float(value),
                        "timeUnixNano": str(_nanos(time)),
                        "attributes": site_attrs,
                    })
            entries.append({
                "name": f"{prefix}.consistency.{gauge_name}",
                "gauge": {"dataPoints": points},
            })
        for hist_name, histogram in (
                ("visibility_wk_seconds", consistency.w_k),
                ("visibility_wall_seconds", consistency.w_all)):
            entries.append({
                "name": f"{prefix}.consistency.{hist_name}",
                "summary": {
                    "dataPoints": [_summary_point(histogram.summary())]},
            })
        entries.append({
            "name": f"{prefix}.consistency.violations",
            "sum": {
                "aggregationTemporality": 2,
                "isMonotonic": True,
                "dataPoints": [
                    {"asInt": str(consistency.violation_count),
                     "timeUnixNano": "0"}],
            },
        })
    return entries


def to_otlp(tracer: Optional[Tracer] = None,
            metrics: Optional[MetricsRegistry] = None,
            monitor: Optional[ClusterMonitor] = None, *,
            consistency: Optional[ConsistencyMonitor] = None,
            service_name: str = "repro",
            prefix: str = "repro") -> Dict[str, Any]:
    """An OTLP-style JSON document over collected spans and metrics.

    Simulated-clock stamps become ``timeUnixNano`` relative to epoch 0 —
    the simulation's own origin, deliberately not wall time, so two runs
    of the same schedule export identical documents.  Validate with
    :func:`repro.obs.otlp_schema.validate_otlp`.
    """
    resource = {"attributes": _attrs({"service.name": service_name})}
    scope = {"name": "repro.obs", "version": "1"}
    return {
        "resourceSpans": [{
            "resource": resource,
            "scopeSpans": [{
                "scope": scope,
                "spans": _build_spans(tracer) if tracer is not None else [],
            }],
        }],
        "resourceMetrics": [{
            "resource": resource,
            "scopeMetrics": [{
                "scope": scope,
                "metrics": _metric_entries(metrics, monitor, consistency,
                                           prefix),
            }],
        }],
    }
