"""The store consistency observatory: staleness, visibility, guarantees.

:mod:`repro.obs.monitor` watches *synchronization* health — frontiers,
backlogs, retries.  What a client of the replicated store experiences is
*consistency*: how stale its reads are, how long a write takes to become
visible everywhere, and whether siblings converge or resurrect.  A
:class:`ConsistencyMonitor` attaches to a
:class:`~repro.store.cluster.StoreCluster` and measures exactly that,
live, with the same observer contract as :class:`~repro.obs.monitor.
ClusterMonitor`: it subscribes to the cluster's tracer, reads records in
place, never schedules simulator events, and a run with ``monitor=None``
(the default) executes byte-for-byte the unmonitored code path.

Divergence gauges (per site, sampled on a cadence into ring buffers)
--------------------------------------------------------------------

* **sibling population** — stored sibling values across the site's keys
  (tombstones included); growth means concurrent writes are outpacing
  supersession.
* **frontier distance** — per key, how many vector elements the site is
  behind the fleet-wide element-wise max, summed over keys.
* **anti-entropy lag** — simulated seconds since the site last absorbed
  a completed session (how long it has been syncing nothing).
* **replication lag** — the newest-write watermark gap: the global
  newest client-write time minus the newest write time this site
  reflects.  Zero means the site has (at least transitively) heard the
  fleet's latest write.

Write-visibility watermarks
---------------------------

Every put/delete is stamped with its coordinating execution time.  A
write is *visible* at a site once the site's per-key watermark
(:attr:`~repro.store.kv.KeyRecord.updated_at` — the newest client-write
time the replica reflects, advanced only by local writes and absorbs)
reaches the write's stamp.  The monitor records the exact simulated
latency until each write is visible at ``k`` replicas (``w_k``) and at
every site (``w_all``) as histograms, p999 included.  Watermarks are
monotone per (site, key) — puts take ``max`` and absorbs only move
forward — and the monitor *checks* that inline: a regression raises the
``visibility_watermark`` violation.

Session-guarantee auditor
-------------------------

:meth:`ConsistencyMonitor.audit_op` consumes a sticky client's own
get/put stream (the client workload feeds it) and checks two session
guarantees the ROADMAP wants to ship, before their semantics exist:

* **read-your-writes** — a read's causal context must cover the
  client's last write context for the key;
* **monotonic reads** — a read's context must cover everything the
  client has already observed for the key, and a value the client saw
  superseded must never resurface (``resurrection``) — the documented
  union-resurrection limitation of the value-set sibling fold
  (docs/STORE.md) trips exactly this check, turning a known limitation
  into a measured, regression-gated quantity.

Violations emit structured ``consistency_violation`` trace events and
are counted; ``strict=True`` raises
:class:`~repro.errors.InvariantViolationError` on the first one,
mirroring the invariant checkers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import InvariantViolationError
from repro.obs import trace as obs
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.monitor import InvariantViolation, RingBuffer
from repro.obs.otlp_schema import validate
from repro.obs.trace import TraceEvent, Tracer

#: The per-site gauges every consistency sample records.
CONSISTENCY_GAUGE_NAMES = ("sibling_population", "frontier_distance",
                           "anti_entropy_lag", "replication_lag")

#: The session-guarantee checks the auditor runs, in report order.
AUDIT_CHECKS = ("read_your_writes", "monotonic_reads", "resurrection")

#: Digest schema identifier (bump on breaking digest shape changes).
DIGEST_SCHEMA_ID = "repro.obs.consistency/1"


@dataclass(frozen=True)
class ConsistencyConfig:
    """Knobs of one :class:`ConsistencyMonitor`.

    Attributes:
        cadence: simulated seconds between divergence samples (> 0);
            sampled lazily on observed clock movement, exactly like
            :class:`~repro.obs.monitor.MonitorConfig`.
        ring_capacity: samples kept per (site, gauge) series.
        strict: raise :class:`~repro.errors.InvariantViolationError` on
            the first violation instead of counting it.
        visibility_k: the ``k`` of the ``w_k`` histogram — a write
            counts as k-visible once ``min(k, n_sites)`` sites reflect
            it (the coordinator itself is the first).
        audit: run the session-guarantee auditor (the workload feeds it
            via :meth:`ConsistencyMonitor.audit_op`).
        worst_keys: entries in the digest's worst-offender panel.
    """

    cadence: float = 0.25
    ring_capacity: int = 1024
    strict: bool = False
    visibility_k: int = 2
    audit: bool = True
    worst_keys: int = 5

    def __post_init__(self) -> None:
        if self.cadence <= 0:
            raise ValueError(f"cadence must be > 0, got {self.cadence}")
        if self.ring_capacity < 1:
            raise ValueError(f"ring_capacity must be >= 1, "
                             f"got {self.ring_capacity}")
        if self.visibility_k < 1:
            raise ValueError(f"visibility_k must be >= 1, "
                             f"got {self.visibility_k}")
        if self.worst_keys < 0:
            raise ValueError(f"worst_keys must be >= 0, "
                             f"got {self.worst_keys}")


@dataclass
class _PendingWrite:
    """One stamped write not yet visible at every site."""

    written_at: float
    arrived: Set[str]
    k_done: bool = False


@dataclass
class _SessionAudit:
    """One sticky (client, key) session's observed-state bookkeeping."""

    write_context: Optional[Dict[str, int]] = None
    observed_context: Dict[str, int] = field(default_factory=dict)
    last_values: Tuple[Any, ...] = ()
    #: Values this client observed being superseded (they vanished from
    #: a later observation of the key).
    superseded: Set[Any] = field(default_factory=set)
    #: Superseded values already reported as resurrected (flag once).
    flagged: Set[Any] = field(default_factory=set)


def _covers(context: Dict[str, int], reference: Dict[str, int]) -> bool:
    """Whether ``context`` dominates ``reference`` element-wise."""
    return all(context.get(site, 0) >= count
               for site, count in reference.items())


class ConsistencyMonitor:
    """Live consistency gauges + session-guarantee audit for one store run.

    One-shot like the cluster it watches::

        monitor = ConsistencyMonitor(ConsistencyConfig(strict=False))
        result = run_store_workload(config, monitor=monitor)
        print(result.consistency["w_all_seconds"]["p99"])

    The cluster calls :meth:`attach` when its run starts, the per-event
    hooks while it executes, and :meth:`finalize` when its simulator
    drains; the client workload feeds :meth:`audit_op` from its own
    completion stream.  User code reads :meth:`summary` (the
    schema-validated digest), the ring series, or the violations list.
    """

    def __init__(self, config: ConsistencyConfig = ConsistencyConfig(), *,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.config = config
        self.metrics = metrics
        #: The monitor's private tracer; a cluster constructed without a
        #: tracer adopts it so store events exist to observe.
        self.tracer = Tracer()
        self.violations: List[InvariantViolation] = []
        self.samples = 0
        self.sites: List[str] = []
        #: Visibility latency until ``min(k, n_sites)`` sites reflect a write.
        self.w_k = Histogram()
        #: Visibility latency until every site reflects a write.
        self.w_all = Histogram()
        self._cluster: Any = None
        self._series: Dict[str, Dict[str, RingBuffer]] = {}
        self._pending: Dict[str, List[_PendingWrite]] = {}
        self._writes_tracked = 0
        self._writes_visible_all = 0
        self._newest_write = 0.0
        self._site_watermark: Dict[str, float] = {}
        self._last_absorb: Dict[str, float] = {}
        self._key_watermarks: Dict[Tuple[str, str], float] = {}
        self._next_sample: Optional[float] = None
        self._subscribed: Optional[Tracer] = None
        self._finalized = False
        self._audit: Dict[Tuple[int, str], _SessionAudit] = {}
        self._audit_ops = 0
        self._audit_counts: Dict[str, int] = {check: 0
                                              for check in AUDIT_CHECKS}
        self._key_violations: Dict[str, int] = {}
        self._clients_affected: Set[int] = set()

    # -- lifecycle ---------------------------------------------------------------

    def attach(self, cluster: Any) -> None:
        """Bind to a :class:`~repro.store.cluster.StoreCluster` starting up.

        Called by the cluster itself at the top of ``run()``; subscribes
        to its tracer, initializes every site's series, and takes the
        t=0 sample.
        """
        if self._cluster is not None:
            raise InvariantViolationError(
                "ConsistencyMonitor instances are one-shot; attach a "
                "fresh one per run")
        self._cluster = cluster
        self.sites = list(cluster.sites)
        for site in self.sites:
            self._series[site] = {
                name: RingBuffer(self.config.ring_capacity)
                for name in CONSISTENCY_GAUGE_NAMES}
            self._site_watermark[site] = 0.0
            self._last_absorb[site] = 0.0
        tracer = cluster.tracer
        if tracer is not None:
            tracer.subscribe(self._on_trace_event)
            self._subscribed = tracer
        self._next_sample = self.config.cadence
        self._sample(0.0)

    def finalize(self) -> None:
        """Take the final sample and unsubscribe from the tracer."""
        if self._cluster is None or self._finalized:
            return
        self._finalized = True
        self._sample(self._now())
        if self._subscribed is not None:
            self._subscribed.unsubscribe(self._on_trace_event)
            self._subscribed = None

    # -- cluster hooks -----------------------------------------------------------

    def on_client_op(self, kind: str, site: str, key: str,
                     now: float) -> None:
        """A client op executed at its coordinating site.

        Writes (put/delete) are stamped here: the coordinator is the
        write's first visible replica, and its per-key watermark moves
        to ``now`` (:meth:`~repro.store.kv.SiteStore.put` takes the
        ``max``, so this ratchet cannot regress).
        """
        if kind != "get":
            self._writes_tracked += 1
            if now > self._newest_write:
                self._newest_write = now
            if now > self._site_watermark[site]:
                self._site_watermark[site] = now
            self._ratchet(site, key, now, now)
            pending = _PendingWrite(written_at=now, arrived={site})
            if len(pending.arrived) >= self._effective_k():
                pending.k_done = True
                self.w_k.observe(0.0)
            if len(pending.arrived) >= len(self.sites):
                self.w_all.observe(0.0)
                self._writes_visible_all += 1
            else:
                self._pending.setdefault(key, []).append(pending)
        self._maybe_sample(now)

    def on_absorb(self, site: str, key: str, updated_at: float,
                  now: float) -> None:
        """A completed session folded ``key`` into ``site``.

        ``updated_at`` is the destination record's post-absorb
        watermark: every stamped write with ``written_at <= updated_at``
        is now visible at ``site``, which is what advances the w_k /
        w_all histograms and the site's replication-lag numerator.
        """
        self._last_absorb[site] = now
        self._ratchet(site, key, updated_at, now)
        if updated_at > self._site_watermark[site]:
            self._site_watermark[site] = updated_at
        pending = self._pending.get(key)
        if pending:
            n_sites = len(self.sites)
            remaining: List[_PendingWrite] = []
            for write in pending:
                if (write.written_at <= updated_at
                        and site not in write.arrived):
                    write.arrived.add(site)
                    if (not write.k_done
                            and len(write.arrived) >= self._effective_k()):
                        write.k_done = True
                        self.w_k.observe(now - write.written_at)
                    if len(write.arrived) >= n_sites:
                        self.w_all.observe(now - write.written_at)
                        self._writes_visible_all += 1
                        continue
                remaining.append(write)
            if remaining:
                self._pending[key] = remaining
            else:
                del self._pending[key]
        self._maybe_sample(now)

    def on_session_end(self, now: float) -> None:
        """A session released its endpoints; the clock may have moved."""
        self._maybe_sample(now)

    # -- the trace stream --------------------------------------------------------

    def _on_trace_event(self, event: TraceEvent) -> None:
        if (event.time is not None
                and event.kind != obs.CONSISTENCY_VIOLATION):
            self._maybe_sample(event.time)

    # -- sampling ----------------------------------------------------------------

    def _now(self) -> float:
        sim = getattr(self._cluster, "sim", None)
        return sim.now if sim is not None else 0.0

    def _effective_k(self) -> int:
        if not self.sites:
            return self.config.visibility_k
        return min(self.config.visibility_k, len(self.sites))

    def _maybe_sample(self, now: float) -> None:
        if self._next_sample is None or now < self._next_sample:
            return
        self._sample(now)
        cadence = self.config.cadence
        # Skip boundaries the clock already jumped over (same contract
        # as ClusterMonitor: next sample is one cadence past *now*).
        periods = int((now - self._next_sample) / cadence) + 1
        self._next_sample += periods * cadence

    def _sample(self, now: float) -> None:
        """Record one divergence sample for every site at ``now``.

        A key's frontier is the element-wise max of its vector over
        every site that has heard of it; a site's frontier distance
        counts the elements it is behind, summed over keys.
        """
        stores = self._cluster.stores
        keys: Set[str] = set()
        for store in stores.values():
            keys.update(store.table)
        ordered_keys = sorted(keys)
        frontiers: Dict[str, Dict[str, int]] = {}
        for key in ordered_keys:
            frontier: Dict[str, int] = {}
            for store in stores.values():
                record = store.table.get(key)
                if record is None:
                    continue
                for elem_site, count in record.vector.elements():
                    if count > frontier.get(elem_site, 0):
                        frontier[elem_site] = count
            frontiers[key] = frontier
        for site in self.sites:
            store = stores[site]
            distance = 0
            for key in ordered_keys:
                record = store.table.get(key)
                known = (dict(record.vector.elements())
                         if record is not None else {})
                for elem_site, peak in frontiers[key].items():
                    if peak > known.get(elem_site, 0):
                        distance += 1
            series = self._series[site]
            series["sibling_population"].append(
                now, float(store.sibling_population()))
            series["frontier_distance"].append(now, float(distance))
            series["anti_entropy_lag"].append(
                now, now - self._last_absorb[site])
            series["replication_lag"].append(
                now, max(0.0, self._newest_write
                         - self._site_watermark[site]))
            if self.metrics is not None:
                for name in CONSISTENCY_GAUGE_NAMES:
                    self.metrics.gauge(
                        f"consistency.{site}.{name}").set(
                            series[name].latest())
        self.samples += 1
        if self.metrics is not None:
            self.metrics.counter("consistency.samples").inc()

    # -- invariants --------------------------------------------------------------

    def _ratchet(self, site: str, key: str, watermark: float,
                 now: float) -> None:
        """Advance one (site, key) visibility watermark; it must never
        regress — puts take ``max`` and absorbs only move forward."""
        previous = self._key_watermarks.get((site, key), 0.0)
        if watermark < previous:
            self._violate(
                "visibility_watermark", now,
                f"{site}/{key} watermark regressed "
                f"{previous:.6f} -> {watermark:.6f}",
                site=site, key=key)
            return
        self._key_watermarks[(site, key)] = watermark

    def _violate(self, check: str, now: float, message: str,
                 **fields: Any) -> None:
        violation = InvariantViolation(check=check, message=message,
                                       time=now, fields=dict(fields))
        self.violations.append(violation)
        key = fields.get("key")
        if key is not None:
            self._key_violations[key] = self._key_violations.get(key, 0) + 1
        tracer = (self._cluster.tracer
                  if self._cluster is not None else None)
        if tracer is None:
            tracer = self.tracer
        tracer.event(obs.CONSISTENCY_VIOLATION, time=now, check=check,
                     message=message, **fields)
        if self.metrics is not None:
            self.metrics.counter("consistency.violations").inc()
            self.metrics.counter(f"consistency.violations.{check}").inc()
        if self.config.strict:
            raise InvariantViolationError(
                f"consistency {check!r} violated at t={now:.6f}: {message}")

    # -- the session-guarantee auditor -------------------------------------------

    def audit_op(self, client: int, kind: str, key: str, result: Any,
                 time: float) -> None:
        """Audit one sticky client's executed op against its history.

        ``result`` is the op's :class:`~repro.store.kv.ReadResult` (the
        post-write read for puts/deletes).  Reads are checked for
        read-your-writes (context covers the client's last write),
        monotonic reads (context covers everything already observed),
        and value resurrection (a sibling the client saw superseded
        resurfaced — flagged once per value).  Values must be hashable;
        the store workload's are strings.
        """
        if not self.config.audit:
            return
        self._audit_ops += 1
        state = self._audit.setdefault((client, key), _SessionAudit())
        context = result.context
        values = tuple(result.values)
        if kind == "get":
            if (state.write_context is not None
                    and not _covers(context, state.write_context)):
                self._audit_violate(
                    "read_your_writes", key, client, time,
                    f"client {client} read {key} with context {context} "
                    f"not covering its last write {state.write_context}")
            elif not _covers(context, state.observed_context):
                self._audit_violate(
                    "monotonic_reads", key, client, time,
                    f"client {client} read {key} with context {context} "
                    f"behind its observed {state.observed_context}")
            for value in values:
                if value in state.superseded and value not in state.flagged:
                    state.flagged.add(value)
                    self._audit_violate(
                        "resurrection", key, client, time,
                        f"client {client} saw superseded sibling "
                        f"{value!r} of {key} resurface",
                        value=str(value))
        else:
            state.write_context = dict(context)
        state.superseded.update(value for value in state.last_values
                                if value not in values)
        state.last_values = values
        for site, count in context.items():
            if count > state.observed_context.get(site, 0):
                state.observed_context[site] = count

    def _audit_violate(self, check: str, key: str, client: int,
                       time: float, message: str, **extra: Any) -> None:
        self._audit_counts[check] += 1
        self._clients_affected.add(client)
        self._violate(check, time, message, key=key, client=client, **extra)

    # -- read API ----------------------------------------------------------------

    @property
    def violation_count(self) -> int:
        return len(self.violations)

    def series(self, site: str, name: str) -> List[Tuple[float, float]]:
        """One site's ``(time, value)`` series for gauge ``name``."""
        return self._series[site][name].items()

    def latest(self, site: str, name: str) -> Optional[float]:
        """The most recent sample of one site's gauge (None before any)."""
        return self._series[site][name].latest()

    def key_watermark(self, site: str, key: str) -> float:
        """The (site, key) visibility watermark last ratcheted."""
        return self._key_watermarks.get((site, key), 0.0)

    def audit_counts(self) -> Dict[str, int]:
        """Cumulative violations per session-guarantee check."""
        return dict(self._audit_counts)

    def worst_keys(self, limit: Optional[int] = None
                   ) -> List[Dict[str, Any]]:
        """Keys ranked worst-first: most violations, fattest sibling
        sets, widest staleness spread across replicas."""
        if limit is None:
            limit = self.config.worst_keys
        stores = self._cluster.stores if self._cluster is not None else {}
        keys: Set[str] = set(self._key_violations)
        for store in stores.values():
            keys.update(store.table)
        entries: List[Dict[str, Any]] = []
        for key in sorted(keys):
            marks = []
            max_siblings = 0
            for store in stores.values():
                record = store.table.get(key)
                if record is None:
                    marks.append(0.0)
                    continue
                marks.append(record.updated_at)
                if len(record.siblings) > max_siblings:
                    max_siblings = len(record.siblings)
            spread = (max(marks) - min(marks)) if marks else 0.0
            entries.append({
                "key": key,
                "violations": self._key_violations.get(key, 0),
                "max_siblings": max_siblings,
                "staleness_spread_seconds": round(spread, 9),
            })
        entries.sort(key=lambda entry: (-entry["violations"],
                                        -entry["max_siblings"],
                                        -entry["staleness_spread_seconds"],
                                        entry["key"]))
        return entries[:limit]

    def summary(self) -> Dict[str, Any]:
        """The JSON-ready consistency digest (see CONSISTENCY_SCHEMA).

        Contains no wall-clock quantity: two monitored runs of one seed
        produce byte-identical digests.  When the cluster's config
        carries a :class:`~repro.net.topology.TopologySpec` the digest
        additionally rolls replication lag up per region; the key is
        simply absent otherwise.
        """
        replication = {site: round(self._replication_lag(site), 9)
                       for site in self.sites}
        anti_entropy = {
            site: round(self.latest(site, "anti_entropy_lag") or 0.0, 9)
            for site in self.sites}
        digest: Dict[str, Any] = {
            "schema": DIGEST_SCHEMA_ID,
            "samples": self.samples,
            "sites": len(self.sites),
            "visibility_k": self._effective_k(),
            "writes_tracked": self._writes_tracked,
            "writes_visible_all": self._writes_visible_all,
            "writes_pending": sum(len(writes)
                                  for writes in self._pending.values()),
            "w_k_seconds": _rounded_summary(self.w_k),
            "w_all_seconds": _rounded_summary(self.w_all),
            "replication_lag_seconds": replication,
            "max_replication_lag_seconds": round(
                max(replication.values(), default=0.0), 9),
            "anti_entropy_lag_seconds": anti_entropy,
            "audit": {
                "ops_audited": self._audit_ops,
                "violations": self.violation_count,
                "read_your_writes": self._audit_counts["read_your_writes"],
                "monotonic_reads": self._audit_counts["monotonic_reads"],
                "resurrections": self._audit_counts["resurrection"],
                "clients_affected": len(self._clients_affected),
            },
            "worst_keys": self.worst_keys(),
        }
        topology = (self._cluster.config.topology
                    if self._cluster is not None else None)
        if topology is not None:
            per_region: Dict[str, Any] = {}
            for region in topology.regions:
                lags = [replication[site]
                        for site in topology.region_sites(region.name)
                        if site in replication]
                per_region[region.name] = {
                    "sites": region.sites,
                    "max_replication_lag_seconds": round(
                        max(lags, default=0.0), 9),
                    "mean_replication_lag_seconds": round(
                        sum(lags) / len(lags) if lags else 0.0, 9),
                }
            digest["per_region"] = per_region
        return digest

    def _replication_lag(self, site: str) -> float:
        latest = self.latest(site, "replication_lag")
        return latest if latest is not None else 0.0


def _rounded_summary(histogram: Histogram) -> Dict[str, float]:
    """A histogram summary with stable 9-decimal rounding (digest-safe)."""
    summary = histogram.summary()
    return {name: (value if name == "count" else round(value, 9))
            for name, value in summary.items()}


# -- the digest schema ---------------------------------------------------------

_QUANTILES = {
    "type": "object",
    "required": ["count", "mean", "max", "p50", "p90", "p99", "p999"],
    "properties": {
        "count": {"type": "integer", "minimum": 0},
        "mean": {"type": "number", "minimum": 0},
        "max": {"type": "number", "minimum": 0},
        "p50": {"type": "number", "minimum": 0},
        "p90": {"type": "number", "minimum": 0},
        "p95": {"type": "number", "minimum": 0},
        "p99": {"type": "number", "minimum": 0},
        "p999": {"type": "number", "minimum": 0},
    },
}

#: The consistency digest produced by :meth:`ConsistencyMonitor.summary`.
#: ``schemas/repro.obs.consistency.schema.json`` is the same schema
#: checked in for external tooling; a unit test pins file == dict.
CONSISTENCY_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "$id": "repro.obs.consistency.schema.json",
    "title": "repro store consistency digest",
    "type": "object",
    "required": [
        "schema", "samples", "sites", "visibility_k", "writes_tracked",
        "writes_visible_all", "writes_pending", "w_k_seconds",
        "w_all_seconds", "replication_lag_seconds",
        "max_replication_lag_seconds", "anti_entropy_lag_seconds",
        "audit", "worst_keys",
    ],
    "properties": {
        "schema": {"enum": [DIGEST_SCHEMA_ID]},
        "samples": {"type": "integer", "minimum": 0},
        "sites": {"type": "integer", "minimum": 0},
        "visibility_k": {"type": "integer", "minimum": 1},
        "writes_tracked": {"type": "integer", "minimum": 0},
        "writes_visible_all": {"type": "integer", "minimum": 0},
        "writes_pending": {"type": "integer", "minimum": 0},
        "w_k_seconds": _QUANTILES,
        "w_all_seconds": _QUANTILES,
        "replication_lag_seconds": {"type": "object"},
        "max_replication_lag_seconds": {"type": "number", "minimum": 0},
        "anti_entropy_lag_seconds": {"type": "object"},
        "audit": {
            "type": "object",
            "required": ["ops_audited", "violations", "read_your_writes",
                         "monotonic_reads", "resurrections",
                         "clients_affected"],
            "properties": {
                "ops_audited": {"type": "integer", "minimum": 0},
                "violations": {"type": "integer", "minimum": 0},
                "read_your_writes": {"type": "integer", "minimum": 0},
                "monotonic_reads": {"type": "integer", "minimum": 0},
                "resurrections": {"type": "integer", "minimum": 0},
                "clients_affected": {"type": "integer", "minimum": 0},
            },
        },
        "worst_keys": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["key", "violations", "max_siblings",
                             "staleness_spread_seconds"],
                "properties": {
                    "key": {"type": "string"},
                    "violations": {"type": "integer", "minimum": 0},
                    "max_siblings": {"type": "integer", "minimum": 0},
                    "staleness_spread_seconds": {"type": "number",
                                                 "minimum": 0},
                },
            },
        },
        "per_region": {"type": "object"},
    },
}


def validate_consistency(document: Any) -> List[str]:
    """Violations of the digest schema in ``document`` (empty = valid)."""
    return validate(document, CONSISTENCY_SCHEMA)
