"""Transfer statistics collected by protocol session drivers.

Every synchronization session yields one :class:`TransferStats` describing
exactly what crossed the (simulated) wire, in both directions, priced by the
session's :class:`~repro.net.wire.Encoding`.  The paper's quantities Δ, Γ,
and γ are reported by the protocol coroutines themselves (they are semantic,
not syntactic) and surface in each protocol's result object; this class
covers the syntactic layer: bits, messages, and message-type histograms.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class DirectionStats:
    """Traffic counters for one direction of a session.

    ``bits`` counts everything that crossed the wire — including every
    retransmitted copy under the reliable ARQ transport.
    ``retransmitted_bits`` isolates the copies beyond each message's
    first transmission, so ``goodput_bits`` (the derived difference) is
    exactly what a fault-free run of the same message sequence would have
    spent.  Fault-free sessions never call :meth:`record_retransmit`, so
    their counters are bit-for-bit the historical accounting.
    """

    bits: int = 0
    messages: int = 0
    by_type: Counter = field(default_factory=Counter)
    retransmitted_bits: int = 0
    retransmitted_messages: int = 0

    def record(self, type_name: str, bits: int) -> None:
        """Account one message of ``bits`` size."""
        self.bits += bits
        self.messages += 1
        self.by_type[type_name] += 1

    def record_retransmit(self, type_name: str, bits: int) -> None:
        """Account one *retransmitted* copy: wire bits, but not goodput."""
        self.record(type_name, bits)
        self.retransmitted_bits += bits
        self.retransmitted_messages += 1

    @property
    def goodput_bits(self) -> int:
        """First-transmission bits: ``bits - retransmitted_bits``."""
        return self.bits - self.retransmitted_bits

    def merge(self, other: "DirectionStats") -> None:
        """Accumulate another direction's counters into this one."""
        self.bits += other.bits
        self.messages += other.messages
        self.by_type.update(other.by_type)
        self.retransmitted_bits += other.retransmitted_bits
        self.retransmitted_messages += other.retransmitted_messages

    @property
    def bytes(self) -> int:
        """Wire bytes: bits rounded up to whole octets (what a NIC ships)."""
        return math.ceil(self.bits / 8)

    @property
    def bytes_exact(self) -> float:
        """The exact fractional byte count, for analytical comparisons."""
        return self.bits / 8


@dataclass
class TransferStats:
    """Bidirectional traffic counters for one protocol session.

    ``forward`` is the direction that carries the bulk data (sender → receiver
    in the paper's ``SYNC*b(a)`` notation, i.e. *b*'s site to *a*'s site);
    ``backward`` carries control messages (HALT, SKIP, skip-to).

    ``frames``/``framed_objects`` count batched multi-object framing
    (:mod:`repro.protocols.batch`): each
    :class:`~repro.protocols.batch.BatchFrame` that crossed the wire is one
    frame carrying one entry per multiplexed object.  Unbatched sessions
    leave both at zero.

    ``retries``/``timeouts``/``resumes`` are filled only by the reliable
    ARQ transport (:mod:`repro.net.runner` under a faulted channel):
    retransmission attempts, expired per-message timers, and session
    re-handshakes after an abort.  Together with the per-direction
    ``retransmitted_bits`` they make the chaos invariant checkable:
    ``total_retransmitted_bits == total_bits - total_goodput_bits``
    exactly, on every completed session.
    """

    forward: DirectionStats = field(default_factory=DirectionStats)
    backward: DirectionStats = field(default_factory=DirectionStats)
    frames: int = 0
    framed_objects: int = 0
    retries: int = 0
    timeouts: int = 0
    resumes: int = 0

    @property
    def total_bits(self) -> int:
        return self.forward.bits + self.backward.bits

    @property
    def total_messages(self) -> int:
        return self.forward.messages + self.backward.messages

    @property
    def total_bytes(self) -> int:
        """Wire bytes across both directions, rounded up to whole octets."""
        return math.ceil(self.total_bits / 8)

    @property
    def total_bytes_exact(self) -> float:
        """The exact fractional byte count, for analytical comparisons."""
        return self.total_bits / 8

    @property
    def total_goodput_bits(self) -> int:
        """First-transmission bits across both directions."""
        return self.forward.goodput_bits + self.backward.goodput_bits

    @property
    def total_retransmitted_bits(self) -> int:
        """Retransmitted-copy bits across both directions."""
        return (self.forward.retransmitted_bits
                + self.backward.retransmitted_bits)

    def note_frame(self, object_count: int) -> None:
        """Account one batch frame multiplexing ``object_count`` objects.

        The frame's *bits* are recorded by the driver like any other send;
        this only tracks the framing structure so amortization (objects
        per frame, bits per framed object) is reportable.
        """
        self.frames += 1
        self.framed_objects += object_count

    def merge(self, other: "TransferStats") -> None:
        """Accumulate another session's counters into this one."""
        self.forward.merge(other.forward)
        self.backward.merge(other.backward)
        self.frames += other.frames
        self.framed_objects += other.framed_objects
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.resumes += other.resumes

    def as_dict(self) -> Dict[str, int]:
        """A flat summary convenient for tables and asserts."""
        return {
            "forward_bits": self.forward.bits,
            "backward_bits": self.backward.bits,
            "total_bits": self.total_bits,
            "forward_messages": self.forward.messages,
            "backward_messages": self.backward.messages,
        }

    def summary(self) -> Dict[str, object]:
        """The flat counters plus per-direction message-type histograms.

        Everything is JSON-serializable (plain dicts, ints, floats);
        benchmark documents embed this verbatim.  The ``amortized`` block
        reports per-message and per-frame averages; a session that moved
        no messages (or no frames) reports 0.0 for the corresponding
        ratios rather than dividing by zero.
        """
        flat: Dict[str, object] = dict(self.as_dict())
        flat["by_type"] = {
            "forward": dict(sorted(self.forward.by_type.items())),
            "backward": dict(sorted(self.backward.by_type.items())),
        }
        flat["frames"] = self.frames
        flat["framed_objects"] = self.framed_objects
        messages = self.total_messages
        flat["amortized"] = {
            "bits_per_message": (self.total_bits / messages
                                 if messages else 0.0),
            "objects_per_frame": (self.framed_objects / self.frames
                                  if self.frames else 0.0),
            "bits_per_framed_object": (self.total_bits / self.framed_objects
                                       if self.framed_objects else 0.0),
        }
        flat["reliability"] = {
            "goodput_bits": self.total_goodput_bits,
            "retransmitted_bits": self.total_retransmitted_bits,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "resumes": self.resumes,
        }
        return flat

    def __repr__(self) -> str:
        return (f"TransferStats(fwd={self.forward.bits}b/"
                f"{self.forward.messages}msg, "
                f"bwd={self.backward.bits}b/{self.backward.messages}msg)")
