"""Cluster-scale timed execution: many pairwise sessions on one clock.

The timed runner (:mod:`repro.net.runner`) measures a *single* session;
the paper's metadata-cost claims, however, are about fleets — n sites
gossiping concurrently, sessions queueing behind busy peers, updates
landing mid-schedule.  :class:`ClusterRunner` executes a precomputed
workload (:mod:`repro.workload.cluster`) by interleaving every session's
sender/receiver processes on a single :class:`~repro.net.simulator.Simulator`:

* **Per-site session queues.**  A site participates in at most ``fanout``
  sessions at a time (default 1 — strictly serialized per site).  Requests
  that find an endpoint busy queue up and start, oldest first, as capacity
  frees.  Queue waits are observable (``cluster.queue_wait_seconds``).
* **Deferred updates.**  A local update arriving while its site is mid-
  session applies the instant the site frees — mutating a vector that a
  live coroutine is iterating would corrupt the session.
* **Scheduling-independent accounting.**  With ``fanout=1`` each vector is
  touched by one session at a time, so every session's traffic depends
  only on the two endpoint states at its start — never on what else is in
  flight.  :func:`replay_sequential` re-executes a run's realized
  execution log one session at a time and must reproduce the concurrent
  run's bit counts exactly; the paired benchmark asserts it.  (With
  ``fanout > 1`` a vector may be shared between overlapping sessions and
  the guarantee is forfeit — useful for throughput realism, not for
  regression accounting.)

Tracing and metrics reuse the PR 1 instruments: pass a
:class:`~repro.obs.trace.Tracer` for clock-stamped per-site events and a
:class:`~repro.obs.metrics.MetricsRegistry` for the standard
``observe_session`` instruments plus cluster-level counters.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.order import Ordering
from repro.core.rotating import BasicRotatingVector
from repro.errors import SimulationError
from repro.net.channel import ChannelSpec
from repro.net.faults import RetryPolicy, derive_seed
from repro.net.runner import (SessionOptions, TimedSessionResult, launch,
                              run_timed)
from repro.net.sharding import ShardMap, build_shard_map
from repro.net.simulator import Simulator
from repro.net.stats import TransferStats
from repro.net.topology import LinkProfile, TopologySpec
from repro.net.wire import DEFAULT_ENCODING, Encoding
from repro.obs.metrics import MetricsRegistry, observe_session
from repro.obs.trace import Tracer
from repro.protocols import registry
from repro.workload.cluster import SessionRequest, UpdateRequest


class _ProtocolTable:
    """Legacy read-only view of the registry: name -> (vector_cls, reconciles).

    Kept so historical call sites (``PROTOCOLS["srv"]``, ``in PROTOCOLS``,
    ``sorted(PROTOCOLS)``) keep working; all dispatch goes through
    :mod:`repro.protocols.registry`.
    """

    def __getitem__(self, name: str) -> Tuple[type, bool]:
        spec = registry.get(name)
        return (spec.vector_cls, spec.reconciles)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name in registry.names()

    def __iter__(self):
        return iter(registry.names())

    def __len__(self) -> int:
        return len(registry.names())

    def keys(self):
        return registry.names()


#: protocol name -> (vector class, supports automatic reconciliation)
PROTOCOLS = _ProtocolTable()


@dataclass(frozen=True)
class ClusterConfig:
    """Parameters of one cluster run.

    Attributes:
        protocol: metadata scheme and sync protocol — ``brv`` (SYNCB),
            ``crv`` (SYNCC), or ``srv`` (SYNCS).
        channel: link model applied to every session.
        encoding: wire pricing for every message.
        fanout: concurrent sessions a site may participate in (≥ 1).
        stop_and_wait: per-item ack baseline instead of pipelining.
        proc_time: per-received-message processing cost.
        increment_on_merge: apply §2.2's post-reconciliation self-increment
            on the pulling site, keeping COMPARE's freshness precondition.
        max_steps: per-session effect budget (livelock guard).
        n_objects: replicated objects per site; a session synchronizes
            *all* of them between its pair.
        batch_size: objects coalesced into one framed wire session
            (:mod:`repro.protocols.batch`).  1 — the default — runs each
            object through the plain per-object machinery, bit-for-bit
            the historical single-object path.
        retry: ARQ knobs (timeouts, backoff, retry and resume budgets)
            applied to every session when the channel's fault spec is
            enabled; inert on a perfect link.
        backend: vector storage backend — ``array`` (flat parallel-array
            representation, the default fast path) or ``linked`` (the
            pointer-chasing oracle).  Both produce byte-identical wire
            traffic and identical fingerprints; the choice is purely an
            in-memory speed/verification trade-off.
        topology: optional :class:`~repro.net.topology.TopologySpec`.
            When set, every session prices its wire hop over the channel
            of its endpoints' region pair (``topology.channel_for``)
            instead of the single shared ``channel``; ``None`` — the
            default — keeps the historical one-channel fleet
            byte-identical.
    """

    protocol: str = "srv"
    channel: ChannelSpec = field(default_factory=ChannelSpec)
    encoding: Encoding = DEFAULT_ENCODING
    fanout: int = 1
    stop_and_wait: bool = False
    proc_time: float = 0.0
    increment_on_merge: bool = True
    max_steps: int = 10_000_000
    n_objects: int = 1
    batch_size: int = 1
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    backend: str = "array"
    topology: Optional[TopologySpec] = None

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}; "
                             f"expected one of {sorted(PROTOCOLS)}")
        # Resolve eagerly so a typo'd backend fails at config time.
        registry.get(self.protocol).vector_class(self.backend)
        if self.fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {self.fanout}")
        if self.n_objects < 1:
            raise ValueError(f"n_objects must be >= 1, got {self.n_objects}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, "
                             f"got {self.batch_size}")
        faulted = self.channel.faults.enabled if self.topology is None \
            else self.topology.has_faults
        if faulted and self.fanout > 1:
            raise ValueError(
                "faulted channels require fanout=1: session resume "
                "restores the receiver's pre-session snapshot, which is "
                "only sound when no other session writes the same site "
                "concurrently")


@dataclass
class ClusterSessionRecord:
    """One executed session, in cluster start order.

    ``verdict``/``reconciled`` describe object 0 (the full history for
    single-object clusters); ``verdicts``/``reconciled_objects`` carry
    the per-object detail when ``n_objects > 1``.
    """

    index: int
    src: str
    dst: str
    requested_at: float
    started_at: float
    verdict: Ordering
    reconciled: bool
    result: Optional[TimedSessionResult] = None
    verdicts: Tuple[Ordering, ...] = ()
    reconciled_objects: Tuple[bool, ...] = ()
    #: Object ids this session synchronized, aligned with ``verdicts``/
    #: ``reconciled_objects``.  ``(0, …, n_objects-1)`` on the historical
    #: unsharded path; the pair's shared-shard subset otherwise.
    objects: Tuple[int, ...] = ()

    @property
    def queue_wait(self) -> float:
        """Seconds the request sat behind busy endpoints."""
        return self.started_at - self.requested_at


#: Execution-log entries: ``("update", site)`` (object 0),
#: ``("update", site, obj)`` for a non-zero object index,
#: ``("session", src, dst)``, or — on sharded fleets only —
#: ``("session", src, dst, objs)`` carrying the synchronized object ids,
#: in realized execution order.  Reconciliation self-increments are *not*
#: logged — they are derived deterministically from each session's
#: verdicts, by the runner and by :func:`replay_sequential` alike.
LogEntry = Tuple[Any, ...]


@dataclass
class ClusterResult:
    """What one cluster run measured.

    ``vectors`` is every site's object-0 vector (the whole state for
    single-object clusters); ``objects`` holds the full per-site object
    lists (``objects[site][0] is vectors[site]``).
    """

    records: List[ClusterSessionRecord]
    log: List[LogEntry]
    totals: TransferStats
    completion_time: float
    updates_applied: int
    updates_deferred: int
    reconciliations: int
    vectors: Dict[str, BasicRotatingVector]
    objects: Dict[str, Any] = field(default_factory=dict)
    #: Set on sharded runs: the object→replica-group assignment, which
    #: scopes :meth:`consistent` to each object's own replica group
    #: (``objects[site]`` is then a dict keyed by hosted object id).
    shards: Optional[ShardMap] = None
    #: Sessions dropped before start because the pair shared no objects.
    skipped_sessions: int = 0

    @property
    def sessions(self) -> int:
        return len(self.records)

    @property
    def total_bits(self) -> int:
        return self.totals.total_bits

    @property
    def max_queue_wait(self) -> float:
        return max((r.queue_wait for r in self.records), default=0.0)

    def consistent(self) -> bool:
        """True iff every replica agrees on the values of every object.

        Unsharded fleets compare all sites; sharded fleets compare each
        object across its own replica group — the only sites that hold
        it.
        """
        if self.shards is not None:
            for obj, group in enumerate(self.shards.replicas):
                reference = self.objects[group[0]][obj]
                if not all(self.objects[site][obj].same_values(reference)
                           for site in group[1:]):
                    return False
            return True
        if self.objects:
            site_lists = list(self.objects.values())
            first = site_lists[0]
            return all(site_list[k].same_values(first[k])
                       for site_list in site_lists[1:]
                       for k in range(len(first)))
        vectors = list(self.vectors.values())
        return all(v.same_values(vectors[0]) for v in vectors[1:])

    def per_session_bits(self) -> List[int]:
        """Total bits of each session, in start order."""
        return [r.result.stats.total_bits for r in self.records]


class ClusterRunner:
    """Schedules many concurrent pairwise sessions on one simulator.

    One-shot: construct, :meth:`run` once, read the result.  The runner
    owns one rotating vector per site (``config.protocol`` picks the
    class); sessions mutate them in place exactly as a real fleet would.
    """

    def __init__(self, sites: Iterable[str], config: ClusterConfig, *,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 monitor: Optional[Any] = None,
                 shards: Optional[ShardMap] = None) -> None:
        self.sites = list(sites)
        if len(set(self.sites)) != len(self.sites):
            raise ValueError("duplicate site names in cluster")
        self.config = config
        if monitor is not None and tracer is None:
            # The monitor feeds on the trace stream; a run launched
            # without a tracer adopts the monitor's private one so there
            # are reliability events to observe.
            tracer = monitor.tracer
        self.tracer = tracer
        self.metrics = metrics
        self.monitor = monitor
        self.shards = shards
        self.topology = config.topology
        spec = registry.get(config.protocol)
        vector_cls = spec.vector_class(config.backend)
        self._reconciles = spec.reconciles
        self._site_set = set(self.sites)
        if shards is not None:
            if shards.n_objects != config.n_objects:
                raise ValueError(
                    f"shard map covers {shards.n_objects} objects but the "
                    f"config declares {config.n_objects}")
            unknown = set(shards.hosted) - self._site_set
            if unknown:
                raise ValueError(
                    f"shard map names sites outside the cluster: "
                    f"{sorted(unknown)}")
            # Sharded fleets host only their assigned objects, keyed by
            # object id (site→dict); the unsharded list layout below
            # stays untouched — position is the id there.
            self.objects = {
                site: {obj: vector_cls()
                       for obj in shards.hosted.get(site, ())}
                for site in self.sites}
            self.vectors = {}
        else:
            self.objects = {
                site: [vector_cls() for _ in range(config.n_objects)]
                for site in self.sites}
            #: Object-0 view, the whole state for single-object clusters.
            self.vectors = {
                site: self.objects[site][0] for site in self.sites}
        self._sim: Optional[Simulator] = None
        self._usage: Dict[str, int] = {site: 0 for site in self.sites}
        self._deferred: Dict[str, List[UpdateRequest]] = {
            site: [] for site in self.sites}
        # Pending sessions keyed by arrival sequence (insertion-ordered),
        # with a per-site index of waiting sequence numbers so a finish
        # only rescans requests touching the freed endpoints.
        self._pending: Dict[int, SessionRequest] = {}
        self._pending_by_site: Dict[str, List[int]] = {
            site: [] for site in self.sites}
        self._next_seq = 0
        self._requested_at: Dict[int, float] = {}
        self._records: List[ClusterSessionRecord] = []
        self._log: List[LogEntry] = []
        self._totals = TransferStats()
        self._updates_applied = 0
        self._updates_deferred = 0
        self._reconciliations = 0
        self._skipped_sessions = 0
        self._finished = False

    def hosted_objects(self, site: str) -> Tuple[int, ...]:
        """Object ids ``site`` replicates (all of them when unsharded)."""
        if self.shards is None:
            return tuple(range(self.config.n_objects))
        return self.shards.hosted.get(site, ())

    def _channel_for(self, src: str, dst: str) -> ChannelSpec:
        """The channel one session uses — region-pair aware when a
        topology is set, the single shared channel otherwise."""
        if self.topology is None:
            return self.config.channel
        return self.topology.channel_for(src, dst)

    # -- scheduling ------------------------------------------------------------

    def run(self, sessions: Iterable[SessionRequest],
            updates: Iterable[UpdateRequest] = ()) -> ClusterResult:
        """Execute the schedule to completion; returns the measurements."""
        if self._finished:
            raise SimulationError("ClusterRunner instances are one-shot")
        self._finished = True
        sim = self._sim = Simulator()
        tracer = self.tracer
        previous_clock = tracer.clock if tracer is not None else None
        span = None
        if tracer is not None:
            tracer.clock = lambda: sim.now
            # The channel parameters on the span let the causal analyzer
            # decompose every send→deliver hop exactly (latency +
            # bits/bandwidth + fault-injected delay, zero residual).
            span = tracer.span(f"cluster:{self.config.protocol}",
                               sites=len(self.sites),
                               fanout=self.config.fanout,
                               protocol=self.config.protocol,
                               latency=self.config.channel.latency,
                               bandwidth=self.config.channel.bandwidth)
        if self.monitor is not None:
            self.monitor.attach(self)
        try:
            for request in sessions:
                self._check_sites(request.src, request.dst)
                if request.src == request.dst:
                    raise ValueError(
                        f"session {request} pairs a site with itself")
                sim.call_at(request.at,
                            lambda r=request: self._on_session_request(r))
            for update in updates:
                self._check_sites(update.site)
                obj = getattr(update, "obj", 0)
                if not 0 <= obj < self.config.n_objects:
                    raise ValueError(
                        f"update {update} names object {obj}, but the "
                        f"cluster has {self.config.n_objects}")
                if self.shards is not None \
                        and not self.shards.hosts(update.site, obj):
                    raise ValueError(
                        f"update {update} lands on {update.site}, which "
                        f"does not replicate object {obj}")
                sim.call_at(update.at,
                            lambda u=update: self._on_update_request(u))
            sim.run()
            if self.monitor is not None:
                self.monitor.finalize()
        finally:
            if span is not None:
                span.end()
            if tracer is not None:
                tracer.flush_sampling()
                tracer.clock = previous_clock
        if self._pending or any(self._usage.values()):
            raise SimulationError(  # pragma: no cover - defensive
                "cluster drained with sessions still queued or active")
        return ClusterResult(
            records=self._records,
            log=self._log,
            totals=self._totals,
            completion_time=sim.now,
            updates_applied=self._updates_applied,
            updates_deferred=self._updates_deferred,
            reconciliations=self._reconciliations,
            vectors=self.vectors,
            objects=self.objects,
            shards=self.shards,
            skipped_sessions=self._skipped_sessions,
        )

    def _check_sites(self, *names: str) -> None:
        for name in names:
            if name not in self._site_set:
                raise ValueError(f"unknown site {name!r} in schedule")

    # -- updates ---------------------------------------------------------------

    def _on_update_request(self, update: UpdateRequest) -> None:
        if self._usage[update.site] > 0:
            # Mid-session: mutating a vector a live coroutine iterates
            # would corrupt the session; hold the update until it frees.
            self._deferred[update.site].append(update)
            self._updates_deferred += 1
            if self.metrics is not None:
                self.metrics.counter("cluster.updates_deferred").inc()
            return
        self._apply_update(update.site, getattr(update, "obj", 0))

    def _apply_update(self, site: str, obj: int = 0) -> None:
        self.objects[site][obj].record_update(site)
        # Object-0 updates keep the historical two-tuple entry so
        # single-object logs (and their replays) are unchanged.
        self._log.append(("update", site) if obj == 0
                         else ("update", site, obj))
        self._updates_applied += 1
        if self.tracer is not None:
            self.tracer.event("update", party=site)
        if self.metrics is not None:
            self.metrics.counter("cluster.updates").inc()
        if self.monitor is not None:
            self.monitor.on_update(site, obj)

    # -- sessions --------------------------------------------------------------

    def _on_session_request(self, request: SessionRequest) -> None:
        if self.shards is not None \
                and not self._session_objects(request):
            # The pair replicates no common object: nothing to sync.
            # Epidemic schedules draw peers from shard-peer sets and
            # never produce these; hand-written schedules may.
            self._skipped_sessions += 1
            return
        self._requested_at[id(request)] = self._sim.now
        if self.tracer is not None:
            # The session index is unknown until the session starts;
            # the analyzer matches requests to starts FIFO per (src,
            # dst) pair — exactly the order _dispatch starts them.
            self.tracer.event("session_request", party=request.dst,
                              peer=request.src)
        # Dispatch invariant: every already-pending request has at least
        # one endpoint at capacity (established by the freed-site scan
        # below), and nothing has freed since — so the only request that
        # can start right now is this one.
        fanout = self.config.fanout
        if (self._usage[request.src] < fanout
                and self._usage[request.dst] < fanout):
            self._start(request)
            return
        seq = self._next_seq
        self._next_seq += 1
        self._pending[seq] = request
        self._pending_by_site[request.src].append(seq)
        self._pending_by_site[request.dst].append(seq)

    def _dispatch(self, freed: Tuple[str, ...]) -> None:
        """Start queued sessions startable now that ``freed`` has capacity.

        Only requests touching a freed endpoint can have become
        startable (everything else kept its saturated endpoint), so the
        scan covers just those two sites' queues — in global arrival
        order, consuming capacity exactly as the historical full
        oldest-first pass over all pending requests did.  Entries
        consumed by an earlier scan are pruned lazily here.
        """
        fanout = self.config.fanout
        pending = self._pending
        by_site = self._pending_by_site
        candidates = set()
        for site in freed:
            live = [seq for seq in by_site[site] if seq in pending]
            by_site[site] = live
            candidates.update(live)
        for seq in sorted(candidates):
            request = pending.get(seq)
            if request is None:
                continue  # started earlier in this very scan
            if (self._usage[request.src] < fanout
                    and self._usage[request.dst] < fanout):
                del pending[seq]
                self._start(request)

    def _session_objects(self, request: SessionRequest
                         ) -> Tuple[int, ...]:
        """The object ids a session between the request's pair syncs."""
        if self.shards is None:
            return tuple(range(self.config.n_objects))
        objs = getattr(request, "objs", None)
        shared = self.shards.shared_objects(request.src, request.dst)
        if objs is None:
            return shared
        extra = set(objs) - set(shared)
        if extra:
            raise ValueError(
                f"session {request.src}->{request.dst} names objects "
                f"{sorted(extra)} the pair does not share")
        return tuple(objs)

    def _build_pairs(self, src: str, dst: str, objs: Tuple[int, ...]
                     ) -> Tuple[List[Ordering], List[bool],
                                Tuple[Tuple[Any, Any], ...]]:
        """Fresh coroutine pairs over the endpoints' *current* state."""
        spec = registry.get(self.config.protocol)
        verdicts: List[Ordering] = []
        reconciled_flags: List[bool] = []
        pairs: List[Tuple[Any, Any]] = []
        for obj in objs:
            verdict = self.objects[dst][obj].compare(self.objects[src][obj])
            sender, receiver, reconciled = spec.build(
                self.objects[src][obj], self.objects[dst][obj], verdict,
                tracer=self.tracer)
            verdicts.append(verdict)
            reconciled_flags.append(reconciled)
            pairs.append((sender, receiver))
        return verdicts, reconciled_flags, tuple(pairs)

    def _start(self, request: SessionRequest) -> None:
        sim = self._sim
        config = self.config
        src, dst = request.src, request.dst
        objs = self._session_objects(request)
        channel = self._channel_for(src, dst)
        verdicts, reconciled_flags, pairs = self._build_pairs(src, dst, objs)
        record = ClusterSessionRecord(
            index=len(self._records), src=src, dst=dst,
            requested_at=self._requested_at.pop(id(request), sim.now),
            started_at=sim.now, verdict=verdicts[0],
            reconciled=reconciled_flags[0], verdicts=tuple(verdicts),
            reconciled_objects=tuple(reconciled_flags), objects=objs)
        self._records.append(record)
        # Sharded logs carry the synchronized object subset so replay
        # rebuilds the identical per-session pairing; unsharded entries
        # keep the historical three-tuple shape.
        self._log.append(("session", src, dst) if self.shards is None
                         else ("session", src, dst, objs))
        self._usage[src] += 1
        self._usage[dst] += 1
        self._reconciliations += sum(reconciled_flags)
        if self.tracer is not None:
            self.tracer.event("session_start", party=dst, peer=src,
                              verdict=verdicts[0].name.lower(),
                              session=record.index)
        if self.monitor is not None:
            # Before launch: the monitor snapshots the endpoints here so
            # its post-session ancestor-closure oracle has the pre-state.
            self.monitor.on_session_start(record)
        common = dict(
            # A single-object session runs the historical per-object
            # path regardless of batch_size, as it always has.
            batch_size=config.batch_size if len(pairs) > 1 else 1,
            channel=channel, encoding=config.encoding,
            stop_and_wait=config.stop_and_wait, proc_time=config.proc_time,
            max_steps=config.max_steps, tracer=self.tracer,
            party_names=(src, dst), retry=config.retry,
            session_id=record.index,
            on_complete=lambda result: self._finish(record, result))
        if not channel.faults.enabled:
            launch(sim, SessionOptions(pairs=pairs, **common))
            return

        first_pairs: List[Tuple[Tuple[Any, Any], ...]] = [pairs]
        # Attempts are transactional: the protocols stream Δ newest-first,
        # so a torn attempt's acked prefix is never ancestor-closed and
        # committing it would corrupt the receiver's knowledge state (a
        # vector claiming an element without its causal past halts every
        # later sync prematurely).  Snapshot the receiver's objects now;
        # resume restores them and re-handshakes from this state.  Safe
        # because updates to a busy site are deferred and fanout capacity
        # means no other session writes ``dst`` meanwhile.
        snapshots = tuple(self.objects[dst][obj].copy() for obj in objs)

        def rebuild() -> Tuple[Tuple[Any, Any], ...]:
            if first_pairs:
                return first_pairs.pop()
            for obj, snapshot in zip(objs, snapshots):
                # In place: result views and the site table alias these
                # objects, so identity must survive the rollback.
                self.objects[dst][obj].restore(snapshot)
            new_verdicts, new_flags, new_pairs = self._build_pairs(
                src, dst, objs)
            merged = tuple(old or new for old, new
                           in zip(record.reconciled_objects, new_flags))
            self._reconciliations += sum(
                1 for old, new in zip(record.reconciled_objects, new_flags)
                if new and not old)
            record.verdicts = tuple(new_verdicts)
            record.reconciled_objects = merged
            record.verdict = new_verdicts[0]
            record.reconciled = merged[0]
            return new_pairs

        launch(sim, SessionOptions(
            rebuild=rebuild,
            fault_seed=derive_seed(channel.faults.seed, record.index),
            **common))

    def _finish(self, record: ClusterSessionRecord,
                result: TimedSessionResult) -> None:
        record.result = result
        self._totals.merge(result.stats)
        if self.monitor is not None:
            # Before the §2.2 self-increment below: the closure oracle
            # expects the receiver to hold exactly max(pre-state, sender).
            self.monitor.on_session_end(record, result)
        src, dst = record.src, record.dst
        self._usage[src] -= 1
        self._usage[dst] -= 1
        if self.config.increment_on_merge:
            # §2.2: the pulling site increments its own element after an
            # automatic merge, per reconciled object.  Not logged — replay
            # derives it from the session verdicts, exactly as here.
            for obj, reconciled in zip(record.objects,
                                       record.reconciled_objects):
                if reconciled:
                    self.objects[dst][obj].record_update(dst)
                    if self.tracer is not None:
                        # New knowledge originating at dst: the causal
                        # analyzer's convergence frontier must include it.
                        self.tracer.event("reconcile", party=dst, obj=obj,
                                          session=record.index)
        if self.tracer is not None:
            self.tracer.event("session_end", party=dst, peer=src,
                              bits=result.stats.total_bits,
                              session=record.index)
        if self.metrics is not None:
            observe_session(self.metrics, result.stats,
                            protocol=f"cluster.{self.config.protocol}",
                            completion_time=result.duration)
            self.metrics.histogram("cluster.queue_wait_seconds").observe(
                record.queue_wait)
        # Updates that arrived mid-session land before anything queued
        # gets to start on the freed endpoints.
        for site in (src, dst):
            if self._usage[site] == 0 and self._deferred[site]:
                deferred, self._deferred[site] = self._deferred[site], []
                for update in deferred:
                    self._apply_update(site, getattr(update, "obj", 0))
        self._dispatch((src, dst))


def build_session_coroutines(protocol: str, b: BasicRotatingVector,
                             a: BasicRotatingVector, verdict: Ordering, *,
                             tracer: Optional[Tracer] = None
                             ) -> Tuple[Any, Any, bool]:
    """(sender, receiver, reconciled) for ``SYNC*_b(a)`` under ``verdict``.

    ``reconciled`` reports whether the receiver will perform an automatic
    merge (always False for BRV, which raises on concurrent inputs
    instead — Algorithm 2's ``Require: a ∦ b``).  Thin delegation to
    :meth:`repro.protocols.registry.ProtocolSpec.build` — the registry is
    the single dispatch authority.
    """
    return registry.get(protocol).build(b, a, verdict, tracer=tracer)


def replay_sequential(sites: Iterable[str], config: ClusterConfig,
                      log: Iterable[LogEntry], *,
                      shards: Optional[ShardMap] = None
                      ) -> Tuple[List[TimedSessionResult],
                                 Dict[str, BasicRotatingVector]]:
    """Re-execute a cluster run's log one session at a time.

    Each session runs alone on a fresh private simulator (via the unified
    :func:`~repro.net.runner.launch` machinery) against vectors evolved
    through the same realized order.  Under ``fanout=1`` the returned
    per-session stats must equal the concurrent run's — the scheduling-
    independence property the regression benchmark asserts.  On a faulted
    channel every session re-derives the concurrent run's per-session
    injector seed from its log position, so drop/duplicate/reorder
    schedules (and the retransmissions, aborts, and resumes they induce)
    replay bit for bit; absolute-time *partition windows* are the one
    exclusion — a replayed session starts its private clock at 0, so the
    replay guarantee covers probabilistic faults only.  Returns the
    per-session results and every site's object-0 vector.
    """
    spec = registry.get(config.protocol)
    vector_cls = spec.vector_class(config.backend)
    if shards is not None:
        objects: Dict[str, Any] = {
            site: {obj: vector_cls()
                   for obj in shards.hosted.get(site, ())}
            for site in sites}
    else:
        objects = {
            site: [vector_cls() for _ in range(config.n_objects)]
            for site in sites}
    results: List[TimedSessionResult] = []
    session_index = -1
    for entry in log:
        if entry[0] == "update":
            obj = entry[2] if len(entry) > 2 else 0
            objects[entry[1]][obj].record_update(entry[1])
            continue
        if entry[0] != "session":  # pragma: no cover - defensive
            raise ValueError(f"unknown log entry {entry!r}")
        src, dst = entry[1], entry[2]
        # Sharded logs carry each session's object subset; unsharded
        # three-tuples cover the whole object range, as always.
        objs = tuple(entry[3]) if len(entry) > 3 \
            else tuple(range(config.n_objects))
        channel = config.channel if config.topology is None \
            else config.topology.channel_for(src, dst)
        session_index += 1
        reconciled_any = {obj: False for obj in objs}
        # Mirrors the concurrent runner's transactional attempts: the
        # first build snapshots the receiver's objects, every resume
        # restores them before re-handshaking (see ClusterRunner._start).
        snapshots: List[Tuple[Any, ...]] = []

        def build() -> Tuple[Tuple[Any, Any], ...]:
            if channel.faults.enabled:
                if not snapshots:
                    snapshots.append(
                        tuple(objects[dst][obj].copy() for obj in objs))
                else:
                    for obj, snapshot in zip(objs, snapshots[0]):
                        objects[dst][obj].restore(snapshot)
            pairs = []
            for obj in objs:
                verdict = objects[dst][obj].compare(objects[src][obj])
                sender, receiver, reconciled = spec.build(
                    objects[src][obj], objects[dst][obj], verdict)
                pairs.append((sender, receiver))
                reconciled_any[obj] |= reconciled
            return tuple(pairs)

        common = dict(
            batch_size=config.batch_size if len(objs) > 1 else 1,
            channel=channel, encoding=config.encoding,
            stop_and_wait=config.stop_and_wait, proc_time=config.proc_time,
            max_steps=config.max_steps, retry=config.retry)
        if channel.faults.enabled:
            options = SessionOptions(
                rebuild=build,
                fault_seed=derive_seed(channel.faults.seed,
                                       session_index),
                **common)
        else:
            options = SessionOptions(pairs=build(), **common)
        results.append(run_timed(options))
        if config.increment_on_merge:
            for obj, reconciled in reconciled_any.items():
                if reconciled:
                    objects[dst][obj].record_update(dst)
    if shards is not None:
        return results, {site: objs[0] for site, objs in objects.items()
                         if 0 in objs}
    return results, {site: objs[0] for site, objs in objects.items()}


#: Legacy ``launch_cluster`` keyword arguments that now live on the
#: :class:`~repro.net.topology.TopologySpec`; accepted behind a
#: DeprecationWarning, forbidden for in-repo callers by the CI grep lint.
_DEPRECATED_LAUNCH_KWARGS = ("fanout", "channel", "chaos_loss")


def launch_cluster(spec: TopologySpec, *, protocol: str = "srv",
                   n_objects: int = 1, batch_size: int = 1,
                   encoding: Encoding = DEFAULT_ENCODING,
                   stop_and_wait: bool = False, proc_time: float = 0.0,
                   increment_on_merge: bool = True,
                   max_steps: int = 10_000_000,
                   retry: Optional[RetryPolicy] = None,
                   backend: str = "array",
                   shard: Optional[bool] = None,
                   tracer: Optional[Tracer] = None,
                   metrics: Optional[MetricsRegistry] = None,
                   monitor: Optional[Any] = None,
                   **deprecated: Any) -> ClusterRunner:
    """The unified cluster entry point: one ``TopologySpec``, one runner.

    Follows the ``launch(sim, SessionOptions)`` precedent: every fleet-
    shape knob — regions, links, loss, gossip fanout, replication —
    lives on the spec; everything else is keyword-only here.  Returns a
    ready-to-:meth:`~ClusterRunner.run` runner whose sites are
    ``spec.site_names()``, sharded via the consistent-hash ring whenever
    the spec carries a replication factor (``shard=`` forces it either
    way).

    The legacy per-config knobs ``fanout=``, ``channel=``, and
    ``chaos_loss=`` are still accepted as shims, each raising a
    ``DeprecationWarning`` — new code expresses them through the spec
    (``gossip.fanout``, link profiles, per-link ``loss``), and the CI
    grep lint keeps in-repo callers off the shims.
    """
    unknown = set(deprecated) - set(_DEPRECATED_LAUNCH_KWARGS)
    if unknown:
        raise TypeError(
            f"launch_cluster() got unexpected keyword arguments "
            f"{sorted(unknown)}")
    fanout = spec.gossip.fanout if spec.replication is None else 1
    channel: Optional[ChannelSpec] = None
    topology: Optional[TopologySpec] = spec
    if "fanout" in deprecated:
        warnings.warn(
            "launch_cluster(fanout=...) is deprecated; set "
            "TopologySpec.gossip.fanout instead",
            DeprecationWarning, stacklevel=2)
        fanout = deprecated["fanout"]
    if "chaos_loss" in deprecated:
        warnings.warn(
            "launch_cluster(chaos_loss=...) is deprecated; set the loss "
            "on the spec's LinkProfiles instead",
            DeprecationWarning, stacklevel=2)
        loss = deprecated["chaos_loss"]
        profile = LinkProfile(latency=spec.inter.latency,
                              bandwidth=spec.inter.bandwidth, loss=loss)
        channel = profile.channel(seed=spec.chaos_seed)
        topology = None
    if "channel" in deprecated:
        warnings.warn(
            "launch_cluster(channel=...) is deprecated; describe the "
            "links on the TopologySpec instead",
            DeprecationWarning, stacklevel=2)
        channel = deprecated["channel"]
        topology = None
    config = ClusterConfig(
        protocol=protocol, encoding=encoding, fanout=fanout,
        stop_and_wait=stop_and_wait, proc_time=proc_time,
        increment_on_merge=increment_on_merge, max_steps=max_steps,
        n_objects=n_objects, batch_size=batch_size,
        retry=retry if retry is not None else RetryPolicy(),
        backend=backend, topology=topology,
        **({"channel": channel} if channel is not None else {}))
    do_shard = shard if shard is not None else spec.replication is not None
    shards = build_shard_map(spec, n_objects) if do_shard else None
    return ClusterRunner(spec.site_names(), config, tracer=tracer,
                         metrics=metrics, monitor=monitor, shards=shards)
