"""Cluster-scale timed execution: many pairwise sessions on one clock.

The timed runner (:mod:`repro.net.runner`) measures a *single* session;
the paper's metadata-cost claims, however, are about fleets — n sites
gossiping concurrently, sessions queueing behind busy peers, updates
landing mid-schedule.  :class:`ClusterRunner` executes a precomputed
workload (:mod:`repro.workload.cluster`) by interleaving every session's
sender/receiver processes on a single :class:`~repro.net.simulator.Simulator`:

* **Per-site session queues.**  A site participates in at most ``fanout``
  sessions at a time (default 1 — strictly serialized per site).  Requests
  that find an endpoint busy queue up and start, oldest first, as capacity
  frees.  Queue waits are observable (``cluster.queue_wait_seconds``).
* **Deferred updates.**  A local update arriving while its site is mid-
  session applies the instant the site frees — mutating a vector that a
  live coroutine is iterating would corrupt the session.
* **Scheduling-independent accounting.**  With ``fanout=1`` each vector is
  touched by one session at a time, so every session's traffic depends
  only on the two endpoint states at its start — never on what else is in
  flight.  :func:`replay_sequential` re-executes a run's realized
  execution log one session at a time and must reproduce the concurrent
  run's bit counts exactly; the paired benchmark asserts it.  (With
  ``fanout > 1`` a vector may be shared between overlapping sessions and
  the guarantee is forfeit — useful for throughput realism, not for
  regression accounting.)

Tracing and metrics reuse the PR 1 instruments: pass a
:class:`~repro.obs.trace.Tracer` for clock-stamped per-site events and a
:class:`~repro.obs.metrics.MetricsRegistry` for the standard
``observe_session`` instruments plus cluster-level counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.order import Ordering
from repro.core.rotating import BasicRotatingVector
from repro.errors import SimulationError
from repro.net.channel import ChannelSpec
from repro.net.faults import RetryPolicy, derive_seed
from repro.net.runner import (SessionOptions, TimedSessionResult, launch,
                              run_timed)
from repro.net.simulator import Simulator
from repro.net.stats import TransferStats
from repro.net.wire import DEFAULT_ENCODING, Encoding
from repro.obs.metrics import MetricsRegistry, observe_session
from repro.obs.trace import Tracer
from repro.protocols import registry
from repro.workload.cluster import SessionRequest, UpdateRequest


class _ProtocolTable:
    """Legacy read-only view of the registry: name -> (vector_cls, reconciles).

    Kept so historical call sites (``PROTOCOLS["srv"]``, ``in PROTOCOLS``,
    ``sorted(PROTOCOLS)``) keep working; all dispatch goes through
    :mod:`repro.protocols.registry`.
    """

    def __getitem__(self, name: str) -> Tuple[type, bool]:
        spec = registry.get(name)
        return (spec.vector_cls, spec.reconciles)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name in registry.names()

    def __iter__(self):
        return iter(registry.names())

    def __len__(self) -> int:
        return len(registry.names())

    def keys(self):
        return registry.names()


#: protocol name -> (vector class, supports automatic reconciliation)
PROTOCOLS = _ProtocolTable()


@dataclass(frozen=True)
class ClusterConfig:
    """Parameters of one cluster run.

    Attributes:
        protocol: metadata scheme and sync protocol — ``brv`` (SYNCB),
            ``crv`` (SYNCC), or ``srv`` (SYNCS).
        channel: link model applied to every session.
        encoding: wire pricing for every message.
        fanout: concurrent sessions a site may participate in (≥ 1).
        stop_and_wait: per-item ack baseline instead of pipelining.
        proc_time: per-received-message processing cost.
        increment_on_merge: apply §2.2's post-reconciliation self-increment
            on the pulling site, keeping COMPARE's freshness precondition.
        max_steps: per-session effect budget (livelock guard).
        n_objects: replicated objects per site; a session synchronizes
            *all* of them between its pair.
        batch_size: objects coalesced into one framed wire session
            (:mod:`repro.protocols.batch`).  1 — the default — runs each
            object through the plain per-object machinery, bit-for-bit
            the historical single-object path.
        retry: ARQ knobs (timeouts, backoff, retry and resume budgets)
            applied to every session when the channel's fault spec is
            enabled; inert on a perfect link.
        backend: vector storage backend — ``array`` (flat parallel-array
            representation, the default fast path) or ``linked`` (the
            pointer-chasing oracle).  Both produce byte-identical wire
            traffic and identical fingerprints; the choice is purely an
            in-memory speed/verification trade-off.
    """

    protocol: str = "srv"
    channel: ChannelSpec = field(default_factory=ChannelSpec)
    encoding: Encoding = DEFAULT_ENCODING
    fanout: int = 1
    stop_and_wait: bool = False
    proc_time: float = 0.0
    increment_on_merge: bool = True
    max_steps: int = 10_000_000
    n_objects: int = 1
    batch_size: int = 1
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    backend: str = "array"

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}; "
                             f"expected one of {sorted(PROTOCOLS)}")
        # Resolve eagerly so a typo'd backend fails at config time.
        registry.get(self.protocol).vector_class(self.backend)
        if self.fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {self.fanout}")
        if self.n_objects < 1:
            raise ValueError(f"n_objects must be >= 1, got {self.n_objects}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, "
                             f"got {self.batch_size}")
        if self.channel.faults.enabled and self.fanout > 1:
            raise ValueError(
                "faulted channels require fanout=1: session resume "
                "restores the receiver's pre-session snapshot, which is "
                "only sound when no other session writes the same site "
                "concurrently")


@dataclass
class ClusterSessionRecord:
    """One executed session, in cluster start order.

    ``verdict``/``reconciled`` describe object 0 (the full history for
    single-object clusters); ``verdicts``/``reconciled_objects`` carry
    the per-object detail when ``n_objects > 1``.
    """

    index: int
    src: str
    dst: str
    requested_at: float
    started_at: float
    verdict: Ordering
    reconciled: bool
    result: Optional[TimedSessionResult] = None
    verdicts: Tuple[Ordering, ...] = ()
    reconciled_objects: Tuple[bool, ...] = ()

    @property
    def queue_wait(self) -> float:
        """Seconds the request sat behind busy endpoints."""
        return self.started_at - self.requested_at


#: Execution-log entries: ``("update", site)`` (object 0),
#: ``("update", site, obj)`` for a non-zero object index, or
#: ``("session", src, dst)``, in realized execution order.  Reconciliation
#: self-increments are *not* logged — they are derived deterministically
#: from each session's verdicts, by the runner and by
#: :func:`replay_sequential` alike.
LogEntry = Tuple[Any, ...]


@dataclass
class ClusterResult:
    """What one cluster run measured.

    ``vectors`` is every site's object-0 vector (the whole state for
    single-object clusters); ``objects`` holds the full per-site object
    lists (``objects[site][0] is vectors[site]``).
    """

    records: List[ClusterSessionRecord]
    log: List[LogEntry]
    totals: TransferStats
    completion_time: float
    updates_applied: int
    updates_deferred: int
    reconciliations: int
    vectors: Dict[str, BasicRotatingVector]
    objects: Dict[str, List[BasicRotatingVector]] = field(
        default_factory=dict)

    @property
    def sessions(self) -> int:
        return len(self.records)

    @property
    def total_bits(self) -> int:
        return self.totals.total_bits

    @property
    def max_queue_wait(self) -> float:
        return max((r.queue_wait for r in self.records), default=0.0)

    def consistent(self) -> bool:
        """True iff every site agrees on the values of every object."""
        if self.objects:
            site_lists = list(self.objects.values())
            first = site_lists[0]
            return all(site_list[k].same_values(first[k])
                       for site_list in site_lists[1:]
                       for k in range(len(first)))
        vectors = list(self.vectors.values())
        return all(v.same_values(vectors[0]) for v in vectors[1:])

    def per_session_bits(self) -> List[int]:
        """Total bits of each session, in start order."""
        return [r.result.stats.total_bits for r in self.records]


class ClusterRunner:
    """Schedules many concurrent pairwise sessions on one simulator.

    One-shot: construct, :meth:`run` once, read the result.  The runner
    owns one rotating vector per site (``config.protocol`` picks the
    class); sessions mutate them in place exactly as a real fleet would.
    """

    def __init__(self, sites: Iterable[str], config: ClusterConfig, *,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 monitor: Optional[Any] = None) -> None:
        self.sites = list(sites)
        if len(set(self.sites)) != len(self.sites):
            raise ValueError("duplicate site names in cluster")
        self.config = config
        if monitor is not None and tracer is None:
            # The monitor feeds on the trace stream; a run launched
            # without a tracer adopts the monitor's private one so there
            # are reliability events to observe.
            tracer = monitor.tracer
        self.tracer = tracer
        self.metrics = metrics
        self.monitor = monitor
        spec = registry.get(config.protocol)
        vector_cls = spec.vector_class(config.backend)
        self._reconciles = spec.reconciles
        self.objects: Dict[str, List[BasicRotatingVector]] = {
            site: [vector_cls() for _ in range(config.n_objects)]
            for site in self.sites}
        #: Object-0 view, the whole state for single-object clusters.
        self.vectors: Dict[str, BasicRotatingVector] = {
            site: self.objects[site][0] for site in self.sites}
        self._sim: Optional[Simulator] = None
        self._usage: Dict[str, int] = {site: 0 for site in self.sites}
        self._deferred: Dict[str, List[UpdateRequest]] = {
            site: [] for site in self.sites}
        self._pending: List[SessionRequest] = []
        self._requested_at: Dict[int, float] = {}
        self._records: List[ClusterSessionRecord] = []
        self._log: List[LogEntry] = []
        self._totals = TransferStats()
        self._updates_applied = 0
        self._updates_deferred = 0
        self._reconciliations = 0
        self._finished = False

    # -- scheduling ------------------------------------------------------------

    def run(self, sessions: Iterable[SessionRequest],
            updates: Iterable[UpdateRequest] = ()) -> ClusterResult:
        """Execute the schedule to completion; returns the measurements."""
        if self._finished:
            raise SimulationError("ClusterRunner instances are one-shot")
        self._finished = True
        sim = self._sim = Simulator()
        tracer = self.tracer
        previous_clock = tracer.clock if tracer is not None else None
        span = None
        if tracer is not None:
            tracer.clock = lambda: sim.now
            # The channel parameters on the span let the causal analyzer
            # decompose every send→deliver hop exactly (latency +
            # bits/bandwidth + fault-injected delay, zero residual).
            span = tracer.span(f"cluster:{self.config.protocol}",
                               sites=len(self.sites),
                               fanout=self.config.fanout,
                               protocol=self.config.protocol,
                               latency=self.config.channel.latency,
                               bandwidth=self.config.channel.bandwidth)
        if self.monitor is not None:
            self.monitor.attach(self)
        try:
            for request in sessions:
                self._check_sites(request.src, request.dst)
                if request.src == request.dst:
                    raise ValueError(
                        f"session {request} pairs a site with itself")
                sim.call_at(request.at,
                            lambda r=request: self._on_session_request(r))
            for update in updates:
                self._check_sites(update.site)
                obj = getattr(update, "obj", 0)
                if not 0 <= obj < self.config.n_objects:
                    raise ValueError(
                        f"update {update} names object {obj}, but the "
                        f"cluster has {self.config.n_objects}")
                sim.call_at(update.at,
                            lambda u=update: self._on_update_request(u))
            sim.run()
            if self.monitor is not None:
                self.monitor.finalize()
        finally:
            if span is not None:
                span.end()
            if tracer is not None:
                tracer.flush_sampling()
                tracer.clock = previous_clock
        if self._pending or any(self._usage.values()):
            raise SimulationError(  # pragma: no cover - defensive
                "cluster drained with sessions still queued or active")
        return ClusterResult(
            records=self._records,
            log=self._log,
            totals=self._totals,
            completion_time=sim.now,
            updates_applied=self._updates_applied,
            updates_deferred=self._updates_deferred,
            reconciliations=self._reconciliations,
            vectors=self.vectors,
            objects=self.objects,
        )

    def _check_sites(self, *names: str) -> None:
        for name in names:
            if name not in self.vectors:
                raise ValueError(f"unknown site {name!r} in schedule")

    # -- updates ---------------------------------------------------------------

    def _on_update_request(self, update: UpdateRequest) -> None:
        if self._usage[update.site] > 0:
            # Mid-session: mutating a vector a live coroutine iterates
            # would corrupt the session; hold the update until it frees.
            self._deferred[update.site].append(update)
            self._updates_deferred += 1
            if self.metrics is not None:
                self.metrics.counter("cluster.updates_deferred").inc()
            return
        self._apply_update(update.site, getattr(update, "obj", 0))

    def _apply_update(self, site: str, obj: int = 0) -> None:
        self.objects[site][obj].record_update(site)
        # Object-0 updates keep the historical two-tuple entry so
        # single-object logs (and their replays) are unchanged.
        self._log.append(("update", site) if obj == 0
                         else ("update", site, obj))
        self._updates_applied += 1
        if self.tracer is not None:
            self.tracer.event("update", party=site)
        if self.metrics is not None:
            self.metrics.counter("cluster.updates").inc()
        if self.monitor is not None:
            self.monitor.on_update(site, obj)

    # -- sessions --------------------------------------------------------------

    def _on_session_request(self, request: SessionRequest) -> None:
        self._requested_at[id(request)] = self._sim.now
        if self.tracer is not None:
            # The session index is unknown until the session starts;
            # the analyzer matches requests to starts FIFO per (src,
            # dst) pair — exactly the order _dispatch starts them.
            self.tracer.event("session_request", party=request.dst,
                              peer=request.src)
        self._pending.append(request)
        self._dispatch()

    def _dispatch(self) -> None:
        """Start every queued session whose endpoints have capacity.

        A single oldest-first pass suffices: starting a session only
        consumes capacity, so a request skipped here cannot become
        startable until something finishes (which dispatches again).
        """
        fanout = self.config.fanout
        still_pending: List[SessionRequest] = []
        for request in self._pending:
            if (self._usage[request.src] < fanout
                    and self._usage[request.dst] < fanout):
                self._start(request)
            else:
                still_pending.append(request)
        self._pending = still_pending

    def _build_pairs(self, src: str, dst: str
                     ) -> Tuple[List[Ordering], List[bool],
                                Tuple[Tuple[Any, Any], ...]]:
        """Fresh coroutine pairs over the endpoints' *current* state."""
        config = self.config
        spec = registry.get(config.protocol)
        verdicts: List[Ordering] = []
        reconciled_flags: List[bool] = []
        pairs: List[Tuple[Any, Any]] = []
        for obj in range(config.n_objects):
            verdict = self.objects[dst][obj].compare(self.objects[src][obj])
            sender, receiver, reconciled = spec.build(
                self.objects[src][obj], self.objects[dst][obj], verdict,
                tracer=self.tracer)
            verdicts.append(verdict)
            reconciled_flags.append(reconciled)
            pairs.append((sender, receiver))
        return verdicts, reconciled_flags, tuple(pairs)

    def _start(self, request: SessionRequest) -> None:
        sim = self._sim
        config = self.config
        src, dst = request.src, request.dst
        verdicts, reconciled_flags, pairs = self._build_pairs(src, dst)
        record = ClusterSessionRecord(
            index=len(self._records), src=src, dst=dst,
            requested_at=self._requested_at.pop(id(request), sim.now),
            started_at=sim.now, verdict=verdicts[0],
            reconciled=reconciled_flags[0], verdicts=tuple(verdicts),
            reconciled_objects=tuple(reconciled_flags))
        self._records.append(record)
        self._log.append(("session", src, dst))
        self._usage[src] += 1
        self._usage[dst] += 1
        self._reconciliations += sum(reconciled_flags)
        if self.tracer is not None:
            self.tracer.event("session_start", party=dst, peer=src,
                              verdict=verdicts[0].name.lower(),
                              session=record.index)
        if self.monitor is not None:
            # Before launch: the monitor snapshots the endpoints here so
            # its post-session ancestor-closure oracle has the pre-state.
            self.monitor.on_session_start(record)
        common = dict(
            # A single-object cluster runs the historical per-object
            # path regardless of batch_size, as it always has.
            batch_size=config.batch_size if config.n_objects > 1 else 1,
            channel=config.channel, encoding=config.encoding,
            stop_and_wait=config.stop_and_wait, proc_time=config.proc_time,
            max_steps=config.max_steps, tracer=self.tracer,
            party_names=(src, dst), retry=config.retry,
            session_id=record.index,
            on_complete=lambda result: self._finish(record, result))
        if not config.channel.faults.enabled:
            launch(sim, SessionOptions(pairs=pairs, **common))
            return

        first_pairs: List[Tuple[Tuple[Any, Any], ...]] = [pairs]
        # Attempts are transactional: the protocols stream Δ newest-first,
        # so a torn attempt's acked prefix is never ancestor-closed and
        # committing it would corrupt the receiver's knowledge state (a
        # vector claiming an element without its causal past halts every
        # later sync prematurely).  Snapshot the receiver's objects now;
        # resume restores them and re-handshakes from this state.  Safe
        # because updates to a busy site are deferred and fanout capacity
        # means no other session writes ``dst`` meanwhile.
        snapshots = tuple(self.objects[dst][obj].copy()
                          for obj in range(config.n_objects))

        def rebuild() -> Tuple[Tuple[Any, Any], ...]:
            if first_pairs:
                return first_pairs.pop()
            for obj, snapshot in enumerate(snapshots):
                # In place: result views and the site table alias these
                # objects, so identity must survive the rollback.
                self.objects[dst][obj].restore(snapshot)
            new_verdicts, new_flags, new_pairs = self._build_pairs(src, dst)
            merged = tuple(old or new for old, new
                           in zip(record.reconciled_objects, new_flags))
            self._reconciliations += sum(
                1 for old, new in zip(record.reconciled_objects, new_flags)
                if new and not old)
            record.verdicts = tuple(new_verdicts)
            record.reconciled_objects = merged
            record.verdict = new_verdicts[0]
            record.reconciled = merged[0]
            return new_pairs

        launch(sim, SessionOptions(
            rebuild=rebuild,
            fault_seed=derive_seed(config.channel.faults.seed, record.index),
            **common))

    def _finish(self, record: ClusterSessionRecord,
                result: TimedSessionResult) -> None:
        record.result = result
        self._totals.merge(result.stats)
        if self.monitor is not None:
            # Before the §2.2 self-increment below: the closure oracle
            # expects the receiver to hold exactly max(pre-state, sender).
            self.monitor.on_session_end(record, result)
        src, dst = record.src, record.dst
        self._usage[src] -= 1
        self._usage[dst] -= 1
        if self.config.increment_on_merge:
            # §2.2: the pulling site increments its own element after an
            # automatic merge, per reconciled object.  Not logged — replay
            # derives it from the session verdicts, exactly as here.
            for obj, reconciled in enumerate(record.reconciled_objects):
                if reconciled:
                    self.objects[dst][obj].record_update(dst)
                    if self.tracer is not None:
                        # New knowledge originating at dst: the causal
                        # analyzer's convergence frontier must include it.
                        self.tracer.event("reconcile", party=dst, obj=obj,
                                          session=record.index)
        if self.tracer is not None:
            self.tracer.event("session_end", party=dst, peer=src,
                              bits=result.stats.total_bits,
                              session=record.index)
        if self.metrics is not None:
            observe_session(self.metrics, result.stats,
                            protocol=f"cluster.{self.config.protocol}",
                            completion_time=result.duration)
            self.metrics.histogram("cluster.queue_wait_seconds").observe(
                record.queue_wait)
        # Updates that arrived mid-session land before anything queued
        # gets to start on the freed endpoints.
        for site in (src, dst):
            if self._usage[site] == 0 and self._deferred[site]:
                deferred, self._deferred[site] = self._deferred[site], []
                for update in deferred:
                    self._apply_update(site, getattr(update, "obj", 0))
        self._dispatch()


def build_session_coroutines(protocol: str, b: BasicRotatingVector,
                             a: BasicRotatingVector, verdict: Ordering, *,
                             tracer: Optional[Tracer] = None
                             ) -> Tuple[Any, Any, bool]:
    """(sender, receiver, reconciled) for ``SYNC*_b(a)`` under ``verdict``.

    ``reconciled`` reports whether the receiver will perform an automatic
    merge (always False for BRV, which raises on concurrent inputs
    instead — Algorithm 2's ``Require: a ∦ b``).  Thin delegation to
    :meth:`repro.protocols.registry.ProtocolSpec.build` — the registry is
    the single dispatch authority.
    """
    return registry.get(protocol).build(b, a, verdict, tracer=tracer)


def replay_sequential(sites: Iterable[str], config: ClusterConfig,
                      log: Iterable[LogEntry]
                      ) -> Tuple[List[TimedSessionResult],
                                 Dict[str, BasicRotatingVector]]:
    """Re-execute a cluster run's log one session at a time.

    Each session runs alone on a fresh private simulator (via the unified
    :func:`~repro.net.runner.launch` machinery) against vectors evolved
    through the same realized order.  Under ``fanout=1`` the returned
    per-session stats must equal the concurrent run's — the scheduling-
    independence property the regression benchmark asserts.  On a faulted
    channel every session re-derives the concurrent run's per-session
    injector seed from its log position, so drop/duplicate/reorder
    schedules (and the retransmissions, aborts, and resumes they induce)
    replay bit for bit; absolute-time *partition windows* are the one
    exclusion — a replayed session starts its private clock at 0, so the
    replay guarantee covers probabilistic faults only.  Returns the
    per-session results and every site's object-0 vector.
    """
    spec = registry.get(config.protocol)
    vector_cls = spec.vector_class(config.backend)
    objects: Dict[str, List[BasicRotatingVector]] = {
        site: [vector_cls() for _ in range(config.n_objects)]
        for site in sites}
    results: List[TimedSessionResult] = []
    session_index = -1
    for entry in log:
        if entry[0] == "update":
            obj = entry[2] if len(entry) > 2 else 0
            objects[entry[1]][obj].record_update(entry[1])
            continue
        if entry[0] != "session":  # pragma: no cover - defensive
            raise ValueError(f"unknown log entry {entry!r}")
        _, src, dst = entry
        session_index += 1
        reconciled_any = [False] * config.n_objects
        # Mirrors the concurrent runner's transactional attempts: the
        # first build snapshots the receiver's objects, every resume
        # restores them before re-handshaking (see ClusterRunner._start).
        snapshots: List[Tuple[Any, ...]] = []

        def build() -> Tuple[Tuple[Any, Any], ...]:
            if config.channel.faults.enabled:
                if not snapshots:
                    snapshots.append(
                        tuple(objects[dst][obj].copy()
                              for obj in range(config.n_objects)))
                else:
                    for obj, snapshot in enumerate(snapshots[0]):
                        objects[dst][obj].restore(snapshot)
            pairs = []
            for obj in range(config.n_objects):
                verdict = objects[dst][obj].compare(objects[src][obj])
                sender, receiver, reconciled = spec.build(
                    objects[src][obj], objects[dst][obj], verdict)
                pairs.append((sender, receiver))
                reconciled_any[obj] |= reconciled
            return tuple(pairs)

        common = dict(
            batch_size=config.batch_size if config.n_objects > 1 else 1,
            channel=config.channel, encoding=config.encoding,
            stop_and_wait=config.stop_and_wait, proc_time=config.proc_time,
            max_steps=config.max_steps, retry=config.retry)
        if config.channel.faults.enabled:
            options = SessionOptions(
                rebuild=build,
                fault_seed=derive_seed(config.channel.faults.seed,
                                       session_index),
                **common)
        else:
            options = SessionOptions(pairs=build(), **common)
        results.append(run_timed(options))
        if config.increment_on_merge:
            for obj, reconciled in enumerate(reconciled_any):
                if reconciled:
                    objects[dst][obj].record_update(dst)
    return results, {site: objs[0] for site, objs in objects.items()}
