"""Bit-exact serialization of protocol messages.

Everywhere else in the library, messages are Python objects *priced* in
bits; this module makes the pricing honest by actually encoding every
message into Table 2's layouts and decoding it back.  The serialized
session driver (:func:`run_session_serialized`) routes every transmission
through encode→bits→decode and asserts the measured bit length equals the
priced one, so the communication numbers reported by the benchmarks are
realizable wire formats, not estimates.

Layouts (first bit = frame tag; widths from the session's
:class:`~repro.net.wire.Encoding`):

====================== =============================================
BRV forward            ``0 site value`` · HALT ``1 0``
CRV forward            ``0 site value c`` · HALT ``1 0``
SRV forward            ``0 site value c s`` · HALT ``1``
SRV backward           ``0 segs`` (SKIP) · HALT ``1``
graph forward          ``0 node lp rp`` · HALT ``1``
graph backward         ``0 node`` (skip-to) · ABORT ``1``
COMPARE                ``site value`` then ``bit`` (verdict)
full vector            ``count (site value)×count``
full graph             ``count (node lp rp)×count``
batch frame            ``(γ(index) γ(count) msg×count)×entries``
====================== =============================================

Sites ride as registry ids; graph node ids must be integers (real systems
use integer or hash identifiers — the tuple ids of the simulation layer
are a convenience above this layer).  Value fields honor the encoding's
:meth:`~repro.net.wire.Encoding.value_field_bits` hook, so the adaptive
Elias-γ extension serializes too.

Two bit-I/O implementations coexist.  :class:`BitWriter`/:class:`BitReader`
are the production fast path: an integer accumulator flushed bytes at a
time, a table-driven γ writer, and an O(1) γ reader via ``bit_length`` —
whole segments and batched frames encode in one pass instead of a Python
loop per bit.  :class:`BitByBitWriter`/:class:`BitByBitReader` keep the
original bit-at-a-time code as the equivalence oracle: both pairs must
produce byte-identical streams on every message, which the codec test
suite and the ``repro.perf.microbench`` E4/E11 cells enforce.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Sequence, Tuple

from repro.errors import ProtocolError
from repro.extensions.varint import AdaptiveEncoding
from repro.net.wire import Encoding
from repro.protocols.batch import BatchFrame
from repro.protocols.effects import Send
from repro.protocols.messages import (AbortMsg, CompareLeast, ElementCMsg,
                                      ElementMsg, ElementSMsg, FullGraphMsg,
                                      FullVectorMsg, GraphNodeMsg, Halt,
                                      Message, Skip, SkipToMsg, VerdictBit)
from repro.protocols.session import (ProtocolCoroutine, SessionResult,
                                     run_session)
from repro.replication.membership import SiteRegistry

#: γ(value + 1) widths for small values, precomputed once.  Element
#: values, object indices, and per-entry message counts are almost
#: always < 1024, so the table turns the common γ write into one lookup.
_GAMMA_WIDTH = tuple(2 * (value + 1).bit_length() - 1
                     for value in range(1024))

#: Flush the writer's accumulator once it holds this many bits, keeping
#: big-int shifts short while still batching ``to_bytes`` conversions.
_FLUSH_BITS = 4096


class BitWriter:
    """Append-only big-endian bit buffer (accumulator fast path).

    Bits accumulate in one Python int — ``write`` is a shift and an OR —
    and spill to a bytearray in whole-byte chunks whenever the
    accumulator passes :data:`_FLUSH_BITS`, so the cost per field is
    O(1) amortized instead of O(width) list appends.  Byte-identical to
    :class:`BitByBitWriter` on every input.
    """

    __slots__ = ("_chunks", "_acc", "_nacc", "_emitted")

    def __init__(self) -> None:
        self._chunks = bytearray()
        self._acc = 0
        self._nacc = 0
        self._emitted = 0

    def write(self, value: int, width: int) -> None:
        """Append ``value`` as a fixed ``width``-bit big-endian field."""
        if value < 0 or (width < 64 and value >= (1 << width)):
            raise ProtocolError(f"value {value} does not fit in {width} bits")
        self._acc = (self._acc << width) | (value & ((1 << width) - 1))
        self._nacc += width
        if self._nacc >= _FLUSH_BITS:
            self._spill()

    def write_gamma(self, value: int) -> None:
        """Append Elias-γ(value + 1): self-delimiting, 1 bit for zero."""
        shifted = value + 1
        width = (_GAMMA_WIDTH[value] if 0 <= value < 1024
                 else 2 * shifted.bit_length() - 1)
        # γ is `width//2` zeros then `shifted` (whose top bit is 1) in
        # `width//2 + 1` bits — exactly `shifted` written `width` wide.
        self._acc = (self._acc << width) | shifted
        self._nacc += width
        if self._nacc >= _FLUSH_BITS:
            self._spill()

    def _spill(self) -> None:
        """Move the accumulator's whole bytes into the chunk buffer."""
        keep = self._nacc & 7
        nbytes = (self._nacc - keep) >> 3
        self._chunks += (self._acc >> keep).to_bytes(nbytes, "big")
        self._acc &= (1 << keep) - 1
        self._nacc = keep
        self._emitted += nbytes << 3

    @property
    def bit_length(self) -> int:
        """Bits written so far."""
        return self._emitted + self._nacc

    def getvalue(self) -> bytes:
        """The buffer as bytes, zero-padded to a byte boundary."""
        pad = (-self._nacc) & 7
        tail = ((self._acc << pad).to_bytes((self._nacc + pad) >> 3, "big")
                if self._nacc else b"")
        return bytes(self._chunks) + tail


class BitReader:
    """Sequential reader over a :class:`BitWriter`'s output.

    Fields are served from a small int accumulator refilled eight bytes
    at a time, so every read costs O(1) *in the stream length*: decoding
    an n-element segment walk is O(n).  (Converting the whole buffer to
    one big int up front looks elegant but makes every shift O(total
    bits) and the walk quadratic.)  γ fields still decode without a
    bit-at-a-time zero scan: the accumulator's ``int.bit_length`` finds
    the marker inside the current window directly.
    """

    __slots__ = ("_data", "_bit_length", "_position", "_byte_pos",
                 "_acc", "_nacc")

    def __init__(self, data: bytes, bit_length: int) -> None:
        self._data = data
        self._bit_length = bit_length
        self._position = 0
        self._byte_pos = 0
        #: Accumulator invariant: ``_acc`` holds exactly the next
        #: ``_nacc`` unconsumed bits (no stale high bits).
        self._acc = 0
        self._nacc = 0

    def _refill(self, need: int) -> None:
        """Pull bytes into the accumulator until it holds ``need`` bits."""
        acc, nacc = self._acc, self._nacc
        data, pos = self._data, self._byte_pos
        while nacc < need:
            chunk = data[pos:pos + 8]
            if not chunk:
                raise ProtocolError("bitstream underrun")
            bits = len(chunk) * 8
            acc = (acc << bits) | int.from_bytes(chunk, "big")
            nacc += bits
            pos += len(chunk)
        self._acc, self._nacc, self._byte_pos = acc, nacc, pos

    def read(self, width: int) -> int:
        """Read a fixed ``width``-bit big-endian field."""
        position = self._position
        if position + width > self._bit_length:
            raise ProtocolError("bitstream underrun")
        if self._nacc < width:
            self._refill(width)
        self._position = position + width
        nacc = self._nacc - width
        value = self._acc >> nacc
        self._acc &= (1 << nacc) - 1
        self._nacc = nacc
        return value

    def read_gamma(self) -> int:
        """Read an Elias-γ field written by :meth:`BitWriter.write_gamma`."""
        position = self._position
        acc, nacc = self._acc, self._nacc
        data, pos = self._data, self._byte_pos
        zeros = 0
        while acc == 0:
            # The current window is all zeros: consume it and refill.
            # Running out of bytes means the zero run crosses the end of
            # the stream (padding is zero-filled) — an underrun.
            zeros += nacc
            chunk = data[pos:pos + 8]
            if not chunk:
                raise ProtocolError("bitstream underrun")
            acc = int.from_bytes(chunk, "big")
            nacc = len(chunk) * 8
            pos += len(chunk)
        zeros += nacc - acc.bit_length()
        end = position + 2 * zeros + 1
        if end > self._bit_length:
            raise ProtocolError("bitstream underrun")
        # Commit the zero-skip, then read marker + payload as one field.
        self._acc, self._nacc, self._byte_pos = acc, acc.bit_length(), pos
        need = zeros + 1
        if self._nacc < need:
            self._refill(need)
        nacc = self._nacc - need
        value = self._acc >> nacc
        self._acc &= (1 << nacc) - 1
        self._nacc = nacc
        self._position = end
        return value - 1

    @property
    def remaining(self) -> int:
        """Unread bits."""
        return self._bit_length - self._position


class BitByBitWriter:
    """The original one-bit-at-a-time writer, kept as the oracle.

    :class:`BitWriter` must produce byte-identical output; the codec
    tests and microbench cells drive both over the same streams.
    """

    def __init__(self) -> None:
        self._bits: List[int] = []

    def write(self, value: int, width: int) -> None:
        """Append ``value`` as a fixed ``width``-bit big-endian field."""
        if value < 0 or (width < 64 and value >= (1 << width)):
            raise ProtocolError(f"value {value} does not fit in {width} bits")
        for position in range(width - 1, -1, -1):
            self._bits.append((value >> position) & 1)

    def write_gamma(self, value: int) -> None:
        """Append Elias-γ(value + 1): self-delimiting, 1 bit for zero."""
        shifted = value + 1
        length = shifted.bit_length() - 1
        for _ in range(length):
            self._bits.append(0)
        self.write(shifted, length + 1)

    @property
    def bit_length(self) -> int:
        """Bits written so far."""
        return len(self._bits)

    def getvalue(self) -> bytes:
        """The buffer as bytes, zero-padded to a byte boundary."""
        padded = self._bits + [0] * (-len(self._bits) % 8)
        out = bytearray()
        for index in range(0, len(padded), 8):
            byte = 0
            for bit in padded[index:index + 8]:
                byte = (byte << 1) | bit
            out.append(byte)
        return bytes(out)


class BitByBitReader:
    """The original one-bit-at-a-time reader, kept as the oracle."""

    def __init__(self, data: bytes, bit_length: int) -> None:
        self._data = data
        self._bit_length = bit_length
        self._position = 0

    def read(self, width: int) -> int:
        """Read a fixed ``width``-bit big-endian field."""
        if self._position + width > self._bit_length:
            raise ProtocolError("bitstream underrun")
        value = 0
        for _ in range(width):
            byte = self._data[self._position // 8]
            bit = (byte >> (7 - self._position % 8)) & 1
            value = (value << 1) | bit
            self._position += 1
        return value

    def read_gamma(self) -> int:
        """Read an Elias-γ field written by ``write_gamma``."""
        length = 0
        while self.read(1) == 0:
            length += 1
        value = 1
        for _ in range(length):
            value = (value << 1) | self.read(1)
        return value - 1

    @property
    def remaining(self) -> int:
        """Unread bits."""
        return self._bit_length - self._position


#: Channel identifiers: (protocol kind, direction).
CHANNELS = ("brv_fwd", "brv_bwd", "crv_fwd", "crv_bwd", "srv_fwd",
            "srv_bwd", "graph_fwd", "graph_bwd", "compare",
            "full_vector", "full_graph")

#: Reserved graph-id code for "no parent" (ids are shifted by one).
_NIL = 0


class NodeInterner:
    """Bijective mapping between arbitrary graph node ids and wire ints.

    Operation identifiers in the simulation layer are ``(site, seq)``
    tuples; on a real wire they would be integers or content hashes that
    both parties compute identically.  The interner stands in for that:
    one instance is shared by both endpoints of a session (like the site
    registry), assigning dense integer codes on first sight.
    """

    def __init__(self) -> None:
        self._codes: dict = {}
        self._nodes: list = []

    def encode(self, node: Any) -> int:
        """The wire integer for ``node``, assigned on first use."""
        code = self._codes.get(node)
        if code is None:
            code = len(self._nodes)
            self._codes[node] = code
            self._nodes.append(node)
        return code

    def decode(self, code: int) -> Any:
        """The node id behind a wire integer."""
        try:
            return self._nodes[code]
        except IndexError:
            raise ProtocolError(f"unknown node code {code}") from None

    def __len__(self) -> int:
        return len(self._nodes)


class _IdentityInterner:
    """Default interner: node ids are already integers."""

    def encode(self, node: Any) -> int:
        """Pass an int through, rejecting anything else."""
        if not isinstance(node, int) or node < 0:
            raise ProtocolError(
                f"graph node id {node!r} is not a non-negative int; "
                f"pass a NodeInterner to the codec")
        return node

    def decode(self, code: int) -> Any:
        """Pass the wire int through unchanged."""
        return code


class Codec:
    """Encode/decode every protocol message under one system's encoding.

    Args:
        encoding: field widths (and value-field pricing policy).
        registry: site-name ↔ id mapping shared by both parties (the
            membership manager's responsibility in a deployment).  Site id
            0 is reserved to announce an empty vector in COMPARE, so the
            wire id of site *k* is *k + 1* — which is why
            :func:`~repro.net.wire.bits_for` sizes fields for ``count + 1``.
        interner: graph node-id mapping (defaults to integer ids).
        bit_io: the ``(writer class, reader class)`` pair — the default
            fast pair, or ``(BitByBitWriter, BitByBitReader)`` to run the
            codec over the oracle implementation for equivalence checks.
    """

    def __init__(self, encoding: Encoding, registry: SiteRegistry,
                 interner: Any = None,
                 bit_io: Optional[Tuple[type, type]] = None) -> None:
        self.encoding = encoding
        self.registry = registry
        self.interner = interner if interner is not None else _IdentityInterner()
        self._adaptive = isinstance(encoding, AdaptiveEncoding)
        self._writer_cls, self._reader_cls = bit_io or (BitWriter, BitReader)

    # -- field helpers -----------------------------------------------------------

    def _write_site(self, writer: Any, site: Optional[str]) -> None:
        code = 0 if site is None else self.registry.id_of(site) + 1
        writer.write(code, self.encoding.site_bits)

    def _read_site(self, reader: Any) -> Optional[str]:
        code = reader.read(self.encoding.site_bits)
        return None if code == 0 else self.registry.name_of(code - 1)

    def _write_value(self, writer: Any, value: int) -> None:
        if self._adaptive:
            writer.write_gamma(value)
        else:
            writer.write(value, self.encoding.value_bits)

    def _read_value(self, reader: Any) -> int:
        if self._adaptive:
            return reader.read_gamma()
        return reader.read(self.encoding.value_bits)

    def _write_node(self, writer: Any, node: Optional[Any]) -> None:
        code = _NIL if node is None else self.interner.encode(node) + 1
        writer.write(code, self.encoding.node_id_bits)

    def _read_node(self, reader: Any) -> Optional[Any]:
        code = reader.read(self.encoding.node_id_bits)
        return None if code == _NIL else self.interner.decode(code - 1)

    # -- encoding -------------------------------------------------------------------

    def encode(self, message: Message, channel: str) -> Tuple[bytes, int]:
        """Serialize ``message`` for ``channel``; returns (bytes, bit length)."""
        writer = self._writer_cls()
        self._encode_one(writer, message, channel)
        return writer.getvalue(), writer.bit_length

    def encode_elements(self, messages: Sequence[Message],
                        channel: str) -> Tuple[bytes, int]:
        """Serialize a whole message stream for ``channel`` in one pass.

        The segment-at-once fast path: one writer accumulates every
        message (an entire SYNCS segment, a full element walk) without
        the per-message buffer and byte-assembly overhead of calling
        :meth:`encode` in a loop.  Sync-channel messages are
        self-delimiting, so :meth:`decode_elements` recovers the stream
        from the concatenated bits alone.  Not valid for ``compare``,
        whose verdict bit is only delimited by the message boundary.
        """
        if channel == "compare":
            raise ProtocolError(
                "compare messages are not self-delimiting; "
                "encode them individually")
        writer = self._writer_cls()
        if (type(writer) is BitWriter
                and channel in ("brv_fwd", "crv_fwd", "srv_fwd")):
            self._encode_element_stream(writer, messages, channel)
        else:
            encode_one = self._encode_one
            for message in messages:
                encode_one(writer, message, channel)
        return writer.getvalue(), writer.bit_length

    def decode_elements(self, data: bytes, bit_length: int,
                        channel: str) -> List[Message]:
        """Reconstruct the stream serialized by :meth:`encode_elements`."""
        if channel == "compare":
            raise ProtocolError(
                "compare messages are not self-delimiting; "
                "decode them individually")
        reader = self._reader_cls(data, bit_length)
        if (type(reader) is BitReader
                and channel in ("brv_fwd", "crv_fwd", "srv_fwd")):
            return self._decode_element_stream(reader, channel)
        decode_one = self._decode_one
        messages: List[Message] = []
        while reader.remaining:
            messages.append(decode_one(reader, channel))
        return messages

    def encode_batch(self, frame: BatchFrame,
                     channel: str) -> Tuple[bytes, int]:
        """Serialize a whole :class:`~repro.protocols.batch.BatchFrame`.

        One pass over every entry: γ(object index), γ(message count),
        then the entry's payload messages back to back — exactly the
        layout :meth:`BatchFrame.bits` prices, so the serialized length
        always equals the priced length.
        """
        if channel == "compare":
            raise ProtocolError("compare messages never ride batch frames")
        writer = self._writer_cls()
        if (type(writer) is BitWriter
                and channel in ("brv_fwd", "crv_fwd", "srv_fwd")):
            self._encode_element_stream(writer, (), channel,
                                        entries=frame.entries)
            return writer.getvalue(), writer.bit_length
        encode_one = self._encode_one
        for index, messages in frame.entries:
            writer.write_gamma(index)
            writer.write_gamma(len(messages))
            for message in messages:
                encode_one(writer, message, channel)
        return writer.getvalue(), writer.bit_length

    def decode_batch(self, data: bytes, bit_length: int,
                     channel: str) -> BatchFrame:
        """Reconstruct the frame serialized by :meth:`encode_batch`."""
        if channel == "compare":
            raise ProtocolError("compare messages never ride batch frames")
        reader = self._reader_cls(data, bit_length)
        if (type(reader) is BitReader
                and channel in ("brv_fwd", "crv_fwd", "srv_fwd")):
            return BatchFrame(tuple(
                self._decode_element_stream(reader, channel, frame=True)))
        entries: List[Tuple[int, Tuple[Message, ...]]] = []
        decode_one = self._decode_one
        while reader.remaining:
            index = reader.read_gamma()
            count = reader.read_gamma()
            entries.append((index, tuple(decode_one(reader, channel)
                                         for _ in range(count))))
        return BatchFrame(tuple(entries))

    def _encode_one(self, writer: Any, message: Message,
                    channel: str) -> None:
        """Append one message's bits to ``writer`` (any bit-IO impl)."""
        if channel in ("brv_fwd", "crv_fwd", "srv_fwd"):
            self._encode_forward_element(writer, message, channel)
        elif channel in ("brv_bwd", "crv_bwd"):
            if not isinstance(message, Halt):
                raise ProtocolError(f"{channel} carries HALT only")
            writer.write(0b10, 2)
        elif channel == "srv_bwd":
            if isinstance(message, Halt):
                writer.write(1, 1)
            elif isinstance(message, Skip):
                writer.write(0, 1)
                writer.write(message.segs, self.encoding.site_bits)
            else:
                raise ProtocolError(f"srv_bwd cannot carry {message!r}")
        elif channel == "graph_fwd":
            if isinstance(message, Halt):
                writer.write(1, 1)
            elif isinstance(message, GraphNodeMsg):
                writer.write(0, 1)
                self._write_node(writer, message.node)
                self._write_node(writer, message.left_parent)
                self._write_node(writer, message.right_parent)
            else:
                raise ProtocolError(f"graph_fwd cannot carry {message!r}")
        elif channel == "graph_bwd":
            if isinstance(message, AbortMsg):
                writer.write(1, 1)
            elif isinstance(message, SkipToMsg):
                writer.write(0, 1)
                self._write_node(writer, message.node)
            else:
                raise ProtocolError(f"graph_bwd cannot carry {message!r}")
        elif channel == "compare":
            if isinstance(message, CompareLeast):
                self._write_site(writer, message.site)
                self._write_value(writer, message.value)
            elif isinstance(message, VerdictBit):
                writer.write(1 if message.dominated else 0, 1)
            else:
                raise ProtocolError(f"compare cannot carry {message!r}")
        elif channel == "full_vector":
            if not isinstance(message, FullVectorMsg):
                raise ProtocolError(f"full_vector cannot carry {message!r}")
            writer.write(len(message.pairs), self.encoding.site_bits)
            for site, value in message.pairs:
                self._write_site(writer, site)
                self._write_value(writer, value)
        elif channel == "full_graph":
            if not isinstance(message, FullGraphMsg):
                raise ProtocolError(f"full_graph cannot carry {message!r}")
            writer.write(len(message.nodes), self.encoding.node_id_bits)
            for node, left, right in message.nodes:
                self._write_node(writer, node)
                self._write_node(writer, left)
                self._write_node(writer, right)
        else:
            raise ProtocolError(f"unknown channel {channel!r}")

    def _encode_forward_element(self, writer: Any, message: Message,
                                channel: str) -> None:
        if isinstance(message, Halt):
            if channel == "srv_fwd":
                writer.write(1, 1)
            else:
                writer.write(0b10, 2)
            return
        writer.write(0, 1)
        if channel == "brv_fwd":
            assert isinstance(message, ElementMsg)
            self._write_site(writer, message.site)
            self._write_value(writer, message.value)
        elif channel == "crv_fwd":
            assert isinstance(message, ElementCMsg)
            self._write_site(writer, message.site)
            self._write_value(writer, message.value)
            writer.write(1 if message.conflict else 0, 1)
        else:
            assert isinstance(message, ElementSMsg)
            self._write_site(writer, message.site)
            self._write_value(writer, message.value)
            writer.write(1 if message.conflict else 0, 1)
            writer.write(1 if message.segment else 0, 1)

    def _encode_element_stream(self, writer: "BitWriter",
                               messages: Sequence[Message],
                               channel: str,
                               entries: Optional[Sequence[
                                   Tuple[int, Sequence[Message]]]] = None
                               ) -> None:
        """Append a forward-element stream straight into the accumulator.

        The specialized hot path behind :meth:`encode_elements` and
        :meth:`encode_batch` for the three element channels: field
        widths, the site-id map, and the γ table are hoisted into locals
        and each message folds into the writer's int accumulator with a
        couple of shift-or operations instead of per-field method
        dispatch.  Bit-for-bit identical to looping
        :meth:`_encode_forward_element` — the oracle equivalence tests
        check exactly that.

        With ``entries`` this writes a whole :class:`BatchFrame` body —
        each entry's γ(index) γ(count) header followed by its messages —
        in the same single pass (``messages`` is ignored); one call per
        frame keeps the hoisting prologue off the per-entry cost.
        """
        encoding = self.encoding
        site_bits = encoding.site_bits
        site_limit = (1 << site_bits) if site_bits < 64 else 0
        adaptive = self._adaptive
        value_bits = 0 if adaptive else encoding.value_bits
        value_limit = ((1 << value_bits)
                       if not adaptive and value_bits < 64 else 0)
        id_of = self.registry.id_of
        gamma_width = _GAMMA_WIDTH
        srv = channel == "srv_fwd"
        if srv:
            element_cls: type = ElementSMsg
        elif channel == "crv_fwd":
            element_cls = ElementCMsg
        else:
            element_cls = ElementMsg
        acc = writer._acc
        nacc = writer._nacc
        groups = (((-1, messages),) if entries is None else entries)
        for group_index, group_messages in groups:
            if group_index >= 0:
                # Batch-entry header: γ(index) then γ(count).
                for header in (group_index, len(group_messages)):
                    shifted = header + 1
                    width = (gamma_width[header] if 0 <= header < 1024
                             else 2 * shifted.bit_length() - 1)
                    acc = (acc << width) | shifted
                    nacc += width
                if nacc >= _FLUSH_BITS:
                    writer._acc, writer._nacc = acc, nacc
                    writer._spill()
                    acc, nacc = writer._acc, writer._nacc
            for message in group_messages:
                if type(message) is element_cls:
                    code = id_of(message.site) + 1
                    if site_limit and code >= site_limit:
                        writer._acc, writer._nacc = acc, nacc
                        raise ProtocolError(
                            f"value {code} does not fit in {site_bits} bits")
                    value = message.value
                    # Tag bit 0 and the site id land in one shift-or.
                    acc = (acc << (1 + site_bits)) | code
                    nacc += 1 + site_bits
                    if adaptive:
                        shifted = value + 1
                        width = (gamma_width[value] if 0 <= value < 1024
                                 else 2 * shifted.bit_length() - 1)
                        acc = (acc << width) | shifted
                        nacc += width
                    else:
                        if value < 0 or (value_limit
                                         and value >= value_limit):
                            writer._acc, writer._nacc = acc, nacc
                            raise ProtocolError(
                                f"value {value} does not fit in "
                                f"{value_bits} bits")
                        acc = ((acc << value_bits)
                               | (value & ((1 << value_bits) - 1)))
                        nacc += value_bits
                    if srv:
                        acc = ((acc << 2) | (2 if message.conflict else 0)
                               | (1 if message.segment else 0))
                        nacc += 2
                    elif element_cls is ElementCMsg:
                        acc = (acc << 1) | (1 if message.conflict else 0)
                        nacc += 1
                elif type(message) is Halt:
                    if srv:
                        acc = (acc << 1) | 1
                        nacc += 1
                    else:
                        acc = (acc << 2) | 0b10
                        nacc += 2
                else:
                    # Subclasses and wrong types take the generic path so
                    # the historical isinstance semantics and errors
                    # survive.
                    writer._acc, writer._nacc = acc, nacc
                    self._encode_forward_element(writer, message, channel)
                    acc, nacc = writer._acc, writer._nacc
                    continue
                if nacc >= _FLUSH_BITS:
                    writer._acc, writer._nacc = acc, nacc
                    writer._spill()
                    acc, nacc = writer._acc, writer._nacc
        writer._acc, writer._nacc = acc, nacc

    # -- decoding --------------------------------------------------------------------

    def decode(self, data: bytes, bit_length: int, channel: str) -> Message:
        """Reconstruct the message serialized by :meth:`encode`."""
        reader = self._reader_cls(data, bit_length)
        if channel == "compare":
            # COMPARE is the one channel whose messages are delimited by
            # the message boundary itself, not self-describing bits.
            if bit_length == 1:
                return VerdictBit(bool(reader.read(1)))
            site = self._read_site(reader)
            return CompareLeast(site, self._read_value(reader))
        return self._decode_one(reader, channel)

    def _decode_one(self, reader: Any, channel: str) -> Message:
        """Read one self-delimiting message off ``reader``."""
        if channel in ("brv_fwd", "crv_fwd", "srv_fwd"):
            if reader.read(1) == 1:
                if channel != "srv_fwd":
                    reader.read(1)
                    return Halt(2)
                return Halt(1)
            site = self._read_site(reader)
            assert site is not None
            value = self._read_value(reader)
            if channel == "brv_fwd":
                return ElementMsg(site, value)
            if channel == "crv_fwd":
                return ElementCMsg(site, value, bool(reader.read(1)))
            return ElementSMsg(site, value, bool(reader.read(1)),
                               bool(reader.read(1)))
        if channel in ("brv_bwd", "crv_bwd"):
            reader.read(2)
            return Halt(2)
        if channel == "srv_bwd":
            if reader.read(1) == 1:
                return Halt(1)
            return Skip(reader.read(self.encoding.site_bits))
        if channel == "graph_fwd":
            if reader.read(1) == 1:
                return Halt(1)
            node = self._read_node(reader)
            assert node is not None
            return GraphNodeMsg(node, self._read_node(reader),
                                self._read_node(reader))
        if channel == "graph_bwd":
            if reader.read(1) == 1:
                return AbortMsg()
            node = self._read_node(reader)
            assert node is not None
            return SkipToMsg(node)
        if channel == "full_vector":
            count = reader.read(self.encoding.site_bits)
            pairs = []
            for _ in range(count):
                site = self._read_site(reader)
                assert site is not None
                pairs.append((site, self._read_value(reader)))
            return FullVectorMsg(tuple(pairs))
        if channel == "full_graph":
            count = reader.read(self.encoding.node_id_bits)
            rows = []
            for _ in range(count):
                node = self._read_node(reader)
                assert node is not None
                rows.append((node, self._read_node(reader),
                             self._read_node(reader)))
            return FullGraphMsg(tuple(rows))
        if channel == "compare":
            raise ProtocolError(
                "compare messages are not self-delimiting; "
                "decode them individually")
        raise ProtocolError(f"unknown channel {channel!r}")

    def _decode_element_stream(self, reader: "BitReader", channel: str,
                               frame: bool = False) -> List[Any]:
        """Read forward-element messages straight off the reader's buffer.

        Specialized counterpart of :meth:`_encode_element_stream`:
        decodes everything up to the declared bit length with hoisted
        locals and inline shift/mask field extraction.  Equivalent to
        looping :meth:`_decode_one`, including every underrun error.

        With ``frame=True`` the stream is a :class:`BatchFrame` body —
        γ(index) γ(count) headers followed by ``count`` messages, back
        to back — and the return value is the entry list
        ``[(index, (messages...)), ...]`` instead of a flat message
        list.  Decoding the whole frame in one call keeps the per-entry
        cost at the per-message level instead of paying the hoisting
        prologue once per entry.
        """
        data = reader._data
        bit_length = reader._bit_length
        position = reader._position
        byte_pos = reader._byte_pos
        acc = reader._acc
        nacc = reader._nacc
        encoding = self.encoding
        site_bits = encoding.site_bits
        adaptive = self._adaptive
        value_bits = 0 if adaptive else encoding.value_bits
        name_of = self.registry.name_of
        srv = channel == "srv_fwd"
        crv = channel == "crv_fwd"
        #: Bits a non-γ message prefix needs (tag + site + fixed value +
        #: flags); one refill check per message covers every fixed field.
        fixed_need = 1 + site_bits + value_bits + (2 if srv else
                                                   1 if crv else 0)
        out: List[Message] = []
        append = out.append
        entries: List[Tuple[int, Tuple[Message, ...]]] = []
        group_index = -1
        remaining_msgs: Optional[int] = 0 if frame else None
        # Frozen-dataclass __init__ (one object.__setattr__ per field) is
        # the single biggest per-message decode cost; the messages are
        # plain non-slots dataclasses, so filling the instance dict
        # directly halves it.  The oracle equivalence tests compare these
        # against normally constructed messages, which keeps this honest.
        if srv:
            msg_cls: type = ElementSMsg
        elif crv:
            msg_cls = ElementCMsg
        else:
            msg_cls = ElementMsg
        msg_new = msg_cls.__new__

        def refill(need: int) -> None:
            """Top up the local accumulator to ``need`` bits."""
            nonlocal acc, nacc, byte_pos
            while nacc < need:
                chunk = data[byte_pos:byte_pos + 8]
                if not chunk:
                    raise ProtocolError("bitstream underrun")
                bits = len(chunk) * 8
                acc = (acc << bits) | int.from_bytes(chunk, "big")
                nacc += bits
                byte_pos += len(chunk)

        while True:
            if frame:
                if remaining_msgs:
                    remaining_msgs -= 1
                else:
                    # Between groups: flush the finished one, stop at the
                    # end of the stream, or read the next γ(index)
                    # γ(count) header pair inline.
                    if group_index >= 0:
                        entries.append((group_index, tuple(out)))
                        out = []
                        append = out.append
                    if position >= bit_length:
                        break
                    for header_slot in (0, 1):
                        zeros = 0
                        while acc == 0:
                            zeros += nacc
                            chunk = data[byte_pos:byte_pos + 8]
                            if not chunk:
                                raise ProtocolError("bitstream underrun")
                            acc = int.from_bytes(chunk, "big")
                            nacc = len(chunk) * 8
                            byte_pos += len(chunk)
                        zeros += nacc - acc.bit_length()
                        end = position + 2 * zeros + 1
                        if end > bit_length:
                            raise ProtocolError("bitstream underrun")
                        nacc = acc.bit_length()
                        need = zeros + 1
                        if nacc < need:
                            refill(need)
                        nacc -= need
                        header = (acc >> nacc) - 1
                        acc &= (1 << nacc) - 1
                        position = end
                        if header_slot == 0:
                            group_index = header
                        else:
                            remaining_msgs = header
                    continue
            elif position >= bit_length:
                break
            if position >= bit_length:
                raise ProtocolError("bitstream underrun")
            if nacc < fixed_need:
                # Best-effort: near the stream tail fewer bits may exist
                # than a full element needs (HALT is 1–2 bits).
                try:
                    refill(fixed_need)
                except ProtocolError:
                    refill(1)
            nacc -= 1
            if acc >> nacc:  # tag bit 1: HALT
                acc &= (1 << nacc) - 1
                if srv:
                    append(Halt(1))
                else:
                    if position + 2 > bit_length:
                        raise ProtocolError("bitstream underrun")
                    if nacc < 1:
                        refill(1)
                    nacc -= 1
                    acc &= (1 << nacc) - 1
                    position += 2
                    append(Halt(2))
                    continue
                position += 1
                continue
            if position + 1 + site_bits > bit_length:
                raise ProtocolError("bitstream underrun")
            if nacc < site_bits:
                refill(site_bits)
            nacc -= site_bits
            code = acc >> nacc
            acc &= (1 << nacc) - 1
            position += 1 + site_bits
            site = None if code == 0 else name_of(code - 1)
            assert site is not None
            if adaptive:
                zeros = 0
                while acc == 0:
                    zeros += nacc
                    chunk = data[byte_pos:byte_pos + 8]
                    if not chunk:
                        raise ProtocolError("bitstream underrun")
                    acc = int.from_bytes(chunk, "big")
                    nacc = len(chunk) * 8
                    byte_pos += len(chunk)
                zeros += nacc - acc.bit_length()
                end = position + 2 * zeros + 1
                if end > bit_length:
                    raise ProtocolError("bitstream underrun")
                nacc = acc.bit_length()
                need = zeros + 1
                if nacc < need:
                    refill(need)
                nacc -= need
                value = (acc >> nacc) - 1
                acc &= (1 << nacc) - 1
                position = end
            else:
                if position + value_bits > bit_length:
                    raise ProtocolError("bitstream underrun")
                if nacc < value_bits:
                    refill(value_bits)
                nacc -= value_bits
                value = acc >> nacc
                acc &= (1 << nacc) - 1
                position += value_bits
            if srv:
                if position + 2 > bit_length:
                    raise ProtocolError("bitstream underrun")
                if nacc < 2:
                    refill(2)
                nacc -= 2
                two = acc >> nacc
                acc &= (1 << nacc) - 1
                position += 2
                message = msg_new(msg_cls)
                fields = message.__dict__
                fields["site"] = site
                fields["value"] = value
                fields["conflict"] = two >= 2
                fields["segment"] = (two & 1) == 1
                append(message)
            elif crv:
                if position >= bit_length:
                    raise ProtocolError("bitstream underrun")
                if nacc < 1:
                    refill(1)
                nacc -= 1
                bit = acc >> nacc
                acc &= (1 << nacc) - 1
                position += 1
                message = msg_new(msg_cls)
                fields = message.__dict__
                fields["site"] = site
                fields["value"] = value
                fields["conflict"] = bit == 1
                append(message)
            else:
                message = msg_new(msg_cls)
                fields = message.__dict__
                fields["site"] = site
                fields["value"] = value
                append(message)
        reader._position = position
        reader._byte_pos = byte_pos
        reader._acc = acc
        reader._nacc = nacc
        return entries if frame else out

    def roundtrip(self, message: Message, channel: str) -> Tuple[Message, int]:
        """Encode then decode; returns (reconstructed message, bit length)."""
        data, bit_length = self.encode(message, channel)
        return self.decode(data, bit_length, channel), bit_length

    def roundtrip_batch(self, frame: BatchFrame,
                        channel: str) -> Tuple[BatchFrame, int]:
        """Encode then decode a whole frame; (reconstructed, bit length)."""
        data, bit_length = self.encode_batch(frame, channel)
        return self.decode_batch(data, bit_length, channel), bit_length


def _serializing(gen: ProtocolCoroutine, codec: Codec,
                 channel: str) -> Generator[Any, Any, Any]:
    """Route every outgoing message of ``gen`` through encode→decode.

    Also asserts the serialized bit length equals the message's priced
    ``bits()`` — the property that keeps every benchmark honest.
    :class:`~repro.protocols.batch.BatchFrame` messages (framed batched
    sessions) serialize through the one-pass batch codec, under the same
    pricing assertion.
    """
    try:
        effect = next(gen)
        while True:
            if isinstance(effect, Send):
                message = effect.message
                if isinstance(message, BatchFrame):
                    decoded, bit_length = codec.roundtrip_batch(
                        message, channel)
                else:
                    decoded, bit_length = codec.roundtrip(message, channel)
                priced = message.bits(codec.encoding)
                if bit_length != priced:
                    raise ProtocolError(
                        f"pricing mismatch on {channel}: serialized "
                        f"{bit_length} bits, priced {priced} for "
                        f"{message!r}")
                effect = Send(decoded)
            value = yield effect
            effect = gen.send(value)
    except StopIteration as stop:
        return stop.value


def run_session_serialized(sender: ProtocolCoroutine,
                           receiver: ProtocolCoroutine, *,
                           codec: Codec, forward_channel: str,
                           backward_channel: str) -> SessionResult:
    """Run a session with every message physically serialized both ways."""
    return run_session(
        _serializing(sender, codec, forward_channel),
        _serializing(receiver, codec, backward_channel),
        encoding=codec.encoding)
