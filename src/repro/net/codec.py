"""Bit-exact serialization of protocol messages.

Everywhere else in the library, messages are Python objects *priced* in
bits; this module makes the pricing honest by actually encoding every
message into Table 2's layouts and decoding it back.  The serialized
session driver (:func:`run_session_serialized`) routes every transmission
through encode→bits→decode and asserts the measured bit length equals the
priced one, so the communication numbers reported by the benchmarks are
realizable wire formats, not estimates.

Layouts (first bit = frame tag; widths from the session's
:class:`~repro.net.wire.Encoding`):

====================== =============================================
BRV forward            ``0 site value`` · HALT ``1 0``
CRV forward            ``0 site value c`` · HALT ``1 0``
SRV forward            ``0 site value c s`` · HALT ``1``
SRV backward           ``0 segs`` (SKIP) · HALT ``1``
graph forward          ``0 node lp rp`` · HALT ``1``
graph backward         ``0 node`` (skip-to) · ABORT ``1``
COMPARE                ``site value`` then ``bit`` (verdict)
full vector            ``count (site value)×count``
full graph             ``count (node lp rp)×count``
====================== =============================================

Sites ride as registry ids; graph node ids must be integers (real systems
use integer or hash identifiers — the tuple ids of the simulation layer
are a convenience above this layer).  Value fields honor the encoding's
:meth:`~repro.net.wire.Encoding.value_field_bits` hook, so the adaptive
Elias-γ extension serializes too.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.extensions.varint import AdaptiveEncoding
from repro.net.wire import Encoding
from repro.protocols.effects import Send
from repro.protocols.messages import (AbortMsg, CompareLeast, ElementCMsg,
                                      ElementMsg, ElementSMsg, FullGraphMsg,
                                      FullVectorMsg, GraphNodeMsg, Halt,
                                      Message, Skip, SkipToMsg, VerdictBit)
from repro.protocols.session import (ProtocolCoroutine, SessionResult,
                                     run_session)
from repro.replication.membership import SiteRegistry


class BitWriter:
    """Append-only big-endian bit buffer."""

    def __init__(self) -> None:
        self._bits: List[int] = []

    def write(self, value: int, width: int) -> None:
        """Append ``value`` as a fixed ``width``-bit big-endian field."""
        if value < 0 or (width < 64 and value >= (1 << width)):
            raise ProtocolError(f"value {value} does not fit in {width} bits")
        for position in range(width - 1, -1, -1):
            self._bits.append((value >> position) & 1)

    def write_gamma(self, value: int) -> None:
        """Append Elias-γ(value + 1): self-delimiting, 1 bit for zero."""
        shifted = value + 1
        length = shifted.bit_length() - 1
        for _ in range(length):
            self._bits.append(0)
        self.write(shifted, length + 1)

    @property
    def bit_length(self) -> int:
        """Bits written so far."""
        return len(self._bits)

    def getvalue(self) -> bytes:
        """The buffer as bytes, zero-padded to a byte boundary."""
        padded = self._bits + [0] * (-len(self._bits) % 8)
        out = bytearray()
        for index in range(0, len(padded), 8):
            byte = 0
            for bit in padded[index:index + 8]:
                byte = (byte << 1) | bit
            out.append(byte)
        return bytes(out)


class BitReader:
    """Sequential reader over a :class:`BitWriter`'s output."""

    def __init__(self, data: bytes, bit_length: int) -> None:
        self._data = data
        self._bit_length = bit_length
        self._position = 0

    def read(self, width: int) -> int:
        """Read a fixed ``width``-bit big-endian field."""
        if self._position + width > self._bit_length:
            raise ProtocolError("bitstream underrun")
        value = 0
        for _ in range(width):
            byte = self._data[self._position // 8]
            bit = (byte >> (7 - self._position % 8)) & 1
            value = (value << 1) | bit
            self._position += 1
        return value

    def read_gamma(self) -> int:
        """Read an Elias-γ field written by :meth:`BitWriter.write_gamma`."""
        length = 0
        while self.read(1) == 0:
            length += 1
        value = 1
        for _ in range(length):
            value = (value << 1) | self.read(1)
        return value - 1

    @property
    def remaining(self) -> int:
        """Unread bits."""
        return self._bit_length - self._position


#: Channel identifiers: (protocol kind, direction).
CHANNELS = ("brv_fwd", "brv_bwd", "crv_fwd", "crv_bwd", "srv_fwd",
            "srv_bwd", "graph_fwd", "graph_bwd", "compare",
            "full_vector", "full_graph")

#: Reserved graph-id code for "no parent" (ids are shifted by one).
_NIL = 0


class NodeInterner:
    """Bijective mapping between arbitrary graph node ids and wire ints.

    Operation identifiers in the simulation layer are ``(site, seq)``
    tuples; on a real wire they would be integers or content hashes that
    both parties compute identically.  The interner stands in for that:
    one instance is shared by both endpoints of a session (like the site
    registry), assigning dense integer codes on first sight.
    """

    def __init__(self) -> None:
        self._codes: dict = {}
        self._nodes: list = []

    def encode(self, node: Any) -> int:
        """The wire integer for ``node``, assigned on first use."""
        code = self._codes.get(node)
        if code is None:
            code = len(self._nodes)
            self._codes[node] = code
            self._nodes.append(node)
        return code

    def decode(self, code: int) -> Any:
        """The node id behind a wire integer."""
        try:
            return self._nodes[code]
        except IndexError:
            raise ProtocolError(f"unknown node code {code}") from None

    def __len__(self) -> int:
        return len(self._nodes)


class _IdentityInterner:
    """Default interner: node ids are already integers."""

    def encode(self, node: Any) -> int:
        """Pass an int through, rejecting anything else."""
        if not isinstance(node, int) or node < 0:
            raise ProtocolError(
                f"graph node id {node!r} is not a non-negative int; "
                f"pass a NodeInterner to the codec")
        return node

    def decode(self, code: int) -> Any:
        """Pass the wire int through unchanged."""
        return code


class Codec:
    """Encode/decode every protocol message under one system's encoding.

    Args:
        encoding: field widths (and value-field pricing policy).
        registry: site-name ↔ id mapping shared by both parties (the
            membership manager's responsibility in a deployment).  Site id
            0 is reserved to announce an empty vector in COMPARE, so the
            wire id of site *k* is *k + 1* — which is why
            :func:`~repro.net.wire.bits_for` sizes fields for ``count + 1``.
    """

    def __init__(self, encoding: Encoding, registry: SiteRegistry,
                 interner: Any = None) -> None:
        self.encoding = encoding
        self.registry = registry
        self.interner = interner if interner is not None else _IdentityInterner()
        self._adaptive = isinstance(encoding, AdaptiveEncoding)

    # -- field helpers -----------------------------------------------------------

    def _write_site(self, writer: BitWriter, site: Optional[str]) -> None:
        code = 0 if site is None else self.registry.id_of(site) + 1
        writer.write(code, self.encoding.site_bits)

    def _read_site(self, reader: BitReader) -> Optional[str]:
        code = reader.read(self.encoding.site_bits)
        return None if code == 0 else self.registry.name_of(code - 1)

    def _write_value(self, writer: BitWriter, value: int) -> None:
        if self._adaptive:
            writer.write_gamma(value)
        else:
            writer.write(value, self.encoding.value_bits)

    def _read_value(self, reader: BitReader) -> int:
        if self._adaptive:
            return reader.read_gamma()
        return reader.read(self.encoding.value_bits)

    def _write_node(self, writer: BitWriter, node: Optional[Any]) -> None:
        code = _NIL if node is None else self.interner.encode(node) + 1
        writer.write(code, self.encoding.node_id_bits)

    def _read_node(self, reader: BitReader) -> Optional[Any]:
        code = reader.read(self.encoding.node_id_bits)
        return None if code == _NIL else self.interner.decode(code - 1)

    # -- encoding -------------------------------------------------------------------

    def encode(self, message: Message, channel: str) -> Tuple[bytes, int]:
        """Serialize ``message`` for ``channel``; returns (bytes, bit length)."""
        writer = BitWriter()
        if channel in ("brv_fwd", "crv_fwd", "srv_fwd"):
            self._encode_forward_element(writer, message, channel)
        elif channel in ("brv_bwd", "crv_bwd"):
            if not isinstance(message, Halt):
                raise ProtocolError(f"{channel} carries HALT only")
            writer.write(0b10, 2)
        elif channel == "srv_bwd":
            if isinstance(message, Halt):
                writer.write(1, 1)
            elif isinstance(message, Skip):
                writer.write(0, 1)
                writer.write(message.segs, self.encoding.site_bits)
            else:
                raise ProtocolError(f"srv_bwd cannot carry {message!r}")
        elif channel == "graph_fwd":
            if isinstance(message, Halt):
                writer.write(1, 1)
            elif isinstance(message, GraphNodeMsg):
                writer.write(0, 1)
                self._write_node(writer, message.node)
                self._write_node(writer, message.left_parent)
                self._write_node(writer, message.right_parent)
            else:
                raise ProtocolError(f"graph_fwd cannot carry {message!r}")
        elif channel == "graph_bwd":
            if isinstance(message, AbortMsg):
                writer.write(1, 1)
            elif isinstance(message, SkipToMsg):
                writer.write(0, 1)
                self._write_node(writer, message.node)
            else:
                raise ProtocolError(f"graph_bwd cannot carry {message!r}")
        elif channel == "compare":
            if isinstance(message, CompareLeast):
                self._write_site(writer, message.site)
                self._write_value(writer, message.value)
            elif isinstance(message, VerdictBit):
                writer.write(1 if message.dominated else 0, 1)
            else:
                raise ProtocolError(f"compare cannot carry {message!r}")
        elif channel == "full_vector":
            if not isinstance(message, FullVectorMsg):
                raise ProtocolError(f"full_vector cannot carry {message!r}")
            writer.write(len(message.pairs), self.encoding.site_bits)
            for site, value in message.pairs:
                self._write_site(writer, site)
                self._write_value(writer, value)
        elif channel == "full_graph":
            if not isinstance(message, FullGraphMsg):
                raise ProtocolError(f"full_graph cannot carry {message!r}")
            writer.write(len(message.nodes), self.encoding.node_id_bits)
            for node, left, right in message.nodes:
                self._write_node(writer, node)
                self._write_node(writer, left)
                self._write_node(writer, right)
        else:
            raise ProtocolError(f"unknown channel {channel!r}")
        return writer.getvalue(), writer.bit_length

    def _encode_forward_element(self, writer: BitWriter, message: Message,
                                channel: str) -> None:
        if isinstance(message, Halt):
            if channel == "srv_fwd":
                writer.write(1, 1)
            else:
                writer.write(0b10, 2)
            return
        writer.write(0, 1)
        if channel == "brv_fwd":
            assert isinstance(message, ElementMsg)
            self._write_site(writer, message.site)
            self._write_value(writer, message.value)
        elif channel == "crv_fwd":
            assert isinstance(message, ElementCMsg)
            self._write_site(writer, message.site)
            self._write_value(writer, message.value)
            writer.write(1 if message.conflict else 0, 1)
        else:
            assert isinstance(message, ElementSMsg)
            self._write_site(writer, message.site)
            self._write_value(writer, message.value)
            writer.write(1 if message.conflict else 0, 1)
            writer.write(1 if message.segment else 0, 1)

    # -- decoding --------------------------------------------------------------------

    def decode(self, data: bytes, bit_length: int, channel: str) -> Message:
        """Reconstruct the message serialized by :meth:`encode`."""
        reader = BitReader(data, bit_length)
        if channel in ("brv_fwd", "crv_fwd", "srv_fwd"):
            if reader.read(1) == 1:
                if channel != "srv_fwd":
                    reader.read(1)
                    return Halt(2)
                return Halt(1)
            site = self._read_site(reader)
            assert site is not None
            value = self._read_value(reader)
            if channel == "brv_fwd":
                return ElementMsg(site, value)
            if channel == "crv_fwd":
                return ElementCMsg(site, value, bool(reader.read(1)))
            return ElementSMsg(site, value, bool(reader.read(1)),
                               bool(reader.read(1)))
        if channel in ("brv_bwd", "crv_bwd"):
            reader.read(2)
            return Halt(2)
        if channel == "srv_bwd":
            if reader.read(1) == 1:
                return Halt(1)
            return Skip(reader.read(self.encoding.site_bits))
        if channel == "graph_fwd":
            if reader.read(1) == 1:
                return Halt(1)
            node = self._read_node(reader)
            assert node is not None
            return GraphNodeMsg(node, self._read_node(reader),
                                self._read_node(reader))
        if channel == "graph_bwd":
            if reader.read(1) == 1:
                return AbortMsg()
            node = self._read_node(reader)
            assert node is not None
            return SkipToMsg(node)
        if channel == "compare":
            if bit_length == 1:
                return VerdictBit(bool(reader.read(1)))
            site = self._read_site(reader)
            return CompareLeast(site, self._read_value(reader))
        if channel == "full_vector":
            count = reader.read(self.encoding.site_bits)
            pairs = []
            for _ in range(count):
                site = self._read_site(reader)
                assert site is not None
                pairs.append((site, self._read_value(reader)))
            return FullVectorMsg(tuple(pairs))
        if channel == "full_graph":
            count = reader.read(self.encoding.node_id_bits)
            rows = []
            for _ in range(count):
                node = self._read_node(reader)
                assert node is not None
                rows.append((node, self._read_node(reader),
                             self._read_node(reader)))
            return FullGraphMsg(tuple(rows))
        raise ProtocolError(f"unknown channel {channel!r}")

    def roundtrip(self, message: Message, channel: str) -> Tuple[Message, int]:
        """Encode then decode; returns (reconstructed message, bit length)."""
        data, bit_length = self.encode(message, channel)
        return self.decode(data, bit_length, channel), bit_length


def _serializing(gen: ProtocolCoroutine, codec: Codec,
                 channel: str) -> Generator[Any, Any, Any]:
    """Route every outgoing message of ``gen`` through encode→decode.

    Also asserts the serialized bit length equals the message's priced
    ``bits()`` — the property that keeps every benchmark honest.
    """
    try:
        effect = next(gen)
        while True:
            if isinstance(effect, Send):
                decoded, bit_length = codec.roundtrip(effect.message, channel)
                priced = effect.message.bits(codec.encoding)
                if bit_length != priced:
                    raise ProtocolError(
                        f"pricing mismatch on {channel}: serialized "
                        f"{bit_length} bits, priced {priced} for "
                        f"{effect.message!r}")
                effect = Send(decoded)
            value = yield effect
            effect = gen.send(value)
    except StopIteration as stop:
        return stop.value


def run_session_serialized(sender: ProtocolCoroutine,
                           receiver: ProtocolCoroutine, *,
                           codec: Codec, forward_channel: str,
                           backward_channel: str) -> SessionResult:
    """Run a session with every message physically serialized both ways."""
    return run_session(
        _serializing(sender, codec, forward_channel),
        _serializing(receiver, codec, backward_channel),
        encoding=codec.encoding)
