"""Consistent-hash sharding: objects onto site groups.

A 1000-site fleet hosting 10k objects cannot afford the historical
layout where every site replicates every object — state, update
traffic, and anti-entropy cost all scale as sites × objects.  This
module maps each object onto a small *shard* (replica group) of sites
via a consistent-hash ring:

* :class:`HashRing` — SHA-256 positions, ``vnodes`` virtual nodes per
  site for load smoothing, replica groups read clockwise (next ``r``
  *distinct* sites).  Rings are immutable; :meth:`HashRing.with_site` /
  :meth:`HashRing.without_site` return new rings, and the consistent-
  hashing contract — a single join/leave moves only the keys adjacent
  to the changed site's points — is a tested property, not a hope.
* :class:`ShardMap` — the materialized object→group assignment for one
  fleet: per-site hosted-object lists, per-site shard-peer sets (who
  shares at least one object with me), and the shared-object
  intersection any session between two sites should synchronize.

Determinism: positions depend only on site names, ``vnodes``, and the
ring ``salt`` — no RNG anywhere — so every process of a paired bench
run rebuilds the identical assignment.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.net.topology import TopologySpec


def _position(salt: str, label: str) -> int:
    """The ring position of one label: the first 8 bytes of SHA-256."""
    digest = hashlib.sha256(f"{salt}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """An immutable consistent-hash ring over named sites.

    Each site contributes ``vnodes`` points at
    ``sha256(f"{salt}:{site}#{v}")``; a key hashes to a position and its
    replica group is the next ``replication`` *distinct* sites read
    clockwise from there.  Point collisions (astronomically unlikely at
    64-bit positions) tie-break on site name so the ring is a pure
    function of its inputs.
    """

    def __init__(self, sites: Sequence[str], *, replication: int = 3,
                 vnodes: int = 64, salt: str = "ring") -> None:
        names = list(sites)
        if len(set(names)) != len(names):
            raise ValidationError("ring sites must be unique")
        if not names:
            raise ValidationError("a ring needs >= 1 site")
        if not 1 <= replication <= len(names):
            raise ValidationError(
                f"replication must be in [1, {len(names)}], "
                f"got {replication}")
        if vnodes < 1:
            raise ValidationError(f"vnodes must be >= 1, got {vnodes}")
        self.sites: Tuple[str, ...] = tuple(names)
        self.replication = replication
        self.vnodes = vnodes
        self.salt = salt
        points = [(_position(salt, f"{site}#{vnode}"), site)
                  for site in names for vnode in range(vnodes)]
        points.sort()
        self._positions: List[int] = [position for position, _ in points]
        self._owners: List[str] = [site for _, site in points]

    def replicas_for(self, key: str) -> Tuple[str, ...]:
        """The key's replica group: next ``replication`` distinct sites."""
        start = bisect.bisect_right(self._positions, _position(self.salt,
                                                               key))
        group: List[str] = []
        seen = set()
        n_points = len(self._owners)
        for step in range(n_points):
            site = self._owners[(start + step) % n_points]
            if site not in seen:
                seen.add(site)
                group.append(site)
                if len(group) == self.replication:
                    break
        return tuple(group)

    def primary_for(self, key: str) -> str:
        """The first replica — the shard's deterministic leader."""
        return self.replicas_for(key)[0]

    def with_site(self, site: str) -> "HashRing":
        """A new ring with ``site`` joined."""
        if site in self.sites:
            raise ValidationError(f"site {site!r} already on the ring")
        return HashRing(self.sites + (site,), replication=self.replication,
                        vnodes=self.vnodes, salt=self.salt)

    def without_site(self, site: str) -> "HashRing":
        """A new ring with ``site`` departed."""
        if site not in self.sites:
            raise ValidationError(f"site {site!r} not on the ring")
        return HashRing([s for s in self.sites if s != site],
                        replication=self.replication, vnodes=self.vnodes,
                        salt=self.salt)

    def load(self, keys: Iterable[str]) -> Dict[str, int]:
        """Assignments per site (counting every replica) over ``keys``."""
        counts = {site: 0 for site in self.sites}
        for key in keys:
            for site in self.replicas_for(key):
                counts[site] += 1
        return counts


def object_key(obj: int) -> str:
    """The ring key of object ``obj`` — one canonical spelling."""
    return f"obj:{obj}"


class ShardMap:
    """The materialized object→replica-group assignment for one fleet.

    Attributes:
        n_objects: how many objects the fleet shards.
        replicas: per object id, its replica group in ring order (the
            first member is the shard's leader).
        hosted: per site, the sorted tuple of object ids it hosts.
    """

    def __init__(self, replicas: Sequence[Tuple[str, ...]]) -> None:
        if not replicas:
            raise ValidationError("a ShardMap needs >= 1 object")
        self.replicas: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(group) for group in replicas)
        self.n_objects = len(self.replicas)
        hosted: Dict[str, List[int]] = {}
        for obj, group in enumerate(self.replicas):
            if not group:
                raise ValidationError(f"object {obj} has an empty group")
            if len(set(group)) != len(group):
                raise ValidationError(
                    f"object {obj} repeats a replica: {group}")
            for site in group:
                hosted.setdefault(site, []).append(obj)
        self.hosted: Dict[str, Tuple[int, ...]] = {
            site: tuple(objs) for site, objs in hosted.items()}
        self._hosted_sets: Dict[str, FrozenSet[int]] = {
            site: frozenset(objs) for site, objs in self.hosted.items()}
        peers: Dict[str, set] = {site: set() for site in self.hosted}
        for group in set(self.replicas):
            for site in group:
                peers[site].update(other for other in group
                                   if other != site)
        self.shard_peers: Dict[str, Tuple[str, ...]] = {
            site: tuple(sorted(names)) for site, names in peers.items()}

    @property
    def sites(self) -> Tuple[str, ...]:
        """Every site hosting at least one object, sorted."""
        return tuple(sorted(self.hosted))

    def hosts(self, site: str, obj: int) -> bool:
        """Whether ``site`` is a replica of object ``obj``."""
        return obj in self._hosted_sets.get(site, frozenset())

    def shared_objects(self, a: str, b: str) -> Tuple[int, ...]:
        """Object ids both sites replicate — what a session syncs."""
        shared = self._hosted_sets.get(a, frozenset()) \
            & self._hosted_sets.get(b, frozenset())
        return tuple(sorted(shared))

    def groups(self) -> List[Tuple[str, ...]]:
        """The distinct replica groups, in first-object order."""
        seen = set()
        ordered: List[Tuple[str, ...]] = []
        for group in self.replicas:
            if group not in seen:
                seen.add(group)
                ordered.append(group)
        return ordered

    def load_summary(self) -> Dict[str, float]:
        """Balance statistics over hosted-object counts per site."""
        counts = [len(objs) for objs in self.hosted.values()]
        return {"max": float(max(counts)), "min": float(min(counts)),
                "mean": sum(counts) / len(counts)}


def build_shard_map(spec: TopologySpec, n_objects: int, *,
                    replication: Optional[int] = None,
                    sites: Optional[Sequence[str]] = None) -> ShardMap:
    """The fleet's shard map: ring the spec's sites, assign every object.

    ``replication`` defaults to the spec's own; the ring is salted with
    the spec's seed so two specs differing only in seed shard
    differently (and two identical specs shard identically — the
    determinism the paired bench runs rely on).
    """
    factor = replication if replication is not None else spec.replication
    if factor is None:
        raise ValidationError(
            "sharding needs a replication factor (set TopologySpec."
            "replication or pass replication=)")
    if n_objects < 1:
        raise ValidationError(f"n_objects must be >= 1, got {n_objects}")
    ring = HashRing(sites if sites is not None else spec.site_names(),
                    replication=factor, vnodes=spec.vnodes,
                    salt=f"ring:{spec.seed}")
    return ShardMap([ring.replicas_for(object_key(obj))
                     for obj in range(n_objects)])
