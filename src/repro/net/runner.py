"""Timed protocol execution on the discrete-event simulator.

Runs the *same* protocol coroutines the instant driver runs, but interprets
their effects against a :class:`~repro.net.channel.ChannelSpec`:

* ``Send`` occupies the sender for the message's serialization delay and
  schedules delivery one propagation latency later (FIFO per direction);
* ``Recv`` parks the party until a delivery fires;
* ``Poll``/``Drain`` report instantly what has arrived by the party's
  current clock — which is precisely what makes pipelining overshoot real:
  a control message emitted by the peer only becomes visible one latency
  later, and everything the sender serialized in between is the paper's
  β = bandwidth·rtt excess.

Unified entry point
-------------------

All session launching goes through one door::

    handle = launch(sim, SessionOptions(pairs=((sender, receiver),), ...))
    sim.run()
    handle.result          # TimedSessionResult once both parties finished

:class:`SessionOptions` is a keyword-only value object covering the single
-object, batched multi-object, and fault-tolerant regimes; :func:`launch`
spawns the session's processes on a shared simulator and returns a live
:class:`SessionHandle`.  :func:`run_timed` is the private-simulator
convenience (build a sim, launch, run to completion, return the result).
The historical entry points — ``launch_session``, ``launch_batch_session``,
``run_timed_session`` — survive as thin shims that forward to the unified
API and emit :class:`DeprecationWarning`.

Reliability
-----------

When the channel carries an enabled :class:`~repro.net.faults.FaultSpec`
(or ``SessionOptions.reliable`` forces it), the driver swaps its transport
for a stop-and-wait ARQ: every protocol message gets a per-direction
sequence number and must be acknowledged before the next one starts;
acknowledgments and data both pass through the seeded
:class:`~repro.net.faults.FaultInjector` (drop/duplicate/reorder/
partition), timeouts retransmit with exponential backoff and deterministic
jitter (:class:`~repro.net.faults.RetryPolicy`), the receiver's transport
de-duplicates by sequence number, and a message that exhausts its retry
budget aborts the session attempt.  An aborted session *resumes* — when
``SessionOptions.rebuild`` can produce fresh coroutines — by
re-handshaking from the receiver's last *committed* state.  Attempts are
transactional: the protocols stream Δ newest-first, so a torn attempt's
acked prefix is never ancestor-closed and can NOT be committed (a vector
claiming an element without its causal past halts every later sync
prematurely); the rebuild callback therefore restores the receiving
vectors to their pre-session snapshot before building the next attempt's
coroutines, and the aborted attempt's traffic is pure accounted waste.

Accounting: the first transmission of each distinct transport message is
*goodput*; every further copy is recorded via
:meth:`~repro.net.stats.DirectionStats.record_retransmit`, so
``total_retransmitted_bits == total_bits - total_goodput_bits`` holds
exactly and a fault-free run's goodput equals its wire bits.  With all
fault rates at zero the reliable transport is never engaged and every
code path, event order, and bit count is identical to the historical
driver.

With ``stop_and_wait=True`` (and no faults) every data message waits for
an implicit per-item acknowledgment (rtt + ack serialization) before the
next one starts — the baseline the paper's pipelining claim of a
``(k−1)·rtt`` saving is measured against.  The acknowledgment bits are
charged to the opposite direction so total-traffic comparisons stay
honest, and they are recorded at the ack's simulated *arrival* instant.
"""

from __future__ import annotations

import random
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import (Any, Callable, Deque, Dict, List, Optional, Sequence,
                    Tuple)

from repro.errors import SessionError, ValidationError
from repro.net.channel import ChannelSpec
from repro.net.faults import FaultInjector, RetryPolicy
from repro.net.simulator import Simulator
from repro.net.stats import DirectionStats, TransferStats
from repro.net.wire import DEFAULT_ENCODING, Encoding
from repro.obs import trace as obs
from repro.obs.trace import Tracer
from repro.protocols.batch import BatchFrame, batch_party
from repro.protocols.effects import Drain, Poll, Recv, Send
from repro.protocols.messages import Message
from repro.protocols.session import ProtocolCoroutine

#: One object's coroutine pair: ``(sender, receiver)``.
SessionPair = Tuple[ProtocolCoroutine, ProtocolCoroutine]
#: Factory producing fresh coroutine pairs for a (re)launch attempt.
PairFactory = Callable[[], Sequence[SessionPair]]


@dataclass
class TimedSessionResult:
    """Outcome of a timed protocol session.

    ``completion_time`` is when the *last* party finished, in simulated
    seconds; the per-party finish times expose the asymmetry (a pipelined
    sender typically outlives the receiver by roughly one rtt while its
    overshoot drains).  For sessions launched on a shared simulator the
    times are absolute simulator clock values; ``start_time`` records when
    the session's processes were spawned.
    """

    stats: TransferStats
    sender_result: Any
    receiver_result: Any
    completion_time: float
    sender_finish: float
    receiver_finish: float
    start_time: float = 0.0

    @property
    def duration(self) -> float:
        """Seconds from spawn to the last party's finish."""
        return self.completion_time - self.start_time


@dataclass(frozen=True, kw_only=True)
class SessionOptions:
    """Everything one session launch needs, in one keyword-only object.

    Attributes:
        pairs: one ``(sender, receiver)`` coroutine pair per object.  A
            single pair runs the historical single-object session; more
            pairs run the (possibly framed) multi-object machinery.
        rebuild: factory returning fresh pairs; required for session
            *resume* (coroutines are one-shot, so every attempt needs
            new ones).  When given, it supplies the first attempt's
            pairs too and ``pairs`` must be left empty.  Contract: the
            callback owns attempt isolation — a torn attempt leaves the
            receiving vectors causally incomplete (the stream is
            newest-first), so every resume call must restore them to
            the pre-session snapshot before building the next attempt's
            coroutines (see :class:`~repro.net.cluster.ClusterRunner`).
        batch_size: objects coalesced into one framed wire session
            (:mod:`repro.protocols.batch`); 1 runs each object through
            the plain per-object path, bit-for-bit the unbatched driver.
        channel: link model, including its fault spec.
        encoding: wire pricing for every message.
        stop_and_wait: per-item implicit-ack baseline instead of
            pipelining (ignored under the reliable transport, which is
            stop-and-wait by construction).
        proc_time: per-received-message processing cost at a ``Recv``.
        max_steps: protocol-effect budget guarding against livelock bugs.
        tracer: optional structured trace sink.
        party_names: labels for the two parties in trace events (e.g.
            site names when hosted by a cluster runner).
        on_complete: fires once with the full :class:`TimedSessionResult`
            when both parties of the final attempt have finished.
        retry: ARQ knobs for the reliable transport (timeouts, backoff,
            retry budget, resume budget).
        reliable: force the reliable transport on (``True``) or assert it
            off (``False``); ``None`` engages it exactly when the
            channel's fault spec is enabled.
        fault_seed: per-session override of the fault spec's seed, so
            many sessions on one channel draw independent-but-replayable
            fault schedules (the cluster runner passes the session
            index).
        session_id: cluster-level session identity stamped into every
            wire trace event as ``fields["session"]`` (the cluster
            runner passes its record index); ``None`` leaves standalone
            session events exactly as before.
        on_abandon: fires (with the :class:`~repro.errors.SessionError`
            describing the failure) when the session aborts
            *permanently* — retry budget exhausted and no resume
            possible — instead of raising out of the simulator.  The
            handle's ``result`` stays ``None``.  Hosts that own shared
            state (e.g. a replicated store's per-key tables) use this to
            roll the receiver back to its pre-session snapshot and keep
            the fleet running; leaving it ``None`` keeps the historical
            raise-through-the-simulator behavior.
    """

    pairs: Tuple[SessionPair, ...] = ()
    rebuild: Optional[PairFactory] = None
    batch_size: int = 1
    channel: ChannelSpec = field(default_factory=ChannelSpec)
    encoding: Encoding = DEFAULT_ENCODING
    stop_and_wait: bool = False
    proc_time: float = 0.0
    max_steps: int = 10_000_000
    tracer: Optional[Tracer] = None
    party_names: Tuple[str, str] = ("sender", "receiver")
    on_complete: Optional[Callable[[TimedSessionResult], None]] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    reliable: Optional[bool] = None
    fault_seed: Optional[int] = None
    session_id: Optional[int] = None
    on_abandon: Optional[Callable[[SessionError], None]] = None

    def __post_init__(self) -> None:
        if bool(self.pairs) == (self.rebuild is not None):
            raise ValidationError(
                "exactly one of pairs/rebuild must be provided: pairs for "
                "a one-shot session, rebuild for a resumable one")
        if self.batch_size < 1:
            raise ValidationError(
                f"batch_size must be >= 1, got {self.batch_size}")
        if self.proc_time < 0:
            raise ValidationError(
                f"proc_time must be >= 0, got {self.proc_time}")
        if self.max_steps < 1:
            raise ValidationError(
                f"max_steps must be >= 1, got {self.max_steps}")
        if len(self.party_names) != 2 \
                or self.party_names[0] == self.party_names[1]:
            raise ValidationError(
                f"party_names must be two distinct labels, "
                f"got {self.party_names!r}")
        if self.reliable is False and self.channel.faults.enabled:
            raise ValidationError(
                "a faulted channel requires the reliable transport; "
                "leave reliable=None or drop the fault spec")

    @classmethod
    def for_pair(cls, sender: ProtocolCoroutine,
                 receiver: ProtocolCoroutine, **kwargs: Any
                 ) -> "SessionOptions":
        """Options for one plain single-object session."""
        return cls(pairs=((sender, receiver),), **kwargs)

    @property
    def use_reliable(self) -> bool:
        """Whether this launch engages the ARQ transport."""
        if self.reliable is None:
            return self.channel.faults.enabled
        return self.reliable


@dataclass
class SessionHandle:
    """Live view of one launched session.

    ``stats`` fills in as the hosting simulator runs and aggregates every
    attempt (including aborted ones — their wire bits were spent);
    ``result`` is ``None`` until the final attempt completes.
    """

    options: SessionOptions
    stats: TransferStats = field(default_factory=TransferStats)
    result: Optional[TimedSessionResult] = None
    attempts: int = 0

    @property
    def completed(self) -> bool:
        return self.result is not None


class _Mailbox:
    """FIFO of delivered messages with a wakeup signal."""

    def __init__(self, sim: Simulator, name: str,
                 tracer: Optional[Tracer] = None,
                 session_id: Optional[int] = None) -> None:
        self._messages: Deque[Message] = deque()
        self.arrival = sim.signal(f"{name}-arrival")
        self._name = name
        self._tracer = tracer
        self._session_id = session_id

    def push(self, message: Message,
             sent_seq: Optional[int] = None) -> None:
        if self._tracer is not None:
            fields: Dict[str, Any] = {}
            if sent_seq is not None:
                # The trace seq of the MESSAGE event whose copy landed —
                # the send→deliver happens-before edge, by construction
                # acyclic (the send was emitted strictly earlier).
                fields["sent_seq"] = sent_seq
            if self._session_id is not None:
                fields["session"] = self._session_id
            self._tracer.event(obs.DELIVER, party=self._name,
                               message=message.type_name, **fields)
        self._messages.append(message)
        self.arrival.fire()

    def pop_now(self) -> Optional[Message]:
        return self._messages.popleft() if self._messages else None

    def __bool__(self) -> bool:
        return bool(self._messages)


# ---------------------------------------------------------------------------
# The historical (fault-free) wire session, byte-for-byte.
# ---------------------------------------------------------------------------


def _launch_wire(sim: Simulator, sender: ProtocolCoroutine,
                 receiver: ProtocolCoroutine, *, stats: TransferStats,
                 channel: ChannelSpec, encoding: Encoding,
                 stop_and_wait: bool, proc_time: float, max_steps: int,
                 tracer: Optional[Tracer],
                 party_names: Tuple[str, str],
                 on_complete: Callable[[TimedSessionResult], None],
                 session_id: Optional[int] = None) -> None:
    """Spawn one wire session's two processes on the perfect-link path."""
    if encoding.session_header_bits:
        # Per-session fixed overhead: priced, not timed (it models
        # connection state, not a serialized message — see wire.py).
        stats.forward.record("SessionHeader", encoding.session_header_bits)
    sender_name, receiver_name = party_names
    session_fields = {} if session_id is None else {"session": session_id}
    mailboxes = {sender_name: _Mailbox(sim, sender_name, tracer, session_id),
                 receiver_name: _Mailbox(sim, receiver_name, tracer,
                                         session_id)}
    start_time = sim.now
    finish_times: Dict[str, float] = {}
    results: Dict[str, Any] = {}
    steps = 0

    def make_process(name: str, peer: str, gen: ProtocolCoroutine,
                     forward: bool, out_stats: DirectionStats,
                     ack_stats: DirectionStats):
        def process():
            nonlocal steps
            mailbox = mailboxes[name]
            try:
                pending = next(gen)
            except StopIteration as stop:
                results[name] = stop.value
                return
            while True:
                steps += 1
                if steps > max_steps:
                    raise SessionError(
                        f"timed session exceeded {max_steps} steps")
                if isinstance(pending, Send):
                    message = pending.message
                    bits = message.bits(encoding)
                    out_stats.record(message.type_name, bits)
                    sent_seq: Optional[int] = None
                    if tracer is not None:
                        sent_seq = tracer.event(
                            obs.MESSAGE, party=name,
                            message=message.type_name, bits=bits,
                            direction=("forward" if forward
                                       else "backward"),
                            **session_fields).seq
                    yield channel.serialization_delay(bits)
                    # Delivery fires one propagation latency later; note the
                    # mailbox is captured now but pushed at arrival time.
                    sim.call_after(
                        channel.latency,
                        lambda m=message, s=sent_seq:
                            mailboxes[peer].push(m, sent_seq=s))
                    if stop_and_wait:
                        # The implicit ack crosses back only after the data
                        # message lands; record it when it *arrives* here
                        # (now + rtt + ack serialization), not when the
                        # data finished serializing — otherwise traces show
                        # the Ack before the deliver it acknowledges.
                        yield channel.stop_and_wait_overhead()
                        ack_stats.record("Ack", channel.ack_bits)
                        if tracer is not None:
                            tracer.event(obs.MESSAGE, party=peer,
                                         message="Ack", bits=channel.ack_bits,
                                         direction=("backward" if forward
                                                    else "forward"),
                                         **session_fields)
                    value: Any = None
                elif isinstance(pending, (Poll, Drain)):
                    value = mailbox.pop_now()
                elif isinstance(pending, Recv):
                    while not mailbox:
                        yield mailbox.arrival
                    if proc_time > 0:
                        yield proc_time
                    value = mailbox.pop_now()
                else:  # pragma: no cover - defensive
                    raise SessionError(f"unknown effect {pending!r} in {name}")
                try:
                    pending = gen.send(value)
                except StopIteration as stop:
                    results[name] = stop.value
                    return

        def on_exit(_value: Any) -> None:
            finish_times[name] = sim.now
            if len(finish_times) == 2:
                on_complete(TimedSessionResult(
                    stats=stats,
                    sender_result=results[sender_name],
                    receiver_result=results[receiver_name],
                    completion_time=max(finish_times.values()),
                    sender_finish=finish_times[sender_name],
                    receiver_finish=finish_times[receiver_name],
                    start_time=start_time,
                ))

        sim.spawn(process(), on_exit=on_exit)

    make_process(sender_name, receiver_name, sender, True,
                 stats.forward, stats.backward)
    make_process(receiver_name, sender_name, receiver, False,
                 stats.backward, stats.forward)


# ---------------------------------------------------------------------------
# The reliable (ARQ) wire session.
# ---------------------------------------------------------------------------


class _AckWait:
    """The sender side's one-outstanding-message acknowledgment wait."""

    __slots__ = ("seq", "acked", "signal", "timer")

    def __init__(self, seq: int) -> None:
        self.seq = seq
        self.acked = False
        self.signal = None
        self.timer = None


class _ReliableWire:
    """Transport state of one wire-session attempt over a faulty link.

    Stop-and-wait ARQ per direction: outgoing messages carry a sequence
    number, the receiving transport delivers in-order exactly once and
    acknowledges every arriving copy, and the sender retransmits on
    timeout.  All transmissions — data and acks — pass through the
    session's seeded :class:`~repro.net.faults.FaultInjector`.
    """

    def __init__(self, sim: Simulator, stats: TransferStats,
                 channel: ChannelSpec, encoding: Encoding,
                 retry: RetryPolicy, injector: FaultInjector,
                 jitter_rng: random.Random, tracer: Optional[Tracer],
                 party_names: Tuple[str, str],
                 proc_time: float, max_steps: int,
                 session_id: Optional[int] = None) -> None:
        self.sim = sim
        self.stats = stats
        self.channel = channel
        self.encoding = encoding
        self.retry = retry
        self.injector = injector
        self.jitter_rng = jitter_rng
        self.tracer = tracer
        self.proc_time = proc_time
        self.max_steps = max_steps
        self.aborted = False
        self.session_fields = ({} if session_id is None
                               else {"session": session_id})
        sender_name, receiver_name = party_names
        self.party_names = party_names
        self.mailboxes = {
            sender_name: _Mailbox(sim, sender_name, tracer, session_id),
            receiver_name: _Mailbox(sim, receiver_name, tracer, session_id)}
        #: Each party's outgoing direction counters (data it serializes).
        self.out_stats: Dict[str, DirectionStats] = {
            sender_name: stats.forward, receiver_name: stats.backward}
        self.next_seq: Dict[str, int] = {sender_name: 0, receiver_name: 0}
        self.expected: Dict[str, int] = {sender_name: 0, receiver_name: 0}
        self.acked_once: Dict[str, set] = {sender_name: set(),
                                           receiver_name: set()}
        self.waits: Dict[str, Optional[_AckWait]] = {sender_name: None,
                                                     receiver_name: None}

    # -- fault plumbing -----------------------------------------------------

    def _fate(self, party: str, kind: str, seq: int) -> Tuple[float, ...]:
        fate = self.injector.fate(self.sim.now)
        if self.tracer is not None:
            if not fate:
                self.tracer.event(obs.FAULT, party=party, fault="drop",
                                  traffic=kind, seq=seq,
                                  **self.session_fields)
            else:
                if len(fate) > 1:
                    self.tracer.event(obs.FAULT, party=party,
                                      fault="duplicate", traffic=kind,
                                      seq=seq, **self.session_fields)
                if fate[0] > 0:
                    self.tracer.event(obs.FAULT, party=party,
                                      fault="reorder", traffic=kind, seq=seq,
                                      delay=fate[0], **self.session_fields)
        return fate

    # -- sender side --------------------------------------------------------

    def send_reliably(self, name: str, peer: str, message: Message):
        """Generator subroutine: transmit until acked or budget exhausted.

        Yields the usual simulator effects; returns True on ack, False
        when the session aborted (either by this message's exhausted
        budget or by the peer).
        """
        out_stats = self.out_stats[name]
        bits = message.bits(self.encoding)
        type_name = message.type_name
        seq = self.next_seq[name]
        self.next_seq[name] += 1
        wait = _AckWait(seq)
        self.waits[name] = wait
        rto = self.retry.rto_for(self.channel)
        attempt = 0
        forward = name == self.party_names[0]
        direction = "forward" if forward else "backward"
        while True:
            attempt += 1
            if attempt == 1:
                out_stats.record(type_name, bits)
            else:
                out_stats.record_retransmit(type_name, bits)
                self.stats.retries += 1
                if self.tracer is not None:
                    self.tracer.event(obs.RETRY, party=name,
                                      message=type_name, seq=seq,
                                      attempt=attempt, **self.session_fields)
            sent_seq: Optional[int] = None
            if self.tracer is not None:
                sent_seq = self.tracer.event(
                    obs.MESSAGE, party=name, message=type_name,
                    bits=bits, direction=direction,
                    seq=seq, attempt=attempt, **self.session_fields).seq
            yield self.channel.serialization_delay(bits)
            if self.aborted:
                return False
            for delay in self._fate(name, "data", seq):
                self.sim.call_after(
                    self.channel.latency + delay,
                    lambda m=message, s=seq, ss=sent_seq:
                        self._on_data(peer, name, s, m, ss))
            if wait.acked:
                # A late ack for an earlier copy landed while this copy
                # was serializing; the message is delivered.
                self.waits[name] = None
                return True
            wait.signal = self.sim.signal(f"{name}-ack-{seq}")
            timeout = rto * (1.0 + self.retry.jitter
                             * self.jitter_rng.random())
            wait.timer = self.sim.call_after(
                timeout, lambda w=wait: self._on_timeout(w))
            yield wait.signal
            if self.aborted:
                return False
            if wait.acked:
                wait.timer.cancel()
                self.waits[name] = None
                return True
            self.stats.timeouts += 1
            if self.tracer is not None:
                self.tracer.event(obs.TIMEOUT, party=name, message=type_name,
                                  seq=seq, attempt=attempt, rto=timeout,
                                  **self.session_fields)
            if attempt >= self.retry.max_retries + 1:
                self.abort(party=name, seq=seq, attempts=attempt)
                return False
            rto = self.retry.next_rto(rto)

    def _on_timeout(self, wait: _AckWait) -> None:
        if self.aborted or wait.acked:
            return
        wait.signal.fire()

    def _on_ack(self, name: str, seq: int) -> None:
        """An acknowledgment for ``name``'s message ``seq`` arrived."""
        if self.aborted:
            return
        wait = self.waits.get(name)
        if wait is not None and wait.seq == seq and not wait.acked:
            wait.acked = True
            if wait.signal is not None:
                wait.signal.fire()
        # Acks for older sequence numbers are stale duplicates; drop them.

    # -- receiver side ------------------------------------------------------

    def _on_data(self, receiver: str, sender: str, seq: int,
                 message: Message,
                 sent_seq: Optional[int] = None) -> None:
        """One copy of ``sender``'s message ``seq`` reached ``receiver``."""
        if self.aborted:
            return
        if seq == self.expected[receiver]:
            self.expected[receiver] += 1
            self.mailboxes[receiver].push(message, sent_seq=sent_seq)
        elif seq > self.expected[receiver]:  # pragma: no cover - defensive
            # Impossible under stop-and-wait (one outstanding message);
            # drop rather than corrupt ordering.
            return
        # Acknowledge every arriving copy — the transport cannot know
        # whether earlier acks survived.  Only the first ack per sequence
        # number is goodput.
        acked = self.acked_once[receiver]
        ack_stats = self.out_stats[receiver]
        if seq not in acked:
            acked.add(seq)
            ack_stats.record("Ack", self.channel.ack_bits)
        else:
            ack_stats.record_retransmit("Ack", self.channel.ack_bits)
        if self.tracer is not None:
            self.tracer.event(obs.MESSAGE, party=receiver, message="Ack",
                              bits=self.channel.ack_bits, seq=seq,
                              direction=("backward"
                                         if receiver == self.party_names[1]
                                         else "forward"),
                              **self.session_fields)
        ack_delay = (self.channel.serialization_delay(self.channel.ack_bits)
                     + self.channel.latency)
        for delay in self._fate(receiver, "ack", seq):
            self.sim.call_after(ack_delay + delay,
                                lambda s=seq: self._on_ack(sender, s))

    # -- abort --------------------------------------------------------------

    def abort(self, *, party: str, seq: int, attempts: int) -> None:
        """Give up on this attempt: wake everything so processes drain."""
        if self.aborted:
            return
        self.aborted = True
        if self.tracer is not None:
            self.tracer.event(obs.SESSION_ABORT, party=party, seq=seq,
                              attempts=attempts, **self.session_fields)
        for mailbox in self.mailboxes.values():
            mailbox.arrival.fire()
        for wait in self.waits.values():
            if wait is not None and wait.signal is not None \
                    and not wait.acked:
                wait.signal.fire()


def _launch_wire_reliable(sim: Simulator, sender: ProtocolCoroutine,
                          receiver: ProtocolCoroutine, *,
                          stats: TransferStats, channel: ChannelSpec,
                          encoding: Encoding, retry: RetryPolicy,
                          injector: FaultInjector,
                          jitter_rng: random.Random, proc_time: float,
                          max_steps: int, tracer: Optional[Tracer],
                          party_names: Tuple[str, str],
                          on_complete: Callable[[TimedSessionResult], None],
                          on_abort: Callable[[], None],
                          session_id: Optional[int] = None) -> None:
    """Spawn one wire-session attempt on the ARQ transport."""
    if encoding.session_header_bits:
        # Every attempt is a fresh handshake; it re-pays the header.
        stats.forward.record("SessionHeader", encoding.session_header_bits)
    wire = _ReliableWire(sim, stats, channel, encoding, retry, injector,
                         jitter_rng, tracer, party_names, proc_time,
                         max_steps, session_id)
    sender_name, receiver_name = party_names
    start_time = sim.now
    finish_times: Dict[str, float] = {}
    results: Dict[str, Any] = {}
    steps = 0

    def make_process(name: str, peer: str, gen: ProtocolCoroutine):
        def process():
            nonlocal steps
            mailbox = wire.mailboxes[name]
            try:
                pending = next(gen)
            except StopIteration as stop:
                results[name] = stop.value
                return
            while True:
                steps += 1
                if steps > max_steps:
                    raise SessionError(
                        f"timed session exceeded {max_steps} steps")
                if wire.aborted:
                    gen.close()
                    return
                if isinstance(pending, Send):
                    delivered = yield from wire.send_reliably(
                        name, peer, pending.message)
                    if not delivered:
                        gen.close()
                        return
                    value: Any = None
                elif isinstance(pending, (Poll, Drain)):
                    value = mailbox.pop_now()
                elif isinstance(pending, Recv):
                    while not mailbox:
                        yield mailbox.arrival
                        if wire.aborted:
                            gen.close()
                            return
                    if proc_time > 0:
                        yield proc_time
                        if wire.aborted:
                            gen.close()
                            return
                    value = mailbox.pop_now()
                else:  # pragma: no cover - defensive
                    raise SessionError(f"unknown effect {pending!r} in {name}")
                try:
                    pending = gen.send(value)
                except StopIteration as stop:
                    results[name] = stop.value
                    return

        def on_exit(_value: Any) -> None:
            finish_times[name] = sim.now
            if len(finish_times) < 2:
                return
            if wire.aborted:
                on_abort()
                return
            on_complete(TimedSessionResult(
                stats=stats,
                sender_result=results[sender_name],
                receiver_result=results[receiver_name],
                completion_time=max(finish_times.values()),
                sender_finish=finish_times[sender_name],
                receiver_finish=finish_times[receiver_name],
                start_time=start_time,
            ))

        sim.spawn(process(), on_exit=on_exit)

    make_process(sender_name, receiver_name, sender)
    make_process(receiver_name, sender_name, receiver)


# ---------------------------------------------------------------------------
# The unified launcher.
# ---------------------------------------------------------------------------


def launch(sim: Simulator, options: SessionOptions) -> SessionHandle:
    """Spawn one session (single, batched, or fault-tolerant) on ``sim``.

    Returns a :class:`SessionHandle` whose ``stats`` fill in as the
    hosting simulator runs; ``options.on_complete`` (and
    ``handle.result``) fire once the final attempt's parties have both
    finished.  The session's wire accounting is independent of whatever
    else the simulator hosts — concurrent sessions only share the clock.

    Under a faulted channel the reliable ARQ transport is engaged; a
    session attempt that exhausts a message's retry budget aborts and,
    when ``options.rebuild`` is available and the retry policy's
    ``max_session_attempts`` budget allows, resumes by rebuilding fresh
    coroutines from the endpoints' current state (the receiver's acked
    prefix is already applied).  A session that cannot resume raises
    :class:`~repro.errors.SessionError` out of the simulator run — unless
    ``options.on_abandon`` is set, in which case the callback is invoked
    with that error and the simulation continues (the handle stays
    incomplete).
    """
    handle = SessionHandle(options=options)
    reliable = options.use_reliable
    injector: Optional[FaultInjector] = None
    jitter_rng: Optional[random.Random] = None
    if reliable:
        base_seed = (options.channel.faults.seed
                     if options.fault_seed is None else options.fault_seed)
        injector = FaultInjector(options.channel.faults, seed=base_seed)
        jitter_rng = random.Random(base_seed * 1_000_003 + options.retry.seed)
    start_time = sim.now
    tracer = options.tracer

    def build_pairs() -> List[SessionPair]:
        pairs = list(options.rebuild()) if options.rebuild is not None \
            else list(options.pairs)
        if not pairs:
            raise SessionError("a session needs at least one coroutine pair")
        return pairs

    def start_attempt() -> None:
        handle.attempts += 1
        pairs = build_pairs()
        single = len(pairs) == 1 and options.batch_size == 1
        chunks = [pairs[i:i + options.batch_size]
                  for i in range(0, len(pairs), options.batch_size)]
        sender_results: List[Any] = []
        receiver_results: List[Any] = []

        def on_attempt_abort() -> None:
            can_resume = (options.rebuild is not None
                          and handle.attempts
                          < options.retry.max_session_attempts)
            if not can_resume:
                error = SessionError(
                    f"session {options.party_names[0]}->"
                    f"{options.party_names[1]} aborted permanently after "
                    f"{handle.attempts} attempt(s): a message exhausted its "
                    f"retry budget ({options.retry.max_retries} retries) "
                    + ("and no rebuild factory was provided to resume from"
                       if options.rebuild is None else
                       "and the resume budget "
                       f"({options.retry.max_session_attempts} attempts) "
                       f"is spent"))
                if options.on_abandon is not None:
                    if tracer is not None:
                        tracer.event(
                            obs.CONTROL, party=options.party_names[1],
                            signal="session_abandon",
                            attempts=handle.attempts,
                            **({} if options.session_id is None
                               else {"session": options.session_id}))
                    options.on_abandon(error)
                    return
                raise error
            handle.stats.resumes += 1
            if tracer is not None:
                tracer.event(obs.CONTROL, party=options.party_names[1],
                             signal="session_resume",
                             attempt=handle.attempts + 1,
                             **({} if options.session_id is None
                                else {"session": options.session_id}))
            start_attempt()

        def finish_session(result: TimedSessionResult) -> None:
            final = TimedSessionResult(
                stats=handle.stats,
                sender_result=(sender_results[0] if single
                               else sender_results),
                receiver_result=(receiver_results[0] if single
                                 else receiver_results),
                completion_time=result.completion_time,
                sender_finish=result.sender_finish,
                receiver_finish=result.receiver_finish,
                start_time=start_time,
            )
            handle.result = final
            if options.on_complete is not None:
                options.on_complete(final)

        def launch_chunk(chunk_index: int) -> None:
            chunk = chunks[chunk_index]
            framed = options.batch_size > 1
            chunk_stats = TransferStats()

            def finish_chunk(result: TimedSessionResult) -> None:
                handle.stats.merge(chunk_stats)
                if framed:
                    sender_results.extend(result.sender_result)
                    receiver_results.extend(result.receiver_result)
                else:
                    sender_results.append(result.sender_result)
                    receiver_results.append(result.receiver_result)
                if chunk_index + 1 < len(chunks):
                    launch_chunk(chunk_index + 1)
                else:
                    finish_session(result)

            if not framed:
                wire_sender, wire_receiver = chunk[0]
            else:
                frames: List[BatchFrame] = []
                wire_sender = batch_party(
                    [s for s, _ in chunk], initiator=True,
                    max_steps=options.max_steps, on_frame=frames.append)
                wire_receiver = batch_party(
                    [r for _, r in chunk], initiator=False,
                    max_steps=options.max_steps, on_frame=frames.append)

                inner_finish = finish_chunk

                def finish_chunk(result: TimedSessionResult) -> None:
                    for frame in frames:
                        chunk_stats.note_frame(frame.object_count)
                    inner_finish(result)

            if reliable:
                def abort_chunk() -> None:
                    # The aborted attempt's traffic was spent: fold it in
                    # before the resume decision (which may raise).
                    handle.stats.merge(chunk_stats)
                    on_attempt_abort()

                _launch_wire_reliable(
                    sim, wire_sender, wire_receiver, stats=chunk_stats,
                    channel=options.channel, encoding=options.encoding,
                    retry=options.retry, injector=injector,
                    jitter_rng=jitter_rng, proc_time=options.proc_time,
                    max_steps=options.max_steps, tracer=tracer,
                    party_names=options.party_names,
                    on_complete=finish_chunk, on_abort=abort_chunk,
                    session_id=options.session_id)
                return
            _launch_wire(
                sim, wire_sender, wire_receiver, stats=chunk_stats,
                channel=options.channel, encoding=options.encoding,
                stop_and_wait=options.stop_and_wait,
                proc_time=options.proc_time, max_steps=options.max_steps,
                tracer=tracer, party_names=options.party_names,
                on_complete=finish_chunk, session_id=options.session_id)

        launch_chunk(0)

    start_attempt()
    return handle


def run_timed(options: SessionOptions, *, trace_dispatch: bool = False,
              span_name: str = "session") -> TimedSessionResult:
    """Run one session to completion on a private simulator.

    With a tracer in ``options`` the run opens one span (``span_name``)
    and stamps every event with the private simulator's clock;
    ``trace_dispatch`` additionally traces every kernel dispatch.
    """
    tracer = options.tracer
    if tracer is None:
        return _run_timed(options, trace_dispatch=False)
    # The channel parameters let post-hoc analysis decompose each
    # send→deliver hop exactly (latency + bits/bandwidth + fault delay).
    span = tracer.span(span_name, driver="timed", time=0.0,
                       latency=options.channel.latency,
                       bandwidth=options.channel.bandwidth)
    previous_clock = tracer.clock
    try:
        return _run_timed(options, trace_dispatch=trace_dispatch)
    finally:
        span.end()
        tracer.clock = previous_clock


def _run_timed(options: SessionOptions, *,
               trace_dispatch: bool) -> TimedSessionResult:
    tracer = options.tracer
    sim = Simulator(tracer=tracer if trace_dispatch else None)
    if tracer is not None:
        # Stamp every event with the simulated clock, dispatch-traced or not.
        tracer.clock = lambda: sim.now
    handle = launch(sim, options)
    sim.run()
    if handle.result is None:
        raise SessionError("timed session ended with unfinished parties")
    return handle.result


# ---------------------------------------------------------------------------
# Deprecated shims (PR 4 API redesign) — forward to the unified launcher.
# ---------------------------------------------------------------------------


def _deprecated(old: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use repro.net.runner.launch(sim, "
        f"SessionOptions(...)) (or run_timed for a private simulator)",
        DeprecationWarning, stacklevel=3)


def launch_session(sim: Simulator, sender: ProtocolCoroutine,
                   receiver: ProtocolCoroutine, *,
                   channel: ChannelSpec = ChannelSpec(),
                   encoding: Encoding = DEFAULT_ENCODING,
                   stop_and_wait: bool = False,
                   proc_time: float = 0.0,
                   max_steps: int = 10_000_000,
                   tracer: Optional[Tracer] = None,
                   party_names: Tuple[str, str] = ("sender", "receiver"),
                   on_complete: Optional[
                       Callable[[TimedSessionResult], None]] = None,
                   ) -> TransferStats:
    """Deprecated: use :func:`launch` with :class:`SessionOptions`."""
    _deprecated("launch_session")
    handle = launch(sim, SessionOptions(
        pairs=((sender, receiver),), channel=channel, encoding=encoding,
        stop_and_wait=stop_and_wait, proc_time=proc_time,
        max_steps=max_steps, tracer=tracer, party_names=party_names,
        on_complete=on_complete))
    return handle.stats


def launch_batch_session(sim: Simulator,
                         pairs: Sequence[SessionPair], *,
                         batch_size: int = 1,
                         channel: ChannelSpec = ChannelSpec(),
                         encoding: Encoding = DEFAULT_ENCODING,
                         stop_and_wait: bool = False,
                         proc_time: float = 0.0,
                         max_steps: int = 10_000_000,
                         tracer: Optional[Tracer] = None,
                         party_names: Tuple[str, str] = ("sender",
                                                         "receiver"),
                         on_complete: Optional[
                             Callable[[TimedSessionResult], None]] = None,
                         ) -> TransferStats:
    """Deprecated: use :func:`launch` with :class:`SessionOptions`."""
    _deprecated("launch_batch_session")
    pair_list = tuple(pairs)
    if not pair_list:
        raise ValueError("launch_batch_session needs at least one pair")

    adapted = on_complete
    if on_complete is not None:
        def adapted(result: TimedSessionResult) -> None:
            # The historical batch API always reported per-object lists,
            # even for a single pair.
            if not isinstance(result.sender_result, list):
                result = TimedSessionResult(
                    stats=result.stats,
                    sender_result=[result.sender_result],
                    receiver_result=[result.receiver_result],
                    completion_time=result.completion_time,
                    sender_finish=result.sender_finish,
                    receiver_finish=result.receiver_finish,
                    start_time=result.start_time)
            on_complete(result)

    handle = launch(sim, SessionOptions(
        pairs=pair_list, batch_size=batch_size, channel=channel,
        encoding=encoding, stop_and_wait=stop_and_wait, proc_time=proc_time,
        max_steps=max_steps, tracer=tracer, party_names=party_names,
        on_complete=adapted))
    return handle.stats


def run_timed_session(sender: ProtocolCoroutine, receiver: ProtocolCoroutine,
                      *, channel: ChannelSpec = ChannelSpec(),
                      encoding: Encoding = DEFAULT_ENCODING,
                      stop_and_wait: bool = False,
                      proc_time: float = 0.0,
                      max_steps: int = 10_000_000,
                      tracer: Optional[Tracer] = None,
                      trace_dispatch: bool = False,
                      span_name: str = "session") -> TimedSessionResult:
    """Deprecated: use :func:`run_timed` with :class:`SessionOptions`."""
    _deprecated("run_timed_session")
    return run_timed(SessionOptions(
        pairs=((sender, receiver),), channel=channel, encoding=encoding,
        stop_and_wait=stop_and_wait, proc_time=proc_time,
        max_steps=max_steps, tracer=tracer),
        trace_dispatch=trace_dispatch, span_name=span_name)
