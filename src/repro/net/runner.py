"""Timed protocol execution on the discrete-event simulator.

Runs the *same* protocol coroutines the instant driver runs, but interprets
their effects against a :class:`~repro.net.channel.ChannelSpec`:

* ``Send`` occupies the sender for the message's serialization delay and
  schedules delivery one propagation latency later (FIFO per direction);
* ``Recv`` parks the party until a delivery fires;
* ``Poll``/``Drain`` report instantly what has arrived by the party's
  current clock — which is precisely what makes pipelining overshoot real:
  a control message emitted by the peer only becomes visible one latency
  later, and everything the sender serialized in between is the paper's
  β = bandwidth·rtt excess.

With ``stop_and_wait=True`` every data message additionally waits for an
implicit per-item acknowledgment (rtt + ack serialization) before the next
one starts — the baseline the paper's pipelining claim of a ``(k−1)·rtt``
saving is measured against.  The acknowledgment bits are charged to the
opposite direction so total-traffic comparisons stay honest, and they are
recorded at the ack's simulated *arrival* instant (after the data message
it acknowledges has been delivered), so traced timelines stay causal.

Two entry points:

* :func:`run_timed_session` — one session on a private simulator, run to
  completion (the historical API);
* :func:`launch_session` — spawn a session's two processes on a *shared*
  simulator without running it, so many sessions can interleave on one
  clock.  :class:`~repro.net.cluster.ClusterRunner` builds on this.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Optional, Sequence, Tuple

from repro.errors import SessionError
from repro.net.channel import ChannelSpec
from repro.net.simulator import Simulator
from repro.net.stats import DirectionStats, TransferStats
from repro.net.wire import DEFAULT_ENCODING, Encoding
from repro.obs import trace as obs
from repro.obs.trace import Tracer
from repro.protocols.batch import BatchFrame, batch_party
from repro.protocols.effects import Drain, Poll, Recv, Send
from repro.protocols.messages import Message
from repro.protocols.session import ProtocolCoroutine


@dataclass
class TimedSessionResult:
    """Outcome of a timed protocol session.

    ``completion_time`` is when the *last* party finished, in simulated
    seconds; the per-party finish times expose the asymmetry (a pipelined
    sender typically outlives the receiver by roughly one rtt while its
    overshoot drains).  For sessions launched on a shared simulator the
    times are absolute simulator clock values; ``start_time`` records when
    the session's processes were spawned.
    """

    stats: TransferStats
    sender_result: Any
    receiver_result: Any
    completion_time: float
    sender_finish: float
    receiver_finish: float
    start_time: float = 0.0

    @property
    def duration(self) -> float:
        """Seconds from spawn to the last party's finish."""
        return self.completion_time - self.start_time


class _Mailbox:
    """FIFO of delivered messages with a wakeup signal."""

    def __init__(self, sim: Simulator, name: str,
                 tracer: Optional[Tracer] = None) -> None:
        self._messages: Deque[Message] = deque()
        self.arrival = sim.signal(f"{name}-arrival")
        self._name = name
        self._tracer = tracer

    def push(self, message: Message) -> None:
        if self._tracer is not None:
            self._tracer.event(obs.DELIVER, party=self._name,
                               message=message.type_name)
        self._messages.append(message)
        self.arrival.fire()

    def pop_now(self) -> Optional[Message]:
        return self._messages.popleft() if self._messages else None

    def __bool__(self) -> bool:
        return bool(self._messages)


def launch_session(sim: Simulator, sender: ProtocolCoroutine,
                   receiver: ProtocolCoroutine, *,
                   channel: ChannelSpec = ChannelSpec(),
                   encoding: Encoding = DEFAULT_ENCODING,
                   stop_and_wait: bool = False,
                   proc_time: float = 0.0,
                   max_steps: int = 10_000_000,
                   tracer: Optional[Tracer] = None,
                   party_names: Tuple[str, str] = ("sender", "receiver"),
                   on_complete: Optional[
                       Callable[[TimedSessionResult], None]] = None,
                   ) -> TransferStats:
    """Spawn one session's two processes on a shared simulator.

    Returns the session's :class:`TransferStats`, which fills in as the
    hosting simulator runs; ``on_complete`` fires (with the full
    :class:`TimedSessionResult`) once both parties have finished.  The
    session's wire accounting is independent of whatever else the
    simulator hosts — concurrent sessions only share the clock — so a
    session's bits equal those of the same coroutines run alone.

    Args:
        sim: the hosting simulator; the caller runs it.
        party_names: labels for the two parties in trace events (e.g.
            site names when hosted by a cluster runner).
    """
    stats = TransferStats()
    if encoding.session_header_bits:
        # Per-session fixed overhead: priced, not timed (it models
        # connection state, not a serialized message — see wire.py).
        stats.forward.record("SessionHeader", encoding.session_header_bits)
    sender_name, receiver_name = party_names
    mailboxes = {sender_name: _Mailbox(sim, sender_name, tracer),
                 receiver_name: _Mailbox(sim, receiver_name, tracer)}
    start_time = sim.now
    finish_times: dict[str, float] = {}
    results: dict[str, Any] = {}
    steps = 0

    def make_process(name: str, peer: str, gen: ProtocolCoroutine,
                     forward: bool, out_stats: DirectionStats,
                     ack_stats: DirectionStats):
        def process():
            nonlocal steps
            mailbox = mailboxes[name]
            try:
                pending = next(gen)
            except StopIteration as stop:
                results[name] = stop.value
                return
            while True:
                steps += 1
                if steps > max_steps:
                    raise SessionError(
                        f"timed session exceeded {max_steps} steps")
                if isinstance(pending, Send):
                    message = pending.message
                    bits = message.bits(encoding)
                    out_stats.record(message.type_name, bits)
                    if tracer is not None:
                        tracer.event(obs.MESSAGE, party=name,
                                     message=message.type_name, bits=bits,
                                     direction=("forward" if forward
                                                else "backward"))
                    yield channel.serialization_delay(bits)
                    # Delivery fires one propagation latency later; note the
                    # mailbox is captured now but pushed at arrival time.
                    sim.call_after(channel.latency,
                                   lambda m=message: mailboxes[peer].push(m))
                    if stop_and_wait:
                        # The implicit ack crosses back only after the data
                        # message lands; record it when it *arrives* here
                        # (now + rtt + ack serialization), not when the
                        # data finished serializing — otherwise traces show
                        # the Ack before the deliver it acknowledges.
                        yield channel.stop_and_wait_overhead()
                        ack_stats.record("Ack", channel.ack_bits)
                        if tracer is not None:
                            tracer.event(obs.MESSAGE, party=peer,
                                         message="Ack", bits=channel.ack_bits,
                                         direction=("backward" if forward
                                                    else "forward"))
                    value: Any = None
                elif isinstance(pending, (Poll, Drain)):
                    value = mailbox.pop_now()
                elif isinstance(pending, Recv):
                    while not mailbox:
                        yield mailbox.arrival
                    if proc_time > 0:
                        yield proc_time
                    value = mailbox.pop_now()
                else:  # pragma: no cover - defensive
                    raise SessionError(f"unknown effect {pending!r} in {name}")
                try:
                    pending = gen.send(value)
                except StopIteration as stop:
                    results[name] = stop.value
                    return

        def on_exit(_value: Any) -> None:
            finish_times[name] = sim.now
            if len(finish_times) == 2 and on_complete is not None:
                on_complete(TimedSessionResult(
                    stats=stats,
                    sender_result=results[sender_name],
                    receiver_result=results[receiver_name],
                    completion_time=max(finish_times.values()),
                    sender_finish=finish_times[sender_name],
                    receiver_finish=finish_times[receiver_name],
                    start_time=start_time,
                ))

        sim.spawn(process(), on_exit=on_exit)

    make_process(sender_name, receiver_name, sender, True,
                 stats.forward, stats.backward)
    make_process(receiver_name, sender_name, receiver, False,
                 stats.backward, stats.forward)
    return stats


def launch_batch_session(sim: Simulator,
                         pairs: Sequence[Tuple[ProtocolCoroutine,
                                               ProtocolCoroutine]], *,
                         batch_size: int = 1,
                         channel: ChannelSpec = ChannelSpec(),
                         encoding: Encoding = DEFAULT_ENCODING,
                         stop_and_wait: bool = False,
                         proc_time: float = 0.0,
                         max_steps: int = 10_000_000,
                         tracer: Optional[Tracer] = None,
                         party_names: Tuple[str, str] = ("sender",
                                                         "receiver"),
                         on_complete: Optional[
                             Callable[[TimedSessionResult], None]] = None,
                         ) -> TransferStats:
    """Synchronize many objects between one site pair, possibly batched.

    ``pairs`` holds one ``(sender, receiver)`` coroutine pair per object.
    With ``batch_size == 1`` every object runs as a plain per-object
    session through :func:`launch_session`, one after another — bit-for-
    bit the unbatched path (each object pays its own session header and,
    under stop-and-wait, per-message acks).  With ``batch_size >= 2`` the
    objects are chunked; each chunk runs as **one** framed session
    (:func:`repro.protocols.batch.batch_party`): one shared session
    header, :class:`~repro.protocols.batch.BatchFrame` multiplexing, and
    one ack per frame under stop-and-wait.  Chunks execute sequentially,
    mirroring the serialized per-object schedule they replace.

    Returns the aggregate :class:`~repro.net.stats.TransferStats`, which
    fills in as the hosting simulator runs; ``on_complete`` fires once,
    after the last chunk, with an aggregate :class:`TimedSessionResult`
    whose ``sender_result``/``receiver_result`` are per-object lists in
    input order.
    """
    pair_list = list(pairs)
    if not pair_list:
        raise ValueError("launch_batch_session needs at least one pair")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    totals = TransferStats()
    sender_results: list[Any] = []
    receiver_results: list[Any] = []
    start_time = sim.now
    chunks = [pair_list[i:i + batch_size]
              for i in range(0, len(pair_list), batch_size)]

    def launch_chunk(chunk_index: int) -> None:
        chunk = chunks[chunk_index]
        framed = batch_size > 1

        def finish(result: TimedSessionResult) -> None:
            totals.merge(result.stats)
            if framed:
                sender_results.extend(result.sender_result)
                receiver_results.extend(result.receiver_result)
            else:
                sender_results.append(result.sender_result)
                receiver_results.append(result.receiver_result)
            if chunk_index + 1 < len(chunks):
                launch_chunk(chunk_index + 1)
            elif on_complete is not None:
                on_complete(TimedSessionResult(
                    stats=totals,
                    sender_result=sender_results,
                    receiver_result=receiver_results,
                    completion_time=result.completion_time,
                    sender_finish=result.sender_finish,
                    receiver_finish=result.receiver_finish,
                    start_time=start_time,
                ))

        if not framed:
            sender, receiver = chunk[0]
            launch_session(
                sim, sender, receiver, channel=channel, encoding=encoding,
                stop_and_wait=stop_and_wait, proc_time=proc_time,
                max_steps=max_steps, tracer=tracer, party_names=party_names,
                on_complete=finish)
            return
        frames: list[BatchFrame] = []
        sender_party = batch_party([s for s, _ in chunk], initiator=True,
                                   max_steps=max_steps,
                                   on_frame=frames.append)
        receiver_party = batch_party([r for _, r in chunk], initiator=False,
                                     max_steps=max_steps,
                                     on_frame=frames.append)

        def finish_framed(result: TimedSessionResult) -> None:
            for frame in frames:
                result.stats.note_frame(frame.object_count)
            finish(result)

        launch_session(
            sim, sender_party, receiver_party, channel=channel,
            encoding=encoding, stop_and_wait=stop_and_wait,
            proc_time=proc_time, max_steps=max_steps, tracer=tracer,
            party_names=party_names, on_complete=finish_framed)

    launch_chunk(0)
    return totals


def run_timed_session(sender: ProtocolCoroutine, receiver: ProtocolCoroutine,
                      *, channel: ChannelSpec = ChannelSpec(),
                      encoding: Encoding = DEFAULT_ENCODING,
                      stop_and_wait: bool = False,
                      proc_time: float = 0.0,
                      max_steps: int = 10_000_000,
                      tracer: Optional[Tracer] = None,
                      trace_dispatch: bool = False,
                      span_name: str = "session") -> TimedSessionResult:
    """Run a protocol session on simulated time; see the module docstring.

    Args:
        sender: forward-direction coroutine (``b``'s site in ``SYNC*b(a)``).
        receiver: backward-direction coroutine (``a``'s site).
        channel: symmetric link model for both directions.
        stop_and_wait: disable pipelining — wait out an implicit ack after
            every send.
        proc_time: per-received-message processing cost at a ``Recv``.
        max_steps: protocol-effect budget guarding against livelock bugs.
        tracer: when given, opens one span and emits clock-stamped
            ``message``/``deliver`` events (bind the same tracer to the
            coroutines for their semantic events).
        trace_dispatch: additionally trace every kernel dispatch
            (``sim_dispatch`` events) — verbose; off by default.
        span_name: label of the session span (e.g. the protocol name).
    """
    if tracer is None:
        return _run_timed_session(
            sender, receiver, channel=channel, encoding=encoding,
            stop_and_wait=stop_and_wait, proc_time=proc_time,
            max_steps=max_steps, tracer=None, trace_dispatch=False)
    span = tracer.span(span_name, driver="timed", time=0.0)
    previous_clock = tracer.clock
    try:
        return _run_timed_session(
            sender, receiver, channel=channel, encoding=encoding,
            stop_and_wait=stop_and_wait, proc_time=proc_time,
            max_steps=max_steps, tracer=tracer,
            trace_dispatch=trace_dispatch)
    finally:
        span.end()
        tracer.clock = previous_clock


def _run_timed_session(sender: ProtocolCoroutine,
                       receiver: ProtocolCoroutine, *, channel: ChannelSpec,
                       encoding: Encoding, stop_and_wait: bool,
                       proc_time: float, max_steps: int,
                       tracer: Optional[Tracer],
                       trace_dispatch: bool) -> TimedSessionResult:
    sim = Simulator(tracer=tracer if trace_dispatch else None)
    if tracer is not None:
        # Stamp every event with the simulated clock, dispatch-traced or not.
        tracer.clock = lambda: sim.now
    completed: list[TimedSessionResult] = []
    launch_session(sim, sender, receiver, channel=channel, encoding=encoding,
                   stop_and_wait=stop_and_wait, proc_time=proc_time,
                   max_steps=max_steps, tracer=tracer,
                   on_complete=completed.append)
    sim.run()
    if not completed:
        raise SessionError("timed session ended with unfinished parties")
    return completed[0]
