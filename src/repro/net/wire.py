"""Bit-exact wire encoding for metadata-exchange messages.

The paper's Table 2 states communication upper bounds in *bits*:

===== ==========================================
BRV   ``n·log(2mn) + 2``
CRV   ``n·log(4mn) + 2``
SRV   ``n·log(8mn) + n·log(2n) + 1``
===== ==========================================

Those bounds decompose element records into ``log n`` bits of site name,
``log m`` bits of value, and one, two, or three flag bits (a framing bit
that distinguishes element records from control messages, plus the conflict
bit for CRV/SRV and the segment bit for SRV); a BRV/CRV ``HALT`` costs 2
bits, an SRV ``HALT`` 1 bit, and an SRV ``SKIP`` carries a segment counter
of ``log n`` bits plus a framing bit (``log 2n``).  This module implements
exactly that encoding so benchmarks can compare measured traffic against
the table's bounds (assumption (ii) in §3.3: site names and values have
fixed length, so ``log n`` and ``log m`` are constants per system).

The encoding never serializes real byte strings — protocol sessions move
Python objects — it only *prices* each message, which is what the paper's
communication-complexity claims are about.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property


def bits_for(count: int) -> int:
    """The fixed field width needed to name ``count`` distinct things.

    ``⌈log₂(count + 1)⌉`` computed as ``count.bit_length()`` — exact
    integer arithmetic with no float rounding at power-of-two boundaries.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return max(1, count.bit_length())


@dataclass(frozen=True)
class Encoding:
    """Fixed field widths for one replication system.

    Attributes:
        site_bits: width of a site name field (``log n``).
        value_bits: width of an element value field (``log m``).
        node_id_bits: width of a causal-graph node identifier.
        session_header_bits: fixed per-session overhead (transport setup,
            object naming, authentication — everything a real deployment
            pays before the first metadata bit).  Charged once per session
            by every driver, to the forward direction, as a
            ``SessionHeader`` record; the default of 0 keeps the paper's
            pure-metadata accounting.  Batched multi-object sessions
            (:mod:`repro.protocols.batch`) share one header across a whole
            batch, which is exactly the amortization the batching
            benchmarks measure.  The header is priced but not timed — it
            models connection state, not a serialized message.
    """

    site_bits: int
    value_bits: int
    node_id_bits: int = 32
    session_header_bits: int = 0

    @classmethod
    def for_system(cls, n_sites: int, max_updates_per_site: int,
                   n_graph_nodes: int = 0) -> "Encoding":
        """Derive field widths from system parameters ``n`` and ``m``."""
        node_bits = bits_for(n_graph_nodes) if n_graph_nodes else 32
        return cls(
            site_bits=bits_for(n_sites),
            value_bits=bits_for(max_updates_per_site),
            node_id_bits=node_bits,
        )

    # -- field hooks -----------------------------------------------------------

    def value_field_bits(self, value: int) -> int:
        """Width of one value field; fixed at ``log m`` here.

        Subclasses may price by magnitude instead (see
        :class:`repro.extensions.varint.AdaptiveEncoding`); message classes
        route every transmitted value through this hook.
        """
        return self.value_bits

    # -- element records -------------------------------------------------------
    #
    # Field widths are memoized: every message prices itself through these
    # sums, so per-message recomputation is pure overhead on the hot path.
    # ``cached_property`` writes straight into ``__dict__`` and therefore
    # coexists with the frozen dataclass (fields stay immutable).

    @cached_property
    def brv_element_bits(self) -> int:
        """``log(2mn)``: site + value + framing bit."""
        return self.site_bits + self.value_bits + 1

    @cached_property
    def crv_element_bits(self) -> int:
        """``log(4mn)``: site + value + framing + conflict bit."""
        return self.site_bits + self.value_bits + 2

    @cached_property
    def srv_element_bits(self) -> int:
        """``log(8mn)``: site + value + framing + conflict + segment bits."""
        return self.site_bits + self.value_bits + 3

    @cached_property
    def compare_element_bits(self) -> int:
        """``log(mn)``: the bare least element exchanged by COMPARE."""
        return self.site_bits + self.value_bits

    @cached_property
    def skip_bits(self) -> int:
        """``log(2n)``: an SRV SKIP message (framing + segment counter)."""
        return self.site_bits + 1

    # -- Table 2 upper bounds ---------------------------------------------------

    def brv_sync_bound(self, n_sites: int) -> int:
        """Worst-case SYNCB traffic: ``n·log(2mn) + 2`` bits."""
        return n_sites * self.brv_element_bits + 2

    def crv_sync_bound(self, n_sites: int) -> int:
        """Worst-case SYNCC traffic: ``n·log(4mn) + 2`` bits."""
        return n_sites * self.crv_element_bits + 2

    def srv_sync_bound(self, n_sites: int) -> int:
        """Worst-case SYNCS traffic: ``n·log(8mn) + n·log(2n) + 1`` bits."""
        return n_sites * self.srv_element_bits + n_sites * self.skip_bits + 1

    def full_vector_bits(self, n_elements: int) -> int:
        """Traditional whole-vector transfer: length prefix + n elements."""
        return self.site_bits + n_elements * (self.site_bits + self.value_bits)

    # -- causal graphs -----------------------------------------------------------

    @cached_property
    def graph_node_bits(self) -> int:
        """One SYNCG node record: id + two parent ids + framing bit."""
        return 3 * self.node_id_bits + 1

    @cached_property
    def skipto_bits(self) -> int:
        """A SYNCG skip-to redirection: node id + framing bit."""
        return self.node_id_bits + 1

    def full_graph_bits(self, n_nodes: int) -> int:
        """Traditional whole-graph transfer: count prefix + node records."""
        return self.node_id_bits + n_nodes * (3 * self.node_id_bits)


#: A generous default for ad-hoc use: 16-bit site names (65k sites),
#: 32-bit values, 32-bit graph node ids.
DEFAULT_ENCODING = Encoding(site_bits=16, value_bits=32, node_id_bits=32)
