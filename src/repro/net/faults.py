"""Seeded, deterministic network fault injection and the ARQ retry policy.

The paper's cost claims — O(|Δ|), O(|Δ|+|Γ|), O(|Δ|+γ) — are statements
about *useful* metadata bits.  A real deployment pays them over channels
that drop, duplicate, and reorder packets and occasionally partition
outright; what survives is not the protocols' cleverness but the
transport's willingness to retransmit.  This module supplies both halves
of that robustness story for the timed driver (:mod:`repro.net.runner`):

* :class:`FaultSpec` — a declarative, validated description of a lossy
  link: per-message drop/duplication/reordering probabilities plus
  transient partition windows.  It rides on
  :class:`~repro.net.channel.ChannelSpec` so every driver that accepts a
  channel accepts faults.
* :class:`FaultInjector` — the seeded interpreter of a spec.  Every
  transmission asks the injector for its *fate* (how many copies arrive,
  each with how much extra delay); the draws come from a private
  ``random.Random`` so a given seed replays the identical fault schedule,
  which is what makes chaos runs regression-testable.
* :class:`RetryPolicy` — the stop-and-wait ARQ knobs: per-message
  retransmission timeout (derived from the channel's round trip when not
  pinned), exponential backoff with deterministic jitter, a per-message
  retry budget, and the session-level resume budget.

Everything validates eagerly and raises
:class:`~repro.errors.ValidationError` (a :class:`~repro.errors.ReproError`)
on nonsense — negative windows, probabilities outside [0, 1] — because a
silently-accepted typo in a fault rate invalidates a whole chaos sweep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ValidationError


def derive_seed(base: int, index: int) -> int:
    """A per-session seed deterministically mixed from ``base`` and ``index``.

    The cluster runner derives each session's injector seed from the fault
    spec's base seed and the session's start-order index, and
    :func:`repro.net.cluster.replay_sequential` re-derives the identical
    seed from the execution log — that shared derivation is what makes a
    chaotic concurrent run replayable session by session.
    """
    return (base * 1_000_003 + index * 7_919 + 1) & 0x7FFFFFFFFFFFFFFF


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValidationError(
            f"{name} must be a probability in [0, 1], got {value}")


@dataclass(frozen=True)
class FaultSpec:
    """Declarative description of one direction-agnostic lossy link.

    Attributes:
        drop: probability that a transmission is lost entirely.
        duplicate: probability that a (delivered) transmission arrives
            twice; the second copy is delayed by a fresh reorder draw.
        reorder: probability that a delivered copy is held back by a
            uniform extra delay in ``(0, reorder_window]`` seconds —
            enough to land *after* traffic sent later.
        reorder_window: upper bound of the extra delay, in seconds.
        partitions: transient partition windows as ``(start, end)``
            pairs in simulated seconds; every transmission that starts
            inside a window is lost (both directions — the link is down).
        seed: base seed of the deterministic draw sequence; drivers may
            mix a per-session component in so concurrent sessions see
            independent-but-replayable schedules.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_window: float = 0.0
    partitions: Tuple[Tuple[float, float], ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        _check_probability("drop", self.drop)
        _check_probability("duplicate", self.duplicate)
        _check_probability("reorder", self.reorder)
        if self.reorder_window < 0:
            raise ValidationError(
                f"reorder_window must be >= 0, got {self.reorder_window}")
        if (self.reorder > 0 or self.duplicate > 0) \
                and self.reorder_window < 0:
            raise ValidationError("reordering requires a positive window")
        for window in self.partitions:
            if len(window) != 2:
                raise ValidationError(
                    f"partition window must be (start, end), got {window!r}")
            start, end = window
            if start < 0 or end <= start:
                raise ValidationError(
                    f"partition window must satisfy 0 <= start < end, "
                    f"got {window!r}")

    @property
    def enabled(self) -> bool:
        """True when any fault can actually occur under this spec."""
        return (self.drop > 0 or self.duplicate > 0 or self.reorder > 0
                or bool(self.partitions))

    def partitioned(self, now: float) -> bool:
        """Whether the link is down at simulated time ``now``."""
        return any(start <= now < end for start, end in self.partitions)


#: The fate of one transmission: extra delivery delay (seconds beyond the
#: channel's propagation latency) per arriving copy.  An empty tuple means
#: the transmission was lost; ``(0.0,)`` is a clean, on-time delivery.
Fate = Tuple[float, ...]


class FaultInjector:
    """Seeded interpreter of a :class:`FaultSpec`.

    One injector per session (the cluster runner derives a per-session
    seed from the spec's base seed and the session index), so the fault
    schedule a session experiences depends only on its own transmission
    order — never on how sessions interleave on the shared clock.  That
    property is what lets :func:`repro.net.cluster.replay_sequential`
    reproduce a chaotic concurrent run bit for bit.
    """

    __slots__ = ("spec", "_rng", "drops", "duplicates", "reorders")

    def __init__(self, spec: FaultSpec, *, seed: Optional[int] = None) -> None:
        self.spec = spec
        self._rng = random.Random(spec.seed if seed is None else seed)
        self.drops = 0
        self.duplicates = 0
        self.reorders = 0

    def fate(self, now: float) -> Fate:
        """Draw the fate of one transmission starting at time ``now``.

        Partition checks consume no randomness (they are a pure function
        of the clock); probabilistic draws happen in a fixed order so an
        identical seed yields an identical schedule.
        """
        spec = self.spec
        if spec.partitioned(now):
            self.drops += 1
            return ()
        if spec.drop > 0 and self._rng.random() < spec.drop:
            self.drops += 1
            return ()
        delay = 0.0
        if spec.reorder > 0 and self._rng.random() < spec.reorder:
            self.reorders += 1
            delay = self._rng.random() * spec.reorder_window
        deliveries = (delay,)
        if spec.duplicate > 0 and self._rng.random() < spec.duplicate:
            self.duplicates += 1
            extra = self._rng.random() * spec.reorder_window
            deliveries = (delay, delay + extra)
        return deliveries


@dataclass(frozen=True)
class RetryPolicy:
    """Stop-and-wait ARQ knobs for the reliable session transport.

    Attributes:
        max_retries: retransmissions allowed per message beyond the first
            attempt; exhausting the budget aborts the session attempt.
        initial_rto: first retransmission timeout in seconds; ``None``
            derives ``2 × channel.stop_and_wait_overhead()`` — twice the
            fault-free wait for an acknowledgment, so a healthy link
            never retransmits spuriously.
        backoff: multiplicative timeout growth per consecutive timeout of
            the same message (``>= 1``).
        max_rto: ceiling the backoff saturates at, in seconds.
        jitter: fractional jitter; each armed timeout is stretched by a
            deterministic factor in ``[1, 1 + jitter]`` to de-synchronize
            retransmissions (drawn from the transport's seeded RNG, so
            runs replay exactly).
        max_session_attempts: total session attempts (first run plus
            resumes) before the driver gives up and raises
            :class:`~repro.errors.SessionError`.
        seed: seed of the jitter draw sequence.
    """

    max_retries: int = 12
    initial_rto: Optional[float] = None
    backoff: float = 2.0
    max_rto: float = 60.0
    jitter: float = 0.25
    max_session_attempts: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValidationError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.initial_rto is not None and self.initial_rto <= 0:
            raise ValidationError(
                f"initial_rto must be > 0, got {self.initial_rto}")
        if self.backoff < 1.0:
            raise ValidationError(
                f"backoff must be >= 1, got {self.backoff}")
        if self.max_rto <= 0:
            raise ValidationError(f"max_rto must be > 0, got {self.max_rto}")
        if self.jitter < 0:
            raise ValidationError(f"jitter must be >= 0, got {self.jitter}")
        if self.max_session_attempts < 1:
            raise ValidationError(
                f"max_session_attempts must be >= 1, "
                f"got {self.max_session_attempts}")

    def rto_for(self, channel: "ChannelSpec") -> float:  # noqa: F821
        """The first timeout for a message on ``channel``."""
        if self.initial_rto is not None:
            return self.initial_rto
        return 2.0 * channel.stop_and_wait_overhead()

    def next_rto(self, rto: float) -> float:
        """The timeout after one more consecutive timeout."""
        return min(rto * self.backoff, self.max_rto)
