"""Declarative multi-region fleet topology: the :class:`TopologySpec`.

The paper evaluates its protocols on flat single-region fleets where
every pair of sites shares one channel.  A production-scale deployment
does not look like that: sites live in *regions*, intra-region links are
fast and clean, inter-region links are slow and lossy, and specific
region pairs may ride dedicated (named) interconnects.  This module is
the declarative description of that shape:

* :class:`LinkProfile` — latency/bandwidth/loss of one class of link.
  A positive ``loss`` expands to the standard chaos fault mix (drop at
  ``loss``, duplicate at ``loss/2``, reorder at ``loss``) exactly as
  :func:`repro.workload.cluster.chaos_faults` prices it, so "1% loss"
  means the same thing here as in every chaos bench cell.
* :class:`RegionSpec` — one region: a name, a site count, and the
  intra-region link profile.
* :class:`RegionLink` — a named override for one inter-region pair.
* :class:`GossipSpec` — epidemic dissemination knobs: fanout, push/pull
  alternation, and region-aware peer weighting (``local_bias``).
* :class:`TopologySpec` — the whole fleet.  It owns site naming
  (region-prefixed for multi-region fleets; the canonical flat
  ``S000 …`` names for single-region specs so the historical drivers
  stay byte-identical), site→region lookup, and per-pair channel
  construction (:meth:`TopologySpec.channel_for`).

The spec is pure data: frozen, validated eagerly, hashable, and
``dataclasses.asdict``-able, so it can ride inside
:class:`~repro.perf.bench.BenchConfig` and land verbatim in the
committed ``BENCH_cluster.json`` document.

:func:`select_peer` at the bottom is the single uniform peer-sampling
primitive.  ``repro.store.cluster.gossip_peers`` and the epidemic
scheduler (:mod:`repro.workload.epidemic`) both draw through it, so
store anti-entropy and cluster gossip consume the *same* seeded stream
— there is exactly one way to pick "a random peer that is not me" in
this repo.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.net.channel import ChannelSpec
from repro.net.faults import FaultSpec


def select_peer(rng: random.Random, dst: str,
                candidates: Sequence[str]) -> str:
    """One uniform draw of a peer for ``dst`` from ``candidates``.

    This is the shared sampling primitive: one ``rng.choice`` over the
    candidate list with ``dst`` itself filtered out.  Both the store's
    :func:`~repro.store.cluster.gossip_peers` and the epidemic scheduler
    route their uniform draws through here, which is what keeps their
    seeded streams in lockstep (same rng state in, same peer out).
    """
    return rng.choice([site for site in candidates if site != dst])


def uniform_peer_rounds(sites: Sequence[str], *, rounds: int, seed: int = 0,
                        stream: str = "store-gossip"
                        ) -> List[Tuple[float, str, str]]:
    """The uniform anti-entropy plan: per round, every site pulls once.

    Returns ``(round, src, dst)`` triples where ``dst`` pulls from
    ``src``.  The draw stream is ``random.Random(f"{stream}:{seed}")``
    advanced by one :func:`select_peer` call per (round, dst) — the
    exact historical stream of ``repro.store.cluster.gossip_peers``,
    which now delegates here (asserted byte-for-byte by the seeding
    tests; changing this function changes committed store digests).
    """
    rng = random.Random(f"{stream}:{seed}")
    plan: List[Tuple[float, str, str]] = []
    for round_no in range(rounds):
        for dst in sites:
            plan.append((float(round_no), select_peer(rng, dst, sites), dst))
    return plan


@dataclass(frozen=True)
class LinkProfile:
    """One class of link: propagation delay, rate, and nominal loss.

    ``loss`` is the chaos knob: 0 keeps the link perfectly reliable (the
    historical fault-free path), a positive value expands to the
    standard chaos mix via :meth:`faults` and every session over the
    link runs the reliable ARQ transport.
    """

    latency: float = 0.005
    bandwidth: float = 1_000_000.0
    loss: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValidationError(
                f"link latency must be >= 0, got {self.latency}")
        if self.bandwidth <= 0:
            raise ValidationError(
                f"link bandwidth must be > 0, got {self.bandwidth}")
        if not 0.0 <= self.loss < 1.0:
            raise ValidationError(
                f"link loss must be in [0, 1), got {self.loss}")

    def faults(self, *, seed: int) -> FaultSpec:
        """The chaos fault mix this profile's ``loss`` prices out to.

        Mirrors :func:`repro.workload.cluster.chaos_faults`: drop at the
        nominal loss, duplicates at half of it, reordering at the loss
        rate within a four-latency window.
        """
        if self.loss <= 0:
            return FaultSpec()
        return FaultSpec(drop=self.loss, duplicate=self.loss / 2,
                         reorder=self.loss,
                         reorder_window=4 * self.latency, seed=seed)

    def channel(self, *, seed: int) -> ChannelSpec:
        """This profile as a concrete :class:`ChannelSpec`."""
        return ChannelSpec(latency=self.latency, bandwidth=self.bandwidth,
                           faults=self.faults(seed=seed))


@dataclass(frozen=True)
class RegionSpec:
    """One region: a name, how many sites it holds, and its intra link."""

    name: str
    sites: int
    link: LinkProfile = field(default_factory=LinkProfile)

    def __post_init__(self) -> None:
        if not self.name or any(ch.isspace() for ch in self.name):
            raise ValidationError(
                f"region name must be non-empty without whitespace, "
                f"got {self.name!r}")
        if self.sites < 1:
            raise ValidationError(
                f"region {self.name!r} must hold >= 1 site, "
                f"got {self.sites}")


@dataclass(frozen=True)
class RegionLink:
    """A named link profile for one specific inter-region pair."""

    a: str
    b: str
    link: LinkProfile

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValidationError(
                f"a RegionLink joins two distinct regions, "
                f"got {self.a!r} twice (intra-region links belong on "
                f"the RegionSpec)")


@dataclass(frozen=True)
class GossipSpec:
    """Epidemic dissemination knobs.

    Attributes:
        fanout: peers each site contacts per gossip round.
        local_bias: probability in [0, 1] that a draw prefers a
            same-region peer when one exists; the complement goes
            cross-region.  0.5 is unweighted in expectation for a
            two-choice split; higher values keep traffic regional.
        push_pull: alternate push (initiator sends) and pull (initiator
            asks) rounds; ``False`` is pull-only — the historical
            anti-entropy shape.
    """

    fanout: int = 1
    local_bias: float = 0.7
    push_pull: bool = True

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ValidationError(
                f"gossip fanout must be >= 1, got {self.fanout}")
        if not 0.0 <= self.local_bias <= 1.0:
            raise ValidationError(
                f"local_bias must be in [0, 1], got {self.local_bias}")


@dataclass(frozen=True)
class TopologySpec:
    """The whole fleet: regions, links, gossip shape, and sharding.

    Attributes:
        regions: the fleet's regions, in declaration order (which fixes
            site naming and every deterministic iteration order).
        inter: the default inter-region link profile, used for every
            region pair without a named :class:`RegionLink` override.
        links: named per-pair overrides (order-insensitive pairs).
        gossip: epidemic dissemination knobs.
        replication: when set, objects are sharded onto site groups of
            this size by the consistent-hash ring
            (:mod:`repro.net.sharding`); ``None`` keeps the historical
            every-site-hosts-everything layout.
        vnodes: virtual nodes per site on the hash ring.
        seed: base seed for workload/gossip schedules derived from this
            spec.
        chaos_seed: base seed for every lossy link's fault stream (the
            per-session injector seed is still derived per session
            index, as everywhere else).
    """

    regions: Tuple[RegionSpec, ...]
    inter: LinkProfile = field(default_factory=lambda: LinkProfile(
        latency=0.04, bandwidth=250_000.0))
    links: Tuple[RegionLink, ...] = ()
    gossip: GossipSpec = field(default_factory=GossipSpec)
    replication: Optional[int] = None
    vnodes: int = 64
    seed: int = 0
    chaos_seed: int = 0

    def __post_init__(self) -> None:
        if not self.regions:
            raise ValidationError("a TopologySpec needs >= 1 region")
        names = [region.name for region in self.regions]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate region names: {names}")
        for link in self.links:
            for end in (link.a, link.b):
                if end not in names:
                    raise ValidationError(
                        f"RegionLink names unknown region {end!r} "
                        f"(regions: {names})")
        pairs = [frozenset((link.a, link.b)) for link in self.links]
        if len(set(pairs)) != len(pairs):
            raise ValidationError("duplicate RegionLink pairs")
        if self.replication is not None:
            if self.replication < 1:
                raise ValidationError(
                    f"replication must be >= 1, got {self.replication}")
            if self.replication > self.n_sites:
                raise ValidationError(
                    f"replication {self.replication} exceeds the fleet "
                    f"size {self.n_sites}")
        if self.vnodes < 1:
            raise ValidationError(
                f"vnodes must be >= 1, got {self.vnodes}")
        # Derived lookup tables, built once.  object.__setattr__ because
        # the dataclass is frozen; leading underscores keep them out of
        # dataclasses.asdict / __eq__ / __hash__ (non-field attributes).
        site_region: Dict[str, str] = {}
        names_iter = iter(self.site_names())
        for region in self.regions:
            for _ in range(region.sites):
                site_region[next(names_iter)] = region.name
        object.__setattr__(self, "_site_region", site_region)
        object.__setattr__(self, "_channels", {})

    # -- naming and lookup ---------------------------------------------------------

    @property
    def n_sites(self) -> int:
        """Total fleet size across all regions."""
        return sum(region.sites for region in self.regions)

    def site_names(self) -> List[str]:
        """Every site name, region by region in declaration order.

        Single-region specs use the canonical flat ``S000, S001, …``
        names (matching :func:`repro.workload.cluster.site_names`), so a
        spec wrapped around a historical fleet names the identical
        sites.  Multi-region specs prefix the region:
        ``eu-000, eu-001, …, us-000, …``.
        """
        if len(self.regions) == 1:
            return [f"S{i:03d}" for i in range(self.regions[0].sites)]
        return [f"{region.name}-{i:03d}"
                for region in self.regions
                for i in range(region.sites)]

    def region_of(self, site: str) -> str:
        """The region a site lives in (raises KeyError on unknown sites)."""
        return self._site_region[site]  # type: ignore[attr-defined]

    def region_sites(self, name: str) -> List[str]:
        """Every site of one region, in naming order."""
        return [site for site in self.site_names()
                if self.region_of(site) == name]

    # -- channels ------------------------------------------------------------------

    def link_between(self, region_a: str, region_b: str) -> LinkProfile:
        """The link profile joining two regions (intra when equal)."""
        if region_a == region_b:
            for region in self.regions:
                if region.name == region_a:
                    return region.link
            raise ValidationError(f"unknown region {region_a!r}")
        wanted = frozenset((region_a, region_b))
        for link in self.links:
            if frozenset((link.a, link.b)) == wanted:
                return link.link
        return self.inter

    def channel_for(self, src: str, dst: str) -> ChannelSpec:
        """The concrete channel one session between ``src``/``dst`` uses.

        Channels are cached per (unordered) region pair — the spec is
        symmetric, so ``channel_for(a, b) is channel_for(b, a)``.
        """
        key = frozenset((self.region_of(src), self.region_of(dst)))
        cache: Dict[frozenset, ChannelSpec] = \
            self._channels  # type: ignore[attr-defined]
        if key not in cache:
            pair = sorted(key)
            profile = self.link_between(pair[0], pair[-1])
            cache[key] = profile.channel(seed=self.chaos_seed)
        return cache[key]

    @property
    def has_faults(self) -> bool:
        """True when any link profile can produce a fault."""
        profiles = [region.link for region in self.regions]
        profiles.append(self.inter)
        profiles.extend(link.link for link in self.links)
        return any(profile.loss > 0 for profile in profiles)

    # -- constructors --------------------------------------------------------------

    @classmethod
    def single(cls, n_sites: int, *, link: Optional[LinkProfile] = None,
               **kwargs: object) -> "TopologySpec":
        """A flat single-region fleet named exactly like the legacy one."""
        return cls(regions=(RegionSpec("flat", n_sites,
                                       link=link or LinkProfile()),),
                   **kwargs)  # type: ignore[arg-type]

    @classmethod
    def grid(cls, n_regions: int, sites_per_region: int, *,
             intra: Optional[LinkProfile] = None,
             inter: Optional[LinkProfile] = None,
             **kwargs: object) -> "TopologySpec":
        """A symmetric ``n_regions × sites_per_region`` fleet.

        Regions are named ``r0, r1, …``; every region shares one intra
        profile and every region pair the one inter profile.  The
        convenience shape behind the CI smoke fleets and the
        ``repro monitor --regions`` demo.
        """
        intra = intra or LinkProfile()
        return cls(regions=tuple(RegionSpec(f"r{i}", sites_per_region,
                                            link=intra)
                                 for i in range(n_regions)),
                   inter=inter or LinkProfile(latency=0.04,
                                              bandwidth=250_000.0),
                   **kwargs)  # type: ignore[arg-type]
