"""A small discrete-event simulation kernel.

The paper's running-time claims (pipelining saves ``(k−1)·rtt``; costs at
most ``β = bandwidth·rtt`` bytes of excess transmission) are about time,
which the instant session driver deliberately abstracts away.  This kernel
provides the simulated clock: an event queue plus generator-based
*processes* that yield either a delay (``float`` seconds) or a
:class:`Signal` to wait on.

The kernel is deliberately tiny — deterministic, single-clock, no real
concurrency — because the paper's experiments need nothing more, and a
small kernel is easy to test exhaustively.  It is also the hottest loop
in every cluster benchmark, so the implementation is tuned:

* every class is ``__slots__``-ed; no per-instance dicts on the kernel
  path;
* internal events that can never be cancelled (process wake-ups, signal
  resumes) share one immortal :class:`Timer` sentinel instead of
  allocating a handle per event;
* :meth:`Simulator.run` dispatches in a tight loop that skips cancelled
  entries inline and only consults the tracer when one is attached —
  with tracing off the per-event cost is one heap pop and the callback;
* cancelled timers are *compacted*: once they exceed half the heap (and
  a small floor) the heap is rebuilt without them, so a long chaos run's
  queue stays proportional to its live events instead of accumulating
  every obsoleted retransmission timer forever.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional, Tuple, Union

from repro.errors import SimulationError
from repro.obs import trace as obs
from repro.obs.trace import Tracer

ProcessGen = Generator[Union[float, int, "Signal"], Any, Any]

#: Compaction floor: below this many cancelled entries the heap is left
#: alone (rebuilding a tiny heap costs more than skipping its entries).
_COMPACT_MIN_CANCELLED = 64


class Timer:
    """Handle to one scheduled event; ``cancel()`` makes it a no-op.

    Cancelling does no O(n) heap surgery: the entry stays queued and the
    dispatch loop skips it.  The owning simulator counts cancellations
    and rebuilds the heap without them once they exceed half its length,
    so cancel-heavy runs (the ARQ transport obsoletes a retransmission
    timer for every acknowledged item) keep a bounded queue.
    """

    __slots__ = ("cancelled", "_sim")

    def __init__(self, sim: Optional["Simulator"] = None) -> None:
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the scheduled callback from ever running."""
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._note_cancelled()


#: Shared sentinel for events the kernel schedules internally (process
#: wake-ups, signal resumes).  No handle to them ever escapes, so they
#: cannot be cancelled and do not need per-event Timer allocations.
_INTERNAL_TIMER = Timer()


class Signal:
    """A broadcast condition processes can wait on.

    ``yield signal`` parks the process until someone calls :meth:`fire`;
    every waiter resumes at the firing instant.
    """

    __slots__ = ("_sim", "_waiters", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self._sim = sim
        self._waiters: List[Callable[[], None]] = []
        self.name = name

    def fire(self) -> None:
        """Wake every waiter at the current simulation time."""
        waiters, self._waiters = self._waiters, []
        sim = self._sim
        for resume in waiters:
            sim._schedule(sim.now, resume)

    def _add_waiter(self, resume: Callable[[], None]) -> None:
        self._waiters.append(resume)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)


class Simulator:
    """Deterministic event queue with a floating-point clock.

    Pass a :class:`~repro.obs.trace.Tracer` to observe the kernel itself:
    every dispatched event becomes a ``sim_dispatch`` trace event stamped
    with the simulated clock, and the tracer's default clock is bound to
    ``self.now`` so events emitted by hosted processes carry simulated
    time without each call site passing ``time=``.  The ``None`` default
    keeps the dispatch loop untouched.
    """

    __slots__ = ("now", "_queue", "_sequence", "_active_processes",
                 "_blocked_processes", "_cancelled", "tracer")

    def __init__(self, *, tracer: Optional[Tracer] = None) -> None:
        self.now = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None], Timer]] = []
        self._sequence = itertools.count()
        self._active_processes = 0
        self._blocked_processes = 0
        #: Cancelled entries believed to be in the heap.  May overcount
        #: (cancelling an already-dispatched timer still bumps it) but
        #: compaction resets it to truth, so drift is self-correcting.
        self._cancelled = 0
        self.tracer = tracer
        if tracer is not None and tracer.clock is None:
            tracer.clock = lambda: self.now

    # -- event scheduling ---------------------------------------------------------

    def call_at(self, time: float, fn: Callable[[], None]) -> Timer:
        """Run ``fn`` at absolute simulated ``time`` (FIFO within a tick).

        Returns a :class:`Timer` handle; cancelling it before the event
        dispatches suppresses the callback.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self.now}")
        timer = Timer(self)
        heapq.heappush(self._queue, (time, next(self._sequence), fn, timer))
        return timer

    def call_after(self, delay: float, fn: Callable[[], None]) -> Timer:
        """Run ``fn`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self.now + delay, fn)

    def _schedule(self, time: float, fn: Callable[[], None]) -> None:
        """Internal non-cancellable scheduling (no Timer allocation)."""
        heapq.heappush(self._queue,
                       (time, next(self._sequence), fn, _INTERNAL_TIMER))

    def _note_cancelled(self) -> None:
        """Count one cancellation; compact when the dead fraction is high."""
        self._cancelled = count = self._cancelled + 1
        if (count >= _COMPACT_MIN_CANCELLED
                and count * 2 > len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries (in place)."""
        queue = self._queue
        queue[:] = [entry for entry in queue if not entry[3].cancelled]
        heapq.heapify(queue)
        self._cancelled = 0

    def _prune_cancelled(self) -> None:
        """Discard cancelled events queued at the head (never advances time)."""
        queue = self._queue
        while queue and queue[0][3].cancelled:
            heapq.heappop(queue)
            if self._cancelled:
                self._cancelled -= 1

    def signal(self, name: str = "") -> Signal:
        """A fresh condition bound to this simulator's clock."""
        return Signal(self, name)

    # -- processes ------------------------------------------------------------------

    def spawn(self, process: ProcessGen,
              on_exit: Optional[Callable[[Any], None]] = None) -> None:
        """Start a generator-based process.

        The process yields a non-negative number to sleep that many
        simulated seconds, or a :class:`Signal` to park until it fires.
        ``on_exit`` receives the generator's return value.
        """
        self._active_processes += 1
        send = process.send

        def step(send_value: Any = None) -> None:
            try:
                yielded = send(send_value)
            except StopIteration as stop:
                self._active_processes -= 1
                if on_exit is not None:
                    on_exit(stop.value)
                return
            # Sleeps vastly outnumber signal waits on the hot path.
            if type(yielded) is float or type(yielded) is int:
                if yielded < 0:
                    raise SimulationError(f"process slept {yielded} < 0")
                self._schedule(self.now + yielded, step)
            elif isinstance(yielded, Signal):
                self._blocked_processes += 1

                def resume() -> None:
                    self._blocked_processes -= 1
                    step(None)

                yielded._add_waiter(resume)
            elif isinstance(yielded, (int, float)):
                # Number subclasses (bool, numpy scalars) take the slow
                # branch but keep the historical contract.
                if yielded < 0:
                    raise SimulationError(f"process slept {yielded} < 0")
                self._schedule(self.now + float(yielded), step)
            else:
                raise SimulationError(
                    f"process yielded unsupported value {yielded!r}")

        self._schedule(self.now, step)

    # -- execution ---------------------------------------------------------------------

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        self._prune_cancelled()
        if not self._queue:
            return False
        time, _, fn, _timer = heapq.heappop(self._queue)
        self.now = time
        if self.tracer is not None:
            self.tracer.event(obs.SIM_DISPATCH, time=time,
                              pending=len(self._queue))
        fn()
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains (or past ``until``).

        Raises :class:`SimulationError` if processes remain parked on
        signals when the queue drains — a deadlock.  With ``until`` the
        clock always ends at ``max(now, until)`` when the queue drains
        first (simulated time passes even when nothing is scheduled), and
        the deadlock check still applies: a drained queue can never fire
        a signal, no matter how much longer we would have run.  Stopping
        *early* (first pending event past ``until``) skips the check —
        the remaining events may well wake the parked processes.
        Returns the final clock value.
        """
        # The dispatch loop is the hottest code in every benchmark; it
        # aliases the queue (compaction rewrites it in place, so the
        # alias stays valid) and skips cancelled entries inline.  The
        # tracer is re-read per event — dispatched callbacks may attach
        # one mid-run — but with tracing off that is the only overhead.
        queue = self._queue
        pop = heapq.heappop
        while queue:
            entry = queue[0]
            if entry[3].cancelled:
                pop(queue)
                if self._cancelled:
                    self._cancelled -= 1
                continue
            time = entry[0]
            if until is not None and time > until:
                self.now = until
                return until
            pop(queue)
            self.now = time
            if self.tracer is not None:
                self.tracer.event(obs.SIM_DISPATCH, time=time,
                                  pending=len(queue))
            entry[2]()
        if self._blocked_processes:
            raise SimulationError(
                f"simulation deadlocked with {self._blocked_processes} "
                f"process(es) waiting on signals at t={self.now}")
        if until is not None and until > self.now:
            self.now = until
        return self.now

    @property
    def pending_events(self) -> int:
        return len(self._queue)
