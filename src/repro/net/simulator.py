"""A small discrete-event simulation kernel.

The paper's running-time claims (pipelining saves ``(k−1)·rtt``; costs at
most ``β = bandwidth·rtt`` bytes of excess transmission) are about time,
which the instant session driver deliberately abstracts away.  This kernel
provides the simulated clock: an event queue plus generator-based
*processes* that yield either a delay (``float`` seconds) or a
:class:`Signal` to wait on.

The kernel is deliberately tiny — deterministic, single-clock, no real
concurrency — because the paper's experiments need nothing more, and a
small kernel is easy to test exhaustively.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional, Tuple, Union

from repro.errors import SimulationError
from repro.obs import trace as obs
from repro.obs.trace import Tracer

ProcessGen = Generator[Union[float, int, "Signal"], Any, Any]


class Timer:
    """Handle to one scheduled event; ``cancel()`` makes it a no-op.

    The event stays in the queue (heap surgery would be O(n)); the
    dispatch loop skips cancelled entries without advancing the clock.
    The ARQ transport uses this for retransmission timers an arriving
    acknowledgment obsoletes.
    """

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the scheduled callback from ever running."""
        self.cancelled = True


class Signal:
    """A broadcast condition processes can wait on.

    ``yield signal`` parks the process until someone calls :meth:`fire`;
    every waiter resumes at the firing instant.
    """

    __slots__ = ("_sim", "_waiters", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self._sim = sim
        self._waiters: List[Callable[[], None]] = []
        self.name = name

    def fire(self) -> None:
        """Wake every waiter at the current simulation time."""
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            self._sim.call_at(self._sim.now, resume)

    def _add_waiter(self, resume: Callable[[], None]) -> None:
        self._waiters.append(resume)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)


class Simulator:
    """Deterministic event queue with a floating-point clock.

    Pass a :class:`~repro.obs.trace.Tracer` to observe the kernel itself:
    every dispatched event becomes a ``sim_dispatch`` trace event stamped
    with the simulated clock, and the tracer's default clock is bound to
    ``self.now`` so events emitted by hosted processes carry simulated
    time without each call site passing ``time=``.  The ``None`` default
    keeps the dispatch loop untouched.
    """

    def __init__(self, *, tracer: Optional[Tracer] = None) -> None:
        self.now = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None], Timer]] = []
        self._sequence = itertools.count()
        self._active_processes = 0
        self._blocked_processes = 0
        self.tracer = tracer
        if tracer is not None and tracer.clock is None:
            tracer.clock = lambda: self.now

    # -- event scheduling ---------------------------------------------------------

    def call_at(self, time: float, fn: Callable[[], None]) -> Timer:
        """Run ``fn`` at absolute simulated ``time`` (FIFO within a tick).

        Returns a :class:`Timer` handle; cancelling it before the event
        dispatches suppresses the callback.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self.now}")
        timer = Timer()
        heapq.heappush(self._queue, (time, next(self._sequence), fn, timer))
        return timer

    def call_after(self, delay: float, fn: Callable[[], None]) -> Timer:
        """Run ``fn`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self.now + delay, fn)

    def _prune_cancelled(self) -> None:
        """Discard cancelled events queued at the head (never advances time)."""
        while self._queue and self._queue[0][3].cancelled:
            heapq.heappop(self._queue)

    def signal(self, name: str = "") -> Signal:
        """A fresh condition bound to this simulator's clock."""
        return Signal(self, name)

    # -- processes ------------------------------------------------------------------

    def spawn(self, process: ProcessGen,
              on_exit: Optional[Callable[[Any], None]] = None) -> None:
        """Start a generator-based process.

        The process yields a non-negative number to sleep that many
        simulated seconds, or a :class:`Signal` to park until it fires.
        ``on_exit`` receives the generator's return value.
        """
        self._active_processes += 1

        def step(send_value: Any = None) -> None:
            try:
                yielded = process.send(send_value)
            except StopIteration as stop:
                self._active_processes -= 1
                if on_exit is not None:
                    on_exit(stop.value)
                return
            if isinstance(yielded, Signal):
                self._blocked_processes += 1

                def resume() -> None:
                    self._blocked_processes -= 1
                    step(None)

                yielded._add_waiter(resume)
            elif isinstance(yielded, (int, float)):
                if yielded < 0:
                    raise SimulationError(f"process slept {yielded} < 0")
                self.call_after(float(yielded), step)
            else:
                raise SimulationError(
                    f"process yielded unsupported value {yielded!r}")

        self.call_at(self.now, step)

    # -- execution ---------------------------------------------------------------------

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        self._prune_cancelled()
        if not self._queue:
            return False
        time, _, fn, _timer = heapq.heappop(self._queue)
        self.now = time
        if self.tracer is not None:
            self.tracer.event(obs.SIM_DISPATCH, time=time,
                              pending=len(self._queue))
        fn()
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains (or past ``until``).

        Raises :class:`SimulationError` if processes remain parked on
        signals when the queue drains — a deadlock.  With ``until`` the
        clock always ends at ``max(now, until)`` when the queue drains
        first (simulated time passes even when nothing is scheduled), and
        the deadlock check still applies: a drained queue can never fire
        a signal, no matter how much longer we would have run.  Stopping
        *early* (first pending event past ``until``) skips the check —
        the remaining events may well wake the parked processes.
        Returns the final clock value.
        """
        while True:
            self._prune_cancelled()
            if not self._queue:
                break
            if until is not None and self._queue[0][0] > until:
                self.now = until
                return self.now
            self.step()
        if self._blocked_processes:
            raise SimulationError(
                f"simulation deadlocked with {self._blocked_processes} "
                f"process(es) waiting on signals at t={self.now}")
        if until is not None and until > self.now:
            self.now = until
        return self.now

    @property
    def pending_events(self) -> int:
        return len(self._queue)
