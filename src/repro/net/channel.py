"""Simulated network links: latency, bandwidth, the β product, and faults.

The paper's pipelining analysis (§3.1) is parameterized by the network
round-trip time and the bandwidth–delay product ``β = bandwidth · rtt``:
pipelining shaves ``(k−1)·rtt`` off a k-item exchange and wastes at most
``β`` bytes of in-flight excess once the receiver has answered.  This
module defines the link model those quantities come from; the timed runner
(:mod:`repro.net.runner`) interprets protocol effects against it.

A link may additionally carry a :class:`~repro.net.faults.FaultSpec`
describing loss, duplication, reordering, and transient partitions; the
timed runner switches to its reliable ARQ transport whenever the spec can
actually produce a fault (``faults.enabled``), and stays byte-for-byte on
the historical code path otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.net.faults import FaultSpec


@dataclass(frozen=True)
class ChannelSpec:
    """A symmetric duplex link.

    Attributes:
        latency: one-way propagation delay in seconds.
        bandwidth: link rate in bits per second (serialization delay of a
            message is ``bits / bandwidth``).
        ack_bits: size of the per-item acknowledgment used by the
            stop-and-wait baseline (pipelining "suppresses (k−1) reply
            messages as they now become implicit", §3.1) and by the
            reliable ARQ transport's explicit acks.
        faults: loss/duplication/reordering/partition model; the default
            (no faults) keeps the link perfectly reliable and in-order.

    Construction validates every field and raises
    :class:`~repro.errors.ValidationError` on nonsense — a negative
    latency or an out-of-range fault probability would silently corrupt
    every measurement built on the link.
    """

    latency: float = 0.05
    bandwidth: float = 1_000_000.0
    ack_bits: int = 8
    faults: FaultSpec = field(default_factory=FaultSpec)

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValidationError(
                f"latency must be >= 0, got {self.latency}")
        if self.bandwidth <= 0:
            raise ValidationError(
                f"bandwidth must be > 0, got {self.bandwidth}")
        if self.ack_bits < 1:
            raise ValidationError(
                f"ack_bits must be >= 1, got {self.ack_bits}")
        if not isinstance(self.faults, FaultSpec):
            raise ValidationError(
                f"faults must be a FaultSpec, got {self.faults!r}")

    @property
    def rtt(self) -> float:
        """Round-trip propagation time in seconds."""
        return 2 * self.latency

    @property
    def beta_bits(self) -> float:
        """The bandwidth–delay product β in bits (§3.1's excess bound)."""
        return self.bandwidth * self.rtt

    def serialization_delay(self, bits: int) -> float:
        """Time the link is occupied transmitting ``bits``."""
        return bits / self.bandwidth

    def one_way_delay(self, bits: int) -> float:
        """Serialization plus propagation for a ``bits``-sized message."""
        return self.serialization_delay(bits) + self.latency

    def stop_and_wait_overhead(self) -> float:
        """Extra time per item paid by the stop-and-wait baseline.

        The sender idles for the propagation out, the ack serialization,
        and the propagation back before the next item may start.
        """
        return self.rtt + self.serialization_delay(self.ack_bits)
