"""Simulated network substrate: wire pricing, statistics, and timing.

* :mod:`repro.net.wire` — bit-exact message pricing matching Table 2.
* :mod:`repro.net.stats` — per-session traffic counters.
* :mod:`repro.net.simulator` — a small discrete-event simulation kernel.
* :mod:`repro.net.channel` — duplex channels with latency and bandwidth.
* :mod:`repro.net.runner` — runs protocol coroutines on simulated time to
  measure completion time (pipelined vs stop-and-wait) and the β excess.
* :mod:`repro.net.codec` — real bit-level serialization of every message;
  the serialized session driver proves priced bits == wire bits.
"""

from repro.net.codec import (BitReader, BitWriter, Codec, NodeInterner,
                             run_session_serialized)
from repro.net.stats import DirectionStats, TransferStats
from repro.net.wire import DEFAULT_ENCODING, Encoding, bits_for

__all__ = [
    "BitReader",
    "BitWriter",
    "Codec",
    "DEFAULT_ENCODING",
    "DirectionStats",
    "NodeInterner",
    "Encoding",
    "TransferStats",
    "run_session_serialized",
    "bits_for",
]
