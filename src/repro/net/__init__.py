"""Simulated network substrate: wire pricing, statistics, and timing.

* :mod:`repro.net.wire` — bit-exact message pricing matching Table 2.
* :mod:`repro.net.stats` — per-session traffic counters.
* :mod:`repro.net.simulator` — a small discrete-event simulation kernel.
* :mod:`repro.net.channel` — duplex channels with latency and bandwidth.
* :mod:`repro.net.runner` — runs protocol coroutines on simulated time to
  measure completion time (pipelined vs stop-and-wait) and the β excess.
* :mod:`repro.net.codec` — real bit-level serialization of every message;
  the serialized session driver proves priced bits == wire bits.
* :mod:`repro.net.topology` — declarative multi-region fleet shapes
  (:class:`TopologySpec`) with per-region-pair link profiles.
* :mod:`repro.net.sharding` — consistent-hash object→site-group
  assignment for fleets too large to replicate everything everywhere.
* :func:`repro.net.cluster.launch_cluster` — the unified keyword-only
  entry point turning one :class:`TopologySpec` into a ready
  :class:`~repro.net.cluster.ClusterRunner`.
"""

from repro.net.codec import (BitReader, BitWriter, Codec, NodeInterner,
                             run_session_serialized)
from repro.net.cluster import launch_cluster
from repro.net.sharding import HashRing, ShardMap, build_shard_map
from repro.net.stats import DirectionStats, TransferStats
from repro.net.topology import (GossipSpec, LinkProfile, RegionLink,
                                RegionSpec, TopologySpec, select_peer,
                                uniform_peer_rounds)
from repro.net.wire import DEFAULT_ENCODING, Encoding, bits_for

__all__ = [
    "BitReader",
    "BitWriter",
    "Codec",
    "DEFAULT_ENCODING",
    "DirectionStats",
    "NodeInterner",
    "Encoding",
    "GossipSpec",
    "HashRing",
    "LinkProfile",
    "RegionLink",
    "RegionSpec",
    "ShardMap",
    "TopologySpec",
    "TransferStats",
    "build_shard_map",
    "launch_cluster",
    "run_session_serialized",
    "select_peer",
    "uniform_peer_rounds",
    "bits_for",
]
