"""Adaptive (variable-length) value encoding — the §7 space note.

The paper treats element values as fixed ``log m``-bit integers and points
at lightweight/resettable counter schemes [25, 26] as orthogonal fixes for
their unbounded growth.  This extension provides the simplest such fix on
the *wire*: Elias-γ-style self-delimiting value fields, which price an
element by the magnitude of its value instead of by a worst-case ``m``.

It plugs in as an :class:`~repro.net.wire.Encoding` subclass — the message
classes already route their value fields through
:meth:`Encoding.value_field_bits` — so every protocol and benchmark can
switch pricing with one constructor argument.  Table 2's fixed-width
bounds are stated for the base encoding; the ablation benchmark
``benchmarks/test_bench_ablation_encoding.py`` measures what the adaptive
fields save on realistic value distributions (most counters are small).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.wire import Encoding


def elias_gamma_bits(value: int) -> int:
    """Size of Elias-γ(value+1): self-delimiting, 1 bit for value 0.

    γ encodes a positive integer x in ``2·⌊log₂ x⌋ + 1`` bits; shifting by
    one admits zero.  ``⌊log₂ x⌋`` is computed as ``x.bit_length() - 1``:
    exact integer arithmetic, because ``math.log2(x)`` rounds once
    magnitudes approach 2^53 and then mis-prices values on either side of
    a power-of-two boundary by two bits.
    """
    if value < 0:
        raise ValueError(f"value must be >= 0, got {value}")
    return 2 * ((value + 1).bit_length() - 1) + 1


@dataclass(frozen=True)
class AdaptiveEncoding(Encoding):
    """Fixed-width site fields, Elias-γ value fields.

    ``value_bits`` is retained as the *worst-case* width (used by the
    Table 2 bound formulas, which stay valid upper bounds as long as
    γ(value) ≤ value_bits for every value the system produces — i.e.
    values stay under ``2^((value_bits−1)/2)``).
    """

    def value_field_bits(self, value: int) -> int:
        """Price the value field by magnitude (Elias-γ)."""
        return elias_gamma_bits(value)
