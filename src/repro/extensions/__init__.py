"""Orthogonal extensions the paper points at (§7).

* :mod:`repro.extensions.pruning` — inactive-site removal for rotating
  vectors, with the membership-manager retirement log.
* :mod:`repro.extensions.varint` — adaptive (Elias-γ) value fields on the
  wire, the simplest answer to unbounded counter growth.

Hybrid transfer — bounded op logs with snapshot fallback (§6) — lives with
the replication systems in :mod:`repro.replication.hybrid`.
"""

from repro.extensions.pruning import (Retirement, RetirementLog, is_prunable,
                                      live_elements, prune, prune_all)
from repro.extensions.varint import AdaptiveEncoding, elias_gamma_bits

__all__ = [
    "AdaptiveEncoding",
    "Retirement",
    "RetirementLog",
    "elias_gamma_bits",
    "is_prunable",
    "live_elements",
    "prune",
    "prune_all",
]
