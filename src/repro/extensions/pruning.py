"""Inactive-site pruning for rotating vectors (§7 / §2.2).

The paper notes that reducing vector size by removing inactive sites
(Ratner et al. 1997; Saito 2002) "is equivalent to the original version
vector plus a distributed membership manager", and that such techniques
"are orthogonal and can be easily applied to any of BRV, CRV, and SRV".
This module supplies that orthogonal piece:

* :class:`RetirementLog` — the membership manager's decision record: a
  monotonically growing set of (site, final value) retirements that every
  replica eventually learns (epoch-stamped, as a coordinated manager would
  distribute them);
* :func:`prune` — applies a retirement to one rotating vector, removing
  the element while keeping SRV segment structure coherent (the removal
  carries segment bits like a rotation does);
* :func:`is_prunable` — a retirement may only be applied once the local
  replica has fully covered the retired site's final value; applying it
  earlier would forge knowledge the replica does not have.

Safety contract (checked by the tests): if all replicas apply the same
retirement log — each when it becomes locally prunable — then COMPARE
verdicts and SYNC* results over the *remaining* sites are unchanged,
because a retired element is, from that point on, identical on every
replica and can never decide a comparison.  Pruning *asymmetrically*
(only some replicas, or before coverage) is exactly the "excessive
truncation" failure §2.2 warns about, and the tests demonstrate the false
verdicts it produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.core.rotating import BasicRotatingVector
from repro.errors import ReproError


@dataclass(frozen=True)
class Retirement:
    """One membership decision: ``site`` made its last update at ``final_value``."""

    site: str
    final_value: int
    epoch: int


@dataclass
class RetirementLog:
    """The membership manager's ordered record of site retirements."""

    _entries: List[Retirement] = field(default_factory=list)

    def retire(self, site: str, final_value: int) -> Retirement:
        """Record that ``site`` left the system after ``final_value`` updates."""
        if any(entry.site == site for entry in self._entries):
            raise ReproError(f"site {site!r} already retired")
        if final_value < 0:
            raise ReproError("final value must be >= 0")
        entry = Retirement(site, final_value, epoch=len(self._entries) + 1)
        self._entries.append(entry)
        return entry

    def entries(self) -> Tuple[Retirement, ...]:
        """All retirements, oldest epoch first."""
        return tuple(self._entries)

    def retired_sites(self) -> List[str]:
        """Names of every retired site."""
        return [entry.site for entry in self._entries]

    def __len__(self) -> int:
        return len(self._entries)


def is_prunable(vector: BasicRotatingVector, retirement: Retirement) -> bool:
    """True iff this replica already covers the retired site's final value."""
    return vector[retirement.site] >= retirement.final_value


def prune(vector: BasicRotatingVector, retirement: Retirement) -> bool:
    """Apply one retirement to a vector; returns True if an element left.

    Raises :class:`ReproError` when the replica has not yet covered the
    retired site's final value — pruning then would erase knowledge the
    replica still needs to *receive*, producing false conflict verdicts.
    """
    if not is_prunable(vector, retirement):
        raise ReproError(
            f"cannot prune {retirement.site!r} at value "
            f"{vector[retirement.site]} < final {retirement.final_value}")
    return vector.order.remove(retirement.site) is not None


def prune_all(vector: BasicRotatingVector, log: RetirementLog) -> int:
    """Apply every locally-prunable retirement; returns elements removed."""
    removed = 0
    for retirement in log.entries():
        if retirement.site in vector.order and is_prunable(vector, retirement):
            if prune(vector, retirement):
                removed += 1
    return removed


def live_elements(vector: BasicRotatingVector,
                  log: RetirementLog) -> Dict[str, int]:
    """The vector restricted to non-retired sites (comparison domain)."""
    retired = set(log.retired_sites())
    return {site: value for site, value in vector.elements()
            if site not in retired}


def vectors_agree_on_live_sites(a: BasicRotatingVector,
                                b: BasicRotatingVector,
                                log: RetirementLog,
                                sites: Iterable[str]) -> bool:
    """Helper for tests: equality over the non-retired site domain."""
    retired = set(log.retired_sites())
    return all(a[site] == b[site] for site in sites if site not in retired)
