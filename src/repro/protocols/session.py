"""Drivers that run a (sender, receiver) pair of protocol coroutines.

Two drivers live here:

* :func:`run_session` — the *instant* driver: deterministic, alternating
  scheduler with immediate message delivery.  It realizes the paper's
  idealized accounting (a control message becomes visible to the sender at
  the earliest possible yield point), so measured traffic matches the
  analytical counts and Table 2's bounds can be asserted exactly.
* :func:`run_session_randomized` — a fuzzing driver that delays deliveries
  by random amounts while preserving per-direction FIFO order.  It models
  arbitrary pipelining overshoot; protocol correctness must not depend on
  timing, and the property-based tests drive the same coroutines through
  this driver to prove it.

A third driver with real (simulated) time lives in :mod:`repro.net.runner`.

Instant-driver slice semantics
------------------------------

The scheduler alternates *slices* between the two parties.  Within a slice
a party:

1. resolves its pending effect — a ``Recv`` (which requires a delivered
   message to start the slice), a ``Poll`` (delivered message or ``None``),
   or a ``Drain``;
2. keeps running while its next effects are ``Send`` (delivered to the peer
   immediately), ``Drain`` (resolved immediately from the delivered inbox),
   or ``Poll`` **with** a delivered message;
3. parks when it reaches a ``Poll`` or ``Recv`` and nothing has been
   delivered — ending the slice.

Flushing consecutive sends within one slice means a control message (HALT,
SKIP, skip-to) is always queued before the peer's next poll — so, e.g.,
SYNCB transmits exactly |Δ|+1 elements and the Figure 3 SYNCG example
transmits exactly the missing nodes plus one overlap node per branch, with
no pipelining overshoot.  ``Poll``-on-empty parking models the one send's
worth of useful work a pipelined sender performs between checks.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Generator, List, Optional, Tuple

from repro.errors import SessionError
from repro.net.stats import TransferStats
from repro.net.wire import DEFAULT_ENCODING, Encoding
from repro.obs import trace as obs
from repro.obs.trace import Tracer
from repro.protocols.effects import Drain, Effect, Poll, Recv, Send
from repro.protocols.messages import Message

ProtocolCoroutine = Generator[Effect, Any, Any]


@dataclass
class SessionResult:
    """Outcome of one protocol session.

    Attributes:
        stats: what crossed the wire, priced in bits.
        sender_result: the sender coroutine's return value.
        receiver_result: the receiver coroutine's return value.
        transcript: when tracing was requested, the full message sequence
            as ``("->" | "<-", message)`` pairs — ``->`` is sender→receiver.
    """

    stats: TransferStats
    sender_result: Any = None
    receiver_result: Any = None
    transcript: Optional[List[Tuple[str, Message]]] = None


@dataclass
class _Party:
    """Bookkeeping for one side of a session."""

    name: str
    gen: ProtocolCoroutine
    inbox: Deque[Message] = field(default_factory=deque)
    pending: Optional[Effect] = None
    done: bool = False
    result: Any = None

    def prime(self) -> None:
        """Advance to the first yield (or completion)."""
        try:
            self.pending = next(self.gen)
        except StopIteration as stop:
            self.done, self.result = True, stop.value

    def advance(self, value: Any) -> None:
        """Resolve the pending effect with ``value`` and run to the next one."""
        try:
            self.pending = self.gen.send(value)
        except StopIteration as stop:
            self.done, self.result = True, stop.value
            self.pending = None


def run_session(sender: ProtocolCoroutine, receiver: ProtocolCoroutine, *,
                encoding: Encoding = DEFAULT_ENCODING,
                max_steps: int = 10_000_000,
                trace: bool = False,
                tracer: Optional[Tracer] = None,
                span_name: str = "session") -> SessionResult:
    """Run a session deterministically with immediate delivery.

    See the module docstring for the slice semantics.  Raises
    :class:`SessionError` on deadlock or when ``max_steps`` is exceeded
    (which indicates a protocol bug, not a workload property).  With
    ``trace=True`` the result carries the full message transcript — handy
    for debugging protocols and for documentation examples.  With a
    ``tracer`` the driver opens one span (``span_name``) and emits a
    priced ``message`` event per send; pass the same tracer to the
    protocol coroutines to interleave their semantic events.
    """
    if tracer is not None:
        span = tracer.span(span_name, driver="instant")
        try:
            return _run_session_instant(sender, receiver, encoding=encoding,
                                        max_steps=max_steps, trace=trace,
                                        tracer=tracer)
        finally:
            span.end()
    return _run_session_instant(sender, receiver, encoding=encoding,
                                max_steps=max_steps, trace=trace, tracer=None)


def _run_session_instant(sender: ProtocolCoroutine,
                         receiver: ProtocolCoroutine, *,
                         encoding: Encoding, max_steps: int, trace: bool,
                         tracer: Optional[Tracer]) -> SessionResult:
    stats = TransferStats()
    if encoding.session_header_bits:
        stats.forward.record("SessionHeader", encoding.session_header_bits)
    transcript: Optional[List[Tuple[str, Message]]] = [] if trace else None
    party_s = _Party("sender", sender)
    party_r = _Party("receiver", receiver)
    parties = (party_s, party_r)
    party_s.prime()
    party_r.prime()
    steps = 0

    def run_slice_tail(index: int) -> None:
        """Step 2 of a slice: flush Sends, resolve Drains and hot Polls."""
        nonlocal steps
        party, peer = parties[index], parties[1 - index]
        while not party.done and steps < max_steps:
            effect = party.pending
            if isinstance(effect, Send):
                direction = stats.forward if party is party_s else stats.backward
                bits = effect.message.bits(encoding)
                direction.record(effect.message.type_name, bits)
                if tracer is not None:
                    tracer.event(
                        obs.MESSAGE, party=party.name,
                        message=effect.message.type_name, bits=bits,
                        direction=("forward" if party is party_s
                                   else "backward"))
                if transcript is not None:
                    arrow = "->" if party is party_s else "<-"
                    transcript.append((arrow, effect.message))
                peer.inbox.append(effect.message)
                party.advance(None)
            elif isinstance(effect, Drain):
                party.advance(party.inbox.popleft() if party.inbox else None)
            elif isinstance(effect, Poll) and party.inbox:
                party.advance(party.inbox.popleft())
            else:
                return  # parked on Poll-empty or Recv
            steps += 1

    run_slice_tail(0)
    run_slice_tail(1)
    turn = 0

    def pick_party() -> int:
        """Choose who runs next.

        A party with a *delivered* message ready (Recv/Poll/Drain with a
        non-empty inbox) takes priority over a party whose Poll would come
        up empty: processing delivered traffic first is what lets a control
        reply reach the sender's very next poll — the paper's idealized,
        zero-overshoot accounting.  Ties alternate.
        """
        for offset in range(2):
            index = (turn + offset) % 2
            party = parties[index]
            if (not party.done and party.inbox
                    and isinstance(party.pending, (Recv, Poll, Drain))):
                return index
        for offset in range(2):
            index = (turn + offset) % 2
            party = parties[index]
            if not party.done and isinstance(party.pending, (Poll, Drain)):
                return index
        return -1

    while steps < max_steps:
        if party_s.done and party_r.done:
            return SessionResult(stats, party_s.result, party_r.result,
                                 transcript)
        index = pick_party()
        if index < 0:
            blocked = [p.name for p in parties if not p.done]
            raise SessionError(f"session deadlocked; blocked parties: {blocked}")
        party = parties[index]
        party.advance(party.inbox.popleft() if party.inbox else None)
        steps += 1
        run_slice_tail(index)
        turn = 1 - index
    raise SessionError(f"session exceeded {max_steps} steps")


def run_session_randomized(sender: ProtocolCoroutine,
                           receiver: ProtocolCoroutine, *,
                           rng: random.Random,
                           encoding: Encoding = DEFAULT_ENCODING,
                           max_steps: int = 10_000_000,
                           tracer: Optional[Tracer] = None,
                           span_name: str = "session") -> SessionResult:
    """Run a session under adversarial (random) delivery delays.

    Sent messages enter an in-flight queue and are delivered at random later
    points, preserving FIFO order per direction.  ``Poll`` and ``Drain`` see
    only delivered messages, so the sender can overshoot arbitrarily —
    exactly the pipelining regime the paper's algorithms must survive.
    With a ``tracer``, sends become ``message`` events and delayed arrivals
    ``deliver`` events; an identical seed replays an identical sequence.
    """
    if tracer is not None:
        span = tracer.span(span_name, driver="randomized")
        try:
            return _run_session_randomized(sender, receiver, rng=rng,
                                           encoding=encoding,
                                           max_steps=max_steps, tracer=tracer)
        finally:
            span.end()
    return _run_session_randomized(sender, receiver, rng=rng,
                                   encoding=encoding, max_steps=max_steps,
                                   tracer=None)


def _run_session_randomized(sender: ProtocolCoroutine,
                            receiver: ProtocolCoroutine, *,
                            rng: random.Random, encoding: Encoding,
                            max_steps: int,
                            tracer: Optional[Tracer]) -> SessionResult:
    stats = TransferStats()
    if encoding.session_header_bits:
        stats.forward.record("SessionHeader", encoding.session_header_bits)
    party_s = _Party("sender", sender)
    party_r = _Party("receiver", receiver)
    parties = (party_s, party_r)
    in_flight: Dict[int, Deque[Message]] = {0: deque(), 1: deque()}
    party_s.prime()
    party_r.prime()

    for _ in range(max_steps):
        if party_s.done and party_r.done:
            return SessionResult(stats, party_s.result, party_r.result)

        # Enumerate every enabled action, then pick one at random.
        actions = []
        for index, party in enumerate(parties):
            if party.done:
                continue
            effect = party.pending
            if isinstance(effect, (Send, Poll, Drain)):
                actions.append(("step", index))
            elif isinstance(effect, Recv) and party.inbox:
                actions.append(("step", index))
        for index in (0, 1):
            if in_flight[index]:
                actions.append(("deliver", index))

        if not actions:
            blocked = [p.name for p in parties if not p.done]
            raise SessionError(
                f"randomized session deadlocked; blocked parties: {blocked}")

        kind, index = rng.choice(actions)
        if kind == "deliver":
            message = in_flight[index].popleft()
            if tracer is not None:
                tracer.event(obs.DELIVER, party=parties[index].name,
                             message=message.type_name)
            parties[index].inbox.append(message)
            continue
        party = parties[index]
        effect = party.pending
        if isinstance(effect, Send):
            direction = stats.forward if party is party_s else stats.backward
            bits = effect.message.bits(encoding)
            direction.record(effect.message.type_name, bits)
            if tracer is not None:
                tracer.event(obs.MESSAGE, party=party.name,
                             message=effect.message.type_name, bits=bits,
                             direction=("forward" if party is party_s
                                        else "backward"))
            in_flight[1 - index].append(effect.message)
            party.advance(None)
        elif isinstance(effect, (Poll, Drain)):
            party.advance(party.inbox.popleft() if party.inbox else None)
        else:
            party.advance(party.inbox.popleft())
    raise SessionError(f"randomized session exceeded {max_steps} steps")
