"""Wire protocols: the paper's SYNC* algorithms plus baselines.

Every protocol is a pair of driver-agnostic coroutines (see
:mod:`repro.protocols.effects`) with a convenience wrapper that runs them
under the deterministic instant driver:

* :func:`~repro.protocols.syncb.sync_brv` — SYNCB, Algorithm 2.
* :func:`~repro.protocols.syncc.sync_crv` — SYNCC, Algorithm 3.
* :func:`~repro.protocols.syncs.sync_srv` — SYNCS, Algorithm 4.
* :func:`~repro.protocols.syncg.sync_graph` — SYNCG, Algorithm 5.
* :func:`~repro.protocols.comparep.compare_remote` — distributed COMPARE.
* :mod:`~repro.protocols.fullsync` — the traditional full-transfer baselines.
"""

from repro.protocols.comparep import compare_remote, relationship
from repro.protocols.fullsync import sync_full_graph, sync_full_vector
from repro.protocols.session import (SessionResult, run_session,
                                     run_session_randomized)
from repro.protocols.syncb import sync_brv, syncb_receiver, syncb_sender
from repro.protocols.syncc import sync_crv, syncc_receiver, syncc_sender
from repro.protocols.syncg import sync_graph, syncg_receiver, syncg_sender
from repro.protocols.syncs import sync_srv, syncs_receiver, syncs_sender

__all__ = [
    "SessionResult",
    "compare_remote",
    "relationship",
    "run_session",
    "run_session_randomized",
    "sync_brv",
    "sync_crv",
    "sync_srv",
    "sync_graph",
    "sync_full_graph",
    "sync_full_vector",
    "syncb_sender",
    "syncb_receiver",
    "syncc_sender",
    "syncc_receiver",
    "syncs_sender",
    "syncs_receiver",
    "syncg_sender",
    "syncg_receiver",
]
