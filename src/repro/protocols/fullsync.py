"""Traditional full-transfer baselines the paper's algorithms improve on.

State transfer traditionally ships the *entire* version vector on every
synchronization (§3: "synchronizing two version vectors involves O(n)
network transmission"); operation transfer traditionally ships the entire
causal graph (§6: "Traditionally, the entire graph is sent").  These two
protocols implement exactly that, priced by the same encoding as the
incremental algorithms, so every benchmark can report the paper's
baseline-vs-proposed comparison.
"""

from __future__ import annotations

from typing import Any, Generator, Union

from repro.core.rotating import BasicRotatingVector
from repro.core.versionvector import VersionVector
from repro.graphs.causalgraph import CausalGraph, GraphNode
from repro.net.wire import DEFAULT_ENCODING, Encoding
from repro.protocols.effects import Recv, Send
from repro.protocols.messages import FullGraphMsg, FullVectorMsg
from repro.protocols.session import SessionResult, run_session

AnyVector = Union[VersionVector, BasicRotatingVector]


def full_vector_sender(b: AnyVector) -> Generator[Any, Any, int]:
    """Ship the whole vector in one message; returns the element count."""
    if isinstance(b, BasicRotatingVector):
        pairs = tuple(b.elements())
    else:
        pairs = tuple(sorted(b.items()))
    yield Send(FullVectorMsg(pairs))
    return len(pairs)


def full_vector_receiver(a: AnyVector) -> Generator[Any, Any, int]:
    """Merge the received vector elementwise; returns elements overwritten."""
    message = yield Recv()
    assert isinstance(message, FullVectorMsg)
    overwritten = 0
    if isinstance(a, BasicRotatingVector):
        # Keep the rotating representation coherent: adopt the sender's
        # front-to-back order for every element it wins.
        prev: str | None = None
        for site, value in message.pairs:
            if value > a[site]:
                element = a.order.rotate_after(prev, site)
                element.value = value
                overwritten += 1
                prev = site
            else:
                prev = site if site in a.order else prev
    else:
        for site, value in message.pairs:
            if value > a[site]:
                a[site] = value
                overwritten += 1
    return overwritten


def sync_full_vector(a: AnyVector, b: AnyVector, *,
                     encoding: Encoding = DEFAULT_ENCODING) -> SessionResult:
    """The traditional baseline: send all of ``b``; merge into ``a``."""
    return run_session(full_vector_sender(b), full_vector_receiver(a),
                       encoding=encoding)


def full_graph_sender(b: CausalGraph) -> Generator[Any, Any, int]:
    """Ship the whole causal graph in one message; returns the node count."""
    rows = tuple(sorted(((n.node_id, n.left_parent, n.right_parent)
                         for n in b.nodes()), key=repr))
    yield Send(FullGraphMsg(rows))
    return len(rows)


def full_graph_receiver(a: CausalGraph) -> Generator[Any, Any, int]:
    """Install every received node; returns how many were new."""
    message = yield Recv()
    assert isinstance(message, FullGraphMsg)
    added = 0
    for node_id, left, right in message.nodes:
        if node_id not in a:
            a.install(GraphNode(node_id, left, right))
            added += 1
    return added


def sync_full_graph(a: CausalGraph, b: CausalGraph, *,
                    encoding: Encoding = DEFAULT_ENCODING) -> SessionResult:
    """The traditional baseline: send all of ``b``; union into ``a``."""
    return run_session(full_graph_sender(b), full_graph_receiver(a),
                       encoding=encoding)
