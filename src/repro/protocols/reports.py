"""Per-party semantic reports returned by protocol coroutines.

The session driver measures *syntactic* traffic (bits, messages); the
coroutines themselves report the *semantic* quantities the paper reasons
about — measured |Δ|, Γ, and γ — through these dataclasses, returned as the
coroutine's value and surfaced in
:class:`~repro.protocols.session.SessionResult`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class VectorSenderReport:
    """What the sending side of a SYNC* session did."""

    #: Element records actually transmitted.
    elements_sent: int = 0
    #: Elements iterated over but suppressed because a SKIP was honored (SRV).
    elements_suppressed: int = 0
    #: SKIP requests honored — the measured γ of the session.
    skips_honored: int = 0
    #: The peer's HALT stopped us before we exhausted the vector.
    halted_by_peer: bool = False
    #: We reached ``⌈b⌉`` and sent our own HALT.
    reached_end: bool = False


@dataclass
class VectorReceiverReport:
    """What the receiving side of a SYNC* session did."""

    #: Elements written into the local vector — the measured |Δ|.
    new_elements: int = 0
    #: Known elements examined while not skipping — the measured |Γ|.
    redundant_elements: int = 0
    #: Known elements discarded while a skip was pending (pipeline overshoot).
    ignored_elements: int = 0
    #: SKIP requests issued.
    skips_issued: int = 0
    #: Known tagged segments consumed without a SKIP because their first
    #: received element was already the terminator (SRV): they count toward
    #: the paper's γ — each costs O(1) — but need no message.
    inline_segments: int = 0
    #: We terminated the session with our own HALT.
    sent_halt: bool = False
    #: The sender exhausted its vector and HALTed first.
    received_halt: bool = False


@dataclass
class GraphSenderReport:
    """What the SYNCG sending side did."""

    nodes_sent: int = 0
    nodes_skipped: int = 0
    rewinds: int = 0
    aborted_by_peer: bool = False


@dataclass
class GraphReceiverReport:
    """What the SYNCG receiving side did."""

    nodes_added: int = 0
    arcs_added: int = 0
    overlap_nodes: int = 0
    skiptos_sent: int = 0
    sent_abort: bool = False
