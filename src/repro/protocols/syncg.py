"""SYNCG (Algorithm 5): incremental synchronization of causal graphs.

``SYNCG_b(a)`` makes graph *a* the union of graphs *a* and *b*, regardless
of their causal relation, transmitting O(|V_b∖V_a| + |A_b∖A_a|) — the
optimal difference (§6.1).

The sender runs a depth-first search over *b* starting at the sink and
walking arcs backwards, sending each unvisited node with its (≤2) parent
identifiers.  Children therefore arrive before parents.  Because a graph is
ancestor-closed, as soon as the receiver sees a node it already has, the
whole remainder of that DFS branch is old news; it answers with the
identifier of the next branch start it still needs, and the sender rewinds
its stack to that node.

The receiver learns future branch starts by *mirroring* the sender's stack:
for every received new node it pushes the right parent — but only if that
parent is unknown ("s′ only keeps nodes not existing in the receiver's
graph").  Left parents never need mirroring because the sender explores
them immediately (or a rewind it requested discards them, in which case
they were ancestors of a node the receiver already had).

Pipelining details (§6.1 and DESIGN.md):

* A ``skipto`` naming an already-visited node raced past the sender's
  progress and is ignored; the receiver's ``skipping`` flag prevents
  duplicate redirections while the overshoot of the aborted branch drains.
* Stale mirror entries (a pushed right parent that arrived later via
  another branch) are lazily dropped before being offered as a redirection.
* When an existing node arrives and the mirror stack holds nothing unknown,
  no branch the receiver needs remains anywhere in the sender's stack, so
  the receiver sends ``ABORT`` and the sender halts — covering the
  ``b ⪯ a`` corner without walking *b*'s known ancestry (the paper
  sidesteps this case by comparing sinks first; we support either order).
"""

from __future__ import annotations

from typing import Any, Generator, List

from repro.errors import ProtocolError
from repro.graphs.causalgraph import CausalGraph, GraphNode, NodeId
from repro.net.wire import DEFAULT_ENCODING, Encoding
from repro.obs import trace as obs
from repro.obs.trace import Tracer
from repro.protocols.effects import Poll, Recv, Send
from repro.protocols.messages import (AbortMsg, GraphNodeMsg, Halt, Message,
                                      SkipToMsg)
from repro.protocols.reports import GraphReceiverReport, GraphSenderReport
from repro.protocols.session import SessionResult, run_session

_HALT_BITS = 1


def syncg_sender(b: CausalGraph, *, tracer: Tracer | None = None
                 ) -> Generator[Any, Any, GraphSenderReport]:
    """The sending side of ``SYNCG_b(a)``: reverse DFS with rewinds."""
    report = GraphSenderReport()
    visited: set = set()
    stack: List[NodeId] = list(reversed(b.sinks()))
    while stack:
        # Drain redirections (and a possible abort) before the next step.
        while True:
            incoming = yield Poll()
            if incoming is None:
                break
            if isinstance(incoming, (AbortMsg, Halt)):
                if tracer is not None:
                    tracer.event(obs.CONTROL, party="sender",
                                 signal="abort_received")
                report.aborted_by_peer = True
                yield Send(Halt(_HALT_BITS))
                return report
            assert isinstance(incoming, SkipToMsg)
            if incoming.node not in visited:
                skipped_before = report.nodes_skipped
                while stack and stack[-1] != incoming.node:
                    stack.pop()
                    report.nodes_skipped += 1
                if not stack:
                    raise ProtocolError(
                        f"skipto target {incoming.node!r} not on DFS stack")
                report.rewinds += 1
                if tracer is not None:
                    tracer.event(obs.GAMMA_SKIP, party="sender",
                                 target=incoming.node,
                                 skipped=report.nodes_skipped - skipped_before)
            elif tracer is not None:
                tracer.event(obs.CONTROL, party="sender",
                             signal="stale_skipto", target=incoming.node)
            # else: stale — the branch already streamed past that node.
        node_id = stack.pop()
        if node_id in visited:
            continue
        visited.add(node_id)
        node = b.node(node_id)
        yield Send(GraphNodeMsg(node_id, node.left_parent, node.right_parent))
        report.nodes_sent += 1
        if node.right_parent is not None:
            stack.append(node.right_parent)
        if node.left_parent is not None:
            stack.append(node.left_parent)
    yield Send(Halt(_HALT_BITS))
    return report


def syncg_receiver(a: CausalGraph, *, enable_redirect: bool = True,
                   enable_abort: bool = True,
                   tracer: Tracer | None = None
                   ) -> Generator[Any, Any, GraphReceiverReport]:
    """The receiving side of ``SYNCG_b(a)``; grows ``a`` to the union.

    Arrivals are *staged* and committed into ``a`` only when the sender's
    HALT confirms the session completed.  The reverse DFS delivers children
    before parents, so a graph mutated mid-session would not be
    ancestor-closed — and ancestor-closure of the pre-session graph is
    exactly the invariant the skip logic relies on.  Staging makes an
    interrupted session a no-op that a retry completes (see the failure
    injection tests).

    ``enable_redirect=False`` and ``enable_abort=False`` disable the
    mirroring-stack redirections and the exhausted-stack abort — both
    correct but letting the sender walk known territory; the ablation
    benchmark quantifies what each mechanism saves.
    """
    report = GraphReceiverReport()
    mirror: List[NodeId] = []
    staged: List[GraphNode] = []
    staged_ids: set = set()
    skipping = False

    def known(node_id: NodeId) -> bool:
        return node_id in a or node_id in staged_ids

    while True:
        message: Message = yield Recv()
        if isinstance(message, Halt):
            for node in staged:
                a.install(node)
            if tracer is not None:
                tracer.event(obs.CONTROL, party="receiver",
                             signal="halt_received", committed=len(staged))
            return report
        assert isinstance(message, GraphNodeMsg)
        node_id = message.node
        if known(node_id):
            report.overlap_nodes += 1
            if tracer is not None:
                tracer.event(obs.GAMMA_RETRANSMIT, party="receiver",
                             node=node_id)
            if skipping:
                continue
            skipping = True
            # Drop mirror entries that became known via other branches.
            while mirror and known(mirror[-1]):
                mirror.pop()
            if mirror:
                if enable_redirect:
                    target = mirror.pop()
                    yield Send(SkipToMsg(target))
                    report.skiptos_sent += 1
                    if tracer is not None:
                        tracer.event(obs.CONTROL, party="receiver",
                                     signal="skipto_sent", target=target)
            elif enable_abort:
                yield Send(AbortMsg())
                report.sent_abort = True
                if tracer is not None:
                    tracer.event(obs.CONTROL, party="receiver",
                                 signal="abort_sent")
                # The sender acknowledges with HALT; keep consuming till then.
        else:
            skipping = False
            if mirror and mirror[-1] == node_id:
                mirror.pop()
            node = GraphNode(node_id, message.left_parent, message.right_parent)
            staged.append(node)
            staged_ids.add(node_id)
            report.nodes_added += 1
            report.arcs_added += len(node.parents)
            if tracer is not None:
                tracer.event(obs.DELTA_ELEMENT, party="receiver",
                             node=node_id)
            if (message.right_parent is not None
                    and not known(message.right_parent)):
                mirror.append(message.right_parent)


def sync_graph(a: CausalGraph, b: CausalGraph, *,
               encoding: Encoding = DEFAULT_ENCODING,
               tracer: Tracer | None = None) -> SessionResult:
    """Run ``SYNCG_b(a)`` under the instant driver, mutating ``a``.

    Postcondition: ``a`` contains the union of both node and arc sets and
    is ancestor-closed again.  Works for any causal relation between the
    graphs (the two must share their source, as replicas of one object do);
    after synchronizing concurrent replicas the caller performs
    reconciliation by adding a merge node over the two sinks.
    """
    return run_session(syncg_sender(b, tracer=tracer),
                       syncg_receiver(a, tracer=tracer),
                       encoding=encoding, tracer=tracer, span_name="SYNCG")
