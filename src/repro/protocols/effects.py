"""Effects yielded by protocol coroutines.

Every synchronization algorithm in this package is written once, as a pair
of plain generator functions (*sender* and *receiver*) that never touch a
socket, a queue, or a clock.  Instead they ``yield`` one of three effect
objects and receive the result through ``generator.send()``:

* ``yield Send(message)`` — transmit ``message`` to the peer; resumes with
  ``None``.
* ``yield Recv()`` — block until a message is available; resumes with the
  message.
* ``yield Poll()`` — check for a pending message without blocking; resumes
  with a message or ``None``.  This is the paper's *network pipelining*
  primitive: a sender streams speculatively and polls for asynchronous
  control messages (HALT, SKIP, skip-to) instead of stopping and waiting.
  Under the instant driver an empty Poll *parks* the party for one turn,
  modeling the instant of useful work between consecutive sends.
* ``yield Drain()`` — like Poll but never parks: it reports only what has
  *already* been delivered, immediately.  Receivers use it right before
  emitting their own ``HALT`` to notice a sender-side ``HALT`` that is
  already queued behind the data (the ``⌈b⌉`` race), without soliciting
  further traffic.

Drivers interpret the effects: the instant driver
(:func:`repro.protocols.session.run_session`) delivers immediately and is
deterministic; the randomized driver delays deliveries arbitrarily to
exercise pipelining overshoot; the discrete-event driver
(:mod:`repro.net.runner`) adds latency and bandwidth to measure running
time.  Correctness of every protocol is independent of the driver — a
property the test suite checks explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.protocols.messages import Message


class Effect:
    """Base class for protocol effects."""

    __slots__ = ()


@dataclass(frozen=True)
class Send(Effect):
    """Transmit ``message`` to the peer."""

    message: Message


@dataclass(frozen=True)
class Recv(Effect):
    """Block until the next message from the peer arrives."""


@dataclass(frozen=True)
class Poll(Effect):
    """Non-blocking check for a pending message; resolves to ``None`` if idle."""


@dataclass(frozen=True)
class Drain(Effect):
    """Instantly report an already-delivered message, or ``None``; never parks."""
