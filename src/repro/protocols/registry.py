"""The protocol registry: one place that knows every sync scheme.

Historically each layer that needed "which vector class, which coroutine
pair, does it reconcile?" re-answered the question with its own
``if protocol == "brv" ... elif`` ladder.  This module replaces the
ladders with a declarative table: a :class:`ProtocolSpec` per scheme,
bundling the metadata-vector class, the sender/receiver coroutine
factories, and the scheme's traits (can it reconcile concurrent vectors
automatically?).  :class:`~repro.net.cluster.ClusterRunner` and
:func:`~repro.net.cluster.replay_sequential` dispatch exclusively through
:func:`get`; new schemes plug in with :func:`register` and immediately
work everywhere — cluster runs, benchmarks, replays — without touching
any dispatch site.

The registry is intentionally tiny and import-time populated with the
paper's three schemes (BRV/SYNCB, CRV/SYNCC, SRV/SYNCS); it is a lookup
table, not a plugin system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.arrayvec import (ArrayBasicRotatingVector,
                                 ArrayConflictRotatingVector,
                                 ArraySkipRotatingVector)
from repro.core.conflict import ConflictRotatingVector
from repro.core.order import Ordering
from repro.core.rotating import BasicRotatingVector
from repro.core.skip import SkipRotatingVector
from repro.errors import ConcurrentVectorsError
from repro.obs.trace import Tracer
from repro.protocols.session import ProtocolCoroutine
from repro.protocols.syncb import syncb_receiver, syncb_sender
from repro.protocols.syncc import syncc_receiver, syncc_sender
from repro.protocols.syncs import syncs_receiver, syncs_sender

#: ``(b, tracer=...) -> sender coroutine`` — the forward/bulk side.
SenderFactory = Callable[..., ProtocolCoroutine]
#: ``(a, reconcile=..., tracer=...) -> receiver coroutine``.
ReceiverFactory = Callable[..., ProtocolCoroutine]


@dataclass(frozen=True)
class ProtocolSpec:
    """Everything the drivers need to know about one sync scheme.

    Attributes:
        name: the scheme's registry key (``"brv"``, ``"crv"``, ``"srv"``).
        vector_cls: the metadata-vector class each site instantiates.
        reconciles: whether the receiver can merge *concurrent* vectors
            automatically.  A scheme with ``reconciles=False`` (BRV)
            raises :class:`~repro.errors.ConcurrentVectorsError` when
            asked to synchronize concurrent inputs — Algorithm 2's
            ``Require: a ∦ b``.
        make_sender: factory for the sending coroutine (``b``'s side of
            ``SYNC*_b(a)``); called as ``make_sender(b, tracer=...)``.
        make_receiver: factory for the receiving coroutine; called as
            ``make_receiver(a, reconcile=..., tracer=...)`` when the
            scheme reconciles, ``make_receiver(a, tracer=...)`` when not.
    """

    name: str
    vector_cls: type
    reconciles: bool
    make_sender: SenderFactory
    make_receiver: ReceiverFactory
    #: Storage backends for this scheme's vector: backend tag → class.
    #: Empty means "only vector_cls" (single-backend scheme); the three
    #: built-in schemes map ``linked`` (pointer-chasing oracle) and
    #: ``array`` (flat fast path) to interchangeable classes.
    backends: Tuple[Tuple[str, type], ...] = ()

    def vector_class(self, backend: Optional[str] = None) -> type:
        """The vector class for ``backend`` (default: :attr:`vector_cls`).

        Both backends speak identical wire bits; the choice only affects
        in-memory representation and speed.
        """
        if backend is None:
            return self.vector_cls
        for tag, cls in self.backends:
            if tag == backend:
                return cls
        if backend == "linked" or not self.backends:
            return self.vector_cls
        known = sorted({"linked"} | {tag for tag, _ in self.backends})
        raise ValueError(f"unknown backend {backend!r} for protocol "
                         f"{self.name!r}; expected one of {known}")

    def build(self, b: BasicRotatingVector, a: BasicRotatingVector,
              verdict: Ordering, *, tracer: Optional[Tracer] = None
              ) -> Tuple[ProtocolCoroutine, ProtocolCoroutine, bool]:
        """(sender, receiver, reconciled) for ``SYNC*_b(a)`` under ``verdict``.

        ``reconciled`` reports whether the receiver will perform an
        automatic merge (always False for non-reconciling schemes).
        """
        concurrent = verdict.is_concurrent
        if not self.reconciles:
            if concurrent:
                raise ConcurrentVectorsError(
                    f"{self.name.upper()} cannot synchronize concurrent "
                    f"vectors (use a reconciling scheme, or a "
                    f"single-writer workload)")
            return (self.make_sender(b, tracer=tracer),
                    self.make_receiver(a, tracer=tracer), False)
        return (self.make_sender(b, tracer=tracer),
                self.make_receiver(a, reconcile=concurrent, tracer=tracer),
                concurrent)


_REGISTRY: Dict[str, ProtocolSpec] = {}


def register(spec: ProtocolSpec) -> ProtocolSpec:
    """Add ``spec`` to the registry; re-registering a name replaces it."""
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> ProtocolSpec:
    """The spec registered under ``name``; raises ``ValueError`` otherwise."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown protocol {name!r}; "
                         f"expected one of {names()}") from None


def names() -> List[str]:
    """Registered scheme names, sorted."""
    return sorted(_REGISTRY)


register(ProtocolSpec(
    name="brv", vector_cls=BasicRotatingVector, reconciles=False,
    make_sender=syncb_sender, make_receiver=syncb_receiver,
    backends=(("linked", BasicRotatingVector),
              ("array", ArrayBasicRotatingVector))))
register(ProtocolSpec(
    name="crv", vector_cls=ConflictRotatingVector, reconciles=True,
    make_sender=syncc_sender, make_receiver=syncc_receiver,
    backends=(("linked", ConflictRotatingVector),
              ("array", ArrayConflictRotatingVector))))
register(ProtocolSpec(
    name="srv", vector_cls=SkipRotatingVector, reconciles=True,
    make_sender=syncs_sender, make_receiver=syncs_receiver,
    backends=(("linked", SkipRotatingVector),
              ("array", ArraySkipRotatingVector))))
