"""SYNCB (Algorithm 2): incremental synchronization of basic rotating vectors.

``SYNCB_b(a)`` makes vector *a* (on the receiving site) equal to the
elementwise max of *a* and *b* while transmitting only the elements of *b*
modified since the two vectors last met.  The sender streams elements in
ascending ``≺_b`` order — most recently modified first — and the receiver
overwrites until it sees a value it already knows, at which point everything
behind it in the order is older still and a single ``HALT`` ends the
session: O(|Δ|) communication.

**Precondition** (Algorithm 2's ``Require``): ``a ∦ b``.  BRV offers no
conflict reconciliation, so the convenience wrapper :func:`sync_brv` raises
:class:`~repro.errors.ConcurrentVectorsError` on concurrent inputs; the raw
coroutines do not check (the check belongs to the caller, who has already
run COMPARE) — see §3.2 for what silently goes wrong on reuse after a
concurrent merge.

Network pipelining (§3.1): the sender never stops-and-waits; it polls for
the asynchronous ``HALT`` between element sends.  Before the receiver emits
its own ``HALT`` it drains already-delivered messages so that a sender-side
``HALT`` (the ``⌈b⌉`` case) is not answered redundantly.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.order import Ordering
from repro.core.rotating import BasicRotatingVector
from repro.errors import ConcurrentVectorsError
from repro.net.wire import DEFAULT_ENCODING, Encoding
from repro.obs import trace as obs
from repro.obs.trace import Tracer
from repro.protocols.effects import Drain, Poll, Recv, Send
from repro.protocols.messages import ElementMsg, Halt, Message
from repro.protocols.reports import VectorReceiverReport, VectorSenderReport
from repro.protocols.session import SessionResult, run_session

_HALT_BITS = 2  # Table 2: the BRV bound is n·log(2mn) + 2.


def syncb_sender(b: BasicRotatingVector, *, tracer: Tracer | None = None
                 ) -> Generator[Any, Any, VectorSenderReport]:
    """The sending side (*b*'s hosting site) of ``SYNCB_b(a)``."""
    report = VectorSenderReport()
    element = b.first()
    if element is None:
        # An empty vector precedes everything; announce completion.
        yield Send(Halt(_HALT_BITS))
        report.reached_end = True
        return report
    while True:
        yield Send(ElementMsg(element.site, element.value))
        report.elements_sent += 1
        if element.next is None:  # cur = ⌈b⌉
            yield Send(Halt(_HALT_BITS))
            report.reached_end = True
            return report
        element = element.next
        incoming = yield Poll()
        if isinstance(incoming, Halt):
            if tracer is not None:
                tracer.event(obs.CONTROL, party="sender",
                             signal="halt_received")
            report.halted_by_peer = True
            return report


def syncb_receiver(a: BasicRotatingVector, *, tracer: Tracer | None = None
                   ) -> Generator[Any, Any, VectorReceiverReport]:
    """The receiving side (*a*'s hosting site) of ``SYNCB_b(a)``.

    Mutates ``a`` in place.  On termination the least *k* elements of
    ``≺_a`` have the same order and values as the least *k* of ``≺_b``.
    """
    report = VectorReceiverReport()
    prev: str | None = None
    while True:
        message: Message = yield Recv()
        if isinstance(message, Halt):
            if tracer is not None:
                tracer.event(obs.CONTROL, party="receiver",
                             signal="halt_received")
            report.received_halt = True
            return report
        assert isinstance(message, ElementMsg)
        if message.value <= a[message.site]:
            report.redundant_elements += 1
            if tracer is not None:
                tracer.event(obs.GAMMA_RETRANSMIT, party="receiver",
                             site=message.site, value=message.value)
            # Drain delivered traffic: if the sender already HALTed (it hit
            # ⌈b⌉ right behind this element) our own HALT would be wasted.
            while True:
                extra = yield Drain()
                if extra is None:
                    break
                if isinstance(extra, Halt):
                    report.received_halt = True
                    return report
                report.ignored_elements += 1
            yield Send(Halt(_HALT_BITS))
            if tracer is not None:
                tracer.event(obs.CONTROL, party="receiver",
                             signal="halt_sent")
            report.sent_halt = True
            return report
        element = a.order.rotate_after(prev, message.site)
        element.value = message.value
        prev = message.site
        report.new_elements += 1
        if tracer is not None:
            tracer.event(obs.DELTA_ELEMENT, party="receiver",
                         site=message.site, value=message.value)


def sync_brv(a: BasicRotatingVector, b: BasicRotatingVector, *,
             encoding: Encoding = DEFAULT_ENCODING,
             check: bool = True,
             tracer: Tracer | None = None) -> SessionResult:
    """Run ``SYNCB_b(a)`` under the instant driver, mutating ``a``.

    Args:
        a: the vector to bring up to date (receiver side).
        b: the up-to-date vector (sender side); never modified.
        encoding: field widths used to price the traffic.
        check: verify ``a ∦ b`` first (via Algorithm 1) and raise
            :class:`ConcurrentVectorsError` otherwise.
        tracer: optional trace sink; opens a ``SYNCB`` span.

    Returns:
        The session result; ``a`` now equals ``max(a, b)`` elementwise —
        which by Theorem 3.1 is ``b`` if ``a ≺ b`` and ``a`` otherwise.
    """
    if check and a.compare(b) is Ordering.CONCURRENT:
        raise ConcurrentVectorsError(
            "SYNCB requires a ∦ b; use CRV/SRV for conflict reconciliation")
    return run_session(syncb_sender(b, tracer=tracer),
                       syncb_receiver(a, tracer=tracer),
                       encoding=encoding, tracer=tracer, span_name="SYNCB")
