"""Message types exchanged by the synchronization protocols.

Each message knows its own wire price in bits under a given
:class:`~repro.net.wire.Encoding`; see that module for how the prices add
up to the paper's Table 2 bounds.  Messages are immutable value objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.net.wire import Encoding


class Message:
    """Base class for all protocol messages."""

    __slots__ = ()

    def bits(self, encoding: Encoding) -> int:
        """Wire size of this message in bits under ``encoding``."""
        raise NotImplementedError

    @property
    def type_name(self) -> str:
        return type(self).__name__


# -- vector synchronization ------------------------------------------------------


@dataclass(frozen=True)
class ElementMsg(Message):
    """A BRV element record ``(i, v[i])`` — ``log(2mn)`` bits."""

    site: str
    value: int

    def bits(self, encoding: Encoding) -> int:
        """Wire size in bits (see the class docstring)."""
        return encoding.site_bits + encoding.value_field_bits(self.value) + 1


@dataclass(frozen=True)
class ElementCMsg(Message):
    """A CRV element triple ``(i, v[i], c[i])`` — ``log(4mn)`` bits."""

    site: str
    value: int
    conflict: bool

    def bits(self, encoding: Encoding) -> int:
        """Wire size in bits (see the class docstring)."""
        return encoding.site_bits + encoding.value_field_bits(self.value) + 2


@dataclass(frozen=True)
class ElementSMsg(Message):
    """An SRV element quadruple ``(i, v[i], c[i], s[i])`` — ``log(8mn)`` bits."""

    site: str
    value: int
    conflict: bool
    segment: bool

    def bits(self, encoding: Encoding) -> int:
        """Wire size in bits (see the class docstring)."""
        return encoding.site_bits + encoding.value_field_bits(self.value) + 3


@dataclass(frozen=True)
class Halt(Message):
    """Terminates a session, in either direction.

    Table 2 prices HALT at 2 bits for BRV/CRV and 1 bit for SRV (where the
    framing space is shared with SKIP); the constructing protocol passes the
    applicable price.
    """

    cost_bits: int = 2

    def bits(self, encoding: Encoding) -> int:
        """Wire size in bits (see the class docstring)."""
        return self.cost_bits


@dataclass(frozen=True)
class Skip(Message):
    """``(SKIP, segs)`` — asks the SRV sender to skip segment ``segs``."""

    segs: int

    def bits(self, encoding: Encoding) -> int:
        """Wire size in bits (see the class docstring)."""
        return encoding.skip_bits


@dataclass(frozen=True)
class FullVectorMsg(Message):
    """The traditional baseline: an entire version vector in one message."""

    pairs: Tuple[Tuple[str, int], ...]

    def bits(self, encoding: Encoding) -> int:
        """Wire size in bits (see the class docstring)."""
        return encoding.site_bits + sum(
            encoding.site_bits + encoding.value_field_bits(value)
            for _, value in self.pairs)


# -- COMPARE -----------------------------------------------------------------------


@dataclass(frozen=True)
class CompareLeast(Message):
    """The least element ``⌊v⌋`` exchanged by distributed COMPARE.

    ``log(mn)`` bits; an empty vector is announced with ``site=None`` (the
    all-zero element record, same width).
    """

    site: Optional[str]
    value: int = 0

    def bits(self, encoding: Encoding) -> int:
        """Wire size in bits (see the class docstring)."""
        return encoding.site_bits + encoding.value_field_bits(self.value)


@dataclass(frozen=True)
class VerdictBit(Message):
    """One predicate bit closing the distributed COMPARE exchange."""

    dominated: bool

    def bits(self, encoding: Encoding) -> int:
        """Wire size in bits (see the class docstring)."""
        return 1


# -- causal graph synchronization -----------------------------------------------


@dataclass(frozen=True)
class GraphNodeMsg(Message):
    """A SYNCG node record: ``(i, LP(i), RP(i))``."""

    node: int
    left_parent: Optional[int]
    right_parent: Optional[int]

    def bits(self, encoding: Encoding) -> int:
        """Wire size in bits (see the class docstring)."""
        return encoding.graph_node_bits


@dataclass(frozen=True)
class SkipToMsg(Message):
    """A SYNCG redirection: resume the DFS from this stack node."""

    node: int

    def bits(self, encoding: Encoding) -> int:
        """Wire size in bits (see the class docstring)."""
        return encoding.skipto_bits


@dataclass(frozen=True)
class AbortMsg(Message):
    """SYNCG receiver's "nothing left that I need" signal (see DESIGN.md)."""

    def bits(self, encoding: Encoding) -> int:
        """Wire size in bits (see the class docstring)."""
        return 1


@dataclass(frozen=True)
class FullGraphMsg(Message):
    """The traditional baseline: an entire causal graph in one message."""

    nodes: Tuple[Tuple[int, Optional[int], Optional[int]], ...]

    def bits(self, encoding: Encoding) -> int:
        """Wire size in bits (see the class docstring)."""
        return encoding.full_graph_bits(len(self.nodes))


# -- replica payloads ---------------------------------------------------------------


@dataclass(frozen=True)
class PayloadMsg(Message):
    """Opaque replica content (state transfer) or operation bodies.

    Metadata experiments usually exclude payload bits; the replication layer
    accounts for them separately so both views are available.
    """

    size_bytes: int

    def bits(self, encoding: Encoding) -> int:
        """Wire size in bits (see the class docstring)."""
        return 8 * self.size_bytes
