"""Distributed COMPARE: the 2·log(mn)-bit vector comparison exchange.

Algorithm 1 compares two rotating vectors from their least (front) elements
alone.  Distributed across two sites it costs one element record each way
(§3.3: "(2·log mn) bits are transferred, which is the minimum amount of
information required for the vector comparison problem"), plus one verdict
bit each way so both sites end up knowing the relation:

* site B, holding *b* and receiving ``⌊a⌋ = (l_a, u_a)``, can evaluate
  ``x := u_a ≤ b[l_a]`` — true iff *b* already knows *a*'s latest update,
  i.e. ``a ⪯ b``;
* site A symmetrically evaluates ``y := u_b ≤ a[l_b]`` (``b ⪯ a``);
* ``x ∧ y`` ⇔ equal, ``x`` alone ⇔ ``a ≺ b``, ``y`` alone ⇔ ``b ≺ a``,
  neither ⇔ concurrent.

The same fresh-front precondition as :meth:`BasicRotatingVector.compare`
applies (see that docstring).  Empty vectors are announced with a null
least element and trivially precede everything.
"""

from __future__ import annotations

from typing import Any, Generator, Tuple

from repro.core.order import Ordering
from repro.core.rotating import BasicRotatingVector
from repro.net.wire import DEFAULT_ENCODING, Encoding
from repro.obs import trace as obs
from repro.obs.trace import Tracer
from repro.protocols.effects import Recv, Send
from repro.protocols.messages import CompareLeast, VerdictBit
from repro.protocols.session import SessionResult, run_session


def _least(vector: BasicRotatingVector) -> CompareLeast:
    front = vector.first()
    if front is None:
        return CompareLeast(None)
    return CompareLeast(front.site, front.value)


def _knows(vector: BasicRotatingVector, peer_least: CompareLeast) -> bool:
    """True iff ``vector`` already covers the peer's latest update."""
    if peer_least.site is None:
        return True  # an empty peer precedes everything
    return peer_least.value <= vector[peer_least.site]


def _verdict(i_know_peer: bool, peer_knows_me: bool) -> Ordering:
    if i_know_peer and peer_knows_me:
        return Ordering.EQUAL
    if peer_knows_me:
        return Ordering.BEFORE
    if i_know_peer:
        return Ordering.AFTER
    return Ordering.CONCURRENT


def compare_party(vector: BasicRotatingVector, *,
                  tracer: Tracer | None = None,
                  name: str = "party") -> Generator[Any, Any, Ordering]:
    """One symmetric side of the COMPARE exchange.

    Both parties run this coroutine; each returns the verdict *from its own
    vector's perspective* (so the two results are mutual
    :meth:`~repro.core.order.Ordering.flipped` images).
    """
    yield Send(_least(vector))
    peer_least = yield Recv()
    assert isinstance(peer_least, CompareLeast)
    i_know_peer = _knows(vector, peer_least)
    yield Send(VerdictBit(i_know_peer))
    peer_bit = yield Recv()
    assert isinstance(peer_bit, VerdictBit)
    verdict = _verdict(i_know_peer, peer_bit.dominated)
    if tracer is not None:
        tracer.event("verdict", party=name, ordering=verdict.name)
    return verdict


def compare_remote(a: BasicRotatingVector, b: BasicRotatingVector, *,
                   encoding: Encoding = DEFAULT_ENCODING,
                   tracer: Tracer | None = None
                   ) -> Tuple[Ordering, SessionResult]:
    """Run the distributed COMPARE; returns (verdict from *a*'s side, session).

    The session's traffic is 2·log(mn) + 2 bits regardless of n — the O(1)
    communication claim of §3.3.
    """
    result = run_session(compare_party(a, tracer=tracer, name="a"),
                         compare_party(b, tracer=tracer, name="b"),
                         encoding=encoding, tracer=tracer,
                         span_name="COMPARE")
    return result.sender_result, result


def relationship(a: BasicRotatingVector, b: BasicRotatingVector,
                 *, remote: bool = False,
                 encoding: Encoding = DEFAULT_ENCODING,
                 tracer: Tracer | None = None) -> Ordering:
    """Convenience: Algorithm 1 locally, or the distributed protocol.

    Args:
        a: left vector.
        b: right vector.
        remote: when true, run the wire protocol (and discard its stats).
        tracer: optional trace sink for the remote exchange.
    """
    if not remote:
        return a.compare(b)
    verdict, _ = compare_remote(a, b, encoding=encoding, tracer=tracer)
    return verdict
