"""Batched multi-object synchronization sessions.

A site pair that replicates *k* objects pays, under per-object sessions,
k session headers and — under the stop-and-wait baseline — one ack per
message.  This module coalesces the per-object SYNCB/SYNCC/SYNCS
exchanges into a single framed conversation:

* one shared session header for the whole batch (see
  :attr:`~repro.net.wire.Encoding.session_header_bits`);
* per-object payloads multiplexed into :class:`BatchFrame` messages,
  delimited by self-describing Elias-γ varints (object index + message
  count per entry) so the frame prices itself exactly;
* one ack per *frame* under stop-and-wait, instead of one per message.

The per-object protocol coroutines run **unmodified**: :func:`batch_party`
wraps k of them into one composite coroutine that speaks frames on the
outside and ordinary ``Send``/``Poll``/``Drain``/``Recv`` effects on the
inside.  The composite is itself an ordinary protocol coroutine, so every
existing driver (instant, randomized, timed) can run it.

Multiplexing semantics
----------------------

The two composites alternate half-duplex *turns*.  Within a turn each
object coroutine runs as far as it can: ``Send`` buffers the message into
the outgoing frame, ``Poll``/``Drain`` resolve from the object's demuxed
inbox (``None`` when empty), and ``Recv`` parks the object until the next
incoming frame.  A parked ``Poll`` never ends a turn — the sender keeps
streaming, exactly the pipelining-overshoot regime of §3.1 that the
protocols are already proven robust against (the randomized-driver fuzz
suite).  The trade is explicit: batching forfeits mid-stream control
feedback (a HALT or SKIP only arrives with the next frame, so the sender
streams segments it might have skipped), and in exchange the whole batch
costs one header plus one ack per frame.  For fleets of small per-object
vectors — the many-objects regime the batching benchmarks model — the
framing savings dominate.

``batch_size=1`` is, by convention of the callers
(:func:`repro.net.runner.launch`,
:class:`repro.net.cluster.ClusterRunner`), **not framed at all**: each
object runs through the plain per-object machinery, so the batched path
at size 1 is bit-for-bit the unbatched path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (Any, Callable, Deque, Iterable, List, Optional, Sequence,
                    Tuple)

from repro.errors import SessionError
from repro.extensions.varint import elias_gamma_bits
from repro.net.wire import DEFAULT_ENCODING, Encoding
from repro.protocols.effects import Drain, Poll, Recv, Send
from repro.protocols.messages import Message
from repro.protocols.session import (ProtocolCoroutine, SessionResult,
                                     run_session)

#: One frame entry: ``(object index, messages for that object)``.
BatchEntry = Tuple[int, Tuple[Message, ...]]


@dataclass(frozen=True)
class BatchFrame(Message):
    """One wire frame multiplexing several objects' protocol messages.

    Pricing: each entry costs γ(object index) + γ(message count) bits of
    framing on top of its payload messages' own prices.  The session
    header is *not* part of the frame — it is charged once per session by
    the driver (see :attr:`~repro.net.wire.Encoding.session_header_bits`),
    which is exactly what a batch amortizes across its objects.
    """

    entries: Tuple[BatchEntry, ...]

    def bits(self, encoding: Encoding) -> int:
        """Wire size in bits (see the class docstring)."""
        total = 0
        for index, messages in self.entries:
            total += elias_gamma_bits(index)
            total += elias_gamma_bits(len(messages))
            total += sum(message.bits(encoding) for message in messages)
        return total

    @property
    def object_count(self) -> int:
        """How many objects this frame carries payload for."""
        return len(self.entries)

    @property
    def message_count(self) -> int:
        """Total multiplexed payload messages across all entries."""
        return sum(len(messages) for _, messages in self.entries)

    def __repr__(self) -> str:
        inner = ", ".join(f"{index}:{len(messages)}msg"
                          for index, messages in self.entries)
        return f"BatchFrame({inner})"


class _MuxObject:
    """One multiplexed per-object coroutine and its demux inbox."""

    __slots__ = ("index", "gen", "inbox", "pending", "done", "result")

    def __init__(self, index: int, gen: ProtocolCoroutine) -> None:
        self.index = index
        self.gen = gen
        self.inbox: Deque[Message] = deque()
        self.pending: Any = None
        self.done = False
        self.result: Any = None

    def prime(self) -> None:
        try:
            self.pending = next(self.gen)
        except StopIteration as stop:
            self.done, self.result = True, stop.value

    def _advance(self, value: Any) -> None:
        try:
            self.pending = self.gen.send(value)
        except StopIteration as stop:
            self.done, self.result = True, stop.value
            self.pending = None

    def run_turn(self, buffer: List[Tuple[int, List[Message]]]) -> int:
        """Advance until the object parks on an empty ``Recv`` or finishes.

        Sends append to ``buffer`` under this object's entry; returns the
        number of effects resolved (for the shared step budget).
        """
        steps = 0
        entry: Optional[List[Message]] = None
        while not self.done:
            effect = self.pending
            if isinstance(effect, Send):
                if entry is None:
                    entry = []
                    buffer.append((self.index, entry))
                entry.append(effect.message)
                self._advance(None)
            elif isinstance(effect, (Poll, Drain)):
                self._advance(self.inbox.popleft() if self.inbox else None)
            elif isinstance(effect, Recv):
                if not self.inbox:
                    return steps  # parked until the next frame demuxes
                self._advance(self.inbox.popleft())
            else:  # pragma: no cover - defensive
                raise SessionError(
                    f"unknown effect {effect!r} in batched object "
                    f"{self.index}")
            steps += 1
        return steps


def batch_party(generators: Sequence[ProtocolCoroutine], *,
                initiator: bool,
                max_steps: int = 10_000_000,
                on_frame: Optional[Callable[[BatchFrame], None]] = None
                ) -> ProtocolCoroutine:
    """Wrap per-object coroutines into one frame-speaking composite.

    The composite returns the list of per-object coroutine results, in
    input order.  ``initiator=True`` runs its first turn immediately (the
    sender side); ``initiator=False`` waits for the first frame (the
    receiver side).  ``on_frame`` observes every outgoing frame — drivers
    use it to fill :attr:`~repro.net.stats.TransferStats.frames`.
    """
    objects = [_MuxObject(index, gen)
               for index, gen in enumerate(generators)]
    if not objects:
        raise SessionError("batch_party needs at least one object")
    for obj in objects:
        obj.prime()
    steps = 0
    waiting = not initiator
    try:
        while True:
            if not waiting:
                buffer: List[Tuple[int, List[Message]]] = []
                for obj in objects:
                    steps += obj.run_turn(buffer)
                    if steps > max_steps:
                        raise SessionError(
                            f"batched session exceeded {max_steps} steps")
                if buffer:
                    frame = BatchFrame(tuple(
                        (index, tuple(messages))
                        for index, messages in buffer))
                    if on_frame is not None:
                        on_frame(frame)
                    yield Send(frame)
            waiting = False
            if all(obj.done for obj in objects):
                return [obj.result for obj in objects]
            frame = yield Recv()
            if not isinstance(frame, BatchFrame):  # pragma: no cover
                raise SessionError(
                    f"batch party expected a BatchFrame, got {frame!r}")
            for index, messages in frame.entries:
                objects[index].inbox.extend(messages)
    except GeneratorExit:
        # Closed mid-session (the reliable transport aborting an attempt):
        # propagate the close to every live per-object coroutine so each
        # runs its own abort handling (e.g. SYNCS segment sealing).
        for obj in objects:
            if not obj.done:
                obj.gen.close()
        raise


def run_batch(pairs: Iterable[Tuple[ProtocolCoroutine, ProtocolCoroutine]],
              *, encoding: Encoding = DEFAULT_ENCODING,
              max_steps: int = 10_000_000,
              trace: bool = False) -> SessionResult:
    """Run one framed batch under the instant driver.

    ``pairs`` holds one ``(sender, receiver)`` coroutine pair per object.
    Returns a :class:`~repro.protocols.session.SessionResult` whose
    ``sender_result``/``receiver_result`` are per-object lists and whose
    stats carry frame counters.  For the timed counterpart see
    :func:`repro.net.runner.launch`.
    """
    pair_list = list(pairs)
    frames: List[BatchFrame] = []
    sender = batch_party([s for s, _ in pair_list], initiator=True,
                         max_steps=max_steps, on_frame=frames.append)
    receiver = batch_party([r for _, r in pair_list], initiator=False,
                           max_steps=max_steps, on_frame=frames.append)
    result = run_session(sender, receiver, encoding=encoding,
                         max_steps=max_steps, trace=trace,
                         span_name="BATCH")
    for frame in frames:
        result.stats.note_frame(frame.object_count)
    return result
