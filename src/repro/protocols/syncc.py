"""SYNCC (Algorithm 3): synchronization of conflict rotating vectors.

SYNCB breaks after reconciliation because merged elements rotate to the
front with unchanged values and then *hide* genuinely new elements behind
them (the paper's θ₁/θ₂/θ₃ example).  SYNCC fixes this with the conflict
bit: every element modified during a reconciliation is tagged, and a tagged
element that the receiver already knows is *skipped over* instead of
terminating the session.  Only an untagged known element proves that the
rest of ``≺_b`` is old news and halts.

The price is Γ — tagged-but-known elements that cross the wire anyway —
making SYNCC O(|Δ|+|Γ|): optimal only when conflicts are rare (SRV removes
the Γ term).

The receiver must know up front whether this synchronization is a
reconciliation (``reconcile ← a ∥ b``); in a deployment that verdict comes
from the COMPARE exchange that precedes every synchronization, so the
coroutine takes it as a parameter and the convenience wrapper
:func:`sync_crv` computes it.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.conflict import ConflictRotatingVector
from repro.net.wire import DEFAULT_ENCODING, Encoding
from repro.obs import trace as obs
from repro.obs.trace import Tracer
from repro.protocols.effects import Drain, Poll, Recv, Send
from repro.protocols.messages import ElementCMsg, Halt, Message
from repro.protocols.reports import VectorReceiverReport, VectorSenderReport
from repro.protocols.session import SessionResult, run_session

_HALT_BITS = 2  # Table 2: the CRV bound is n·log(4mn) + 2.


def syncc_sender(b: ConflictRotatingVector, *, tracer: Tracer | None = None
                 ) -> Generator[Any, Any, VectorSenderReport]:
    """The sending side of ``SYNCC_b(a)``: SYNCB's sender with triples."""
    report = VectorSenderReport()
    element = b.first()
    if element is None:
        yield Send(Halt(_HALT_BITS))
        report.reached_end = True
        return report
    while True:
        yield Send(ElementCMsg(element.site, element.value, element.conflict))
        report.elements_sent += 1
        if element.next is None:
            yield Send(Halt(_HALT_BITS))
            report.reached_end = True
            return report
        element = element.next
        incoming = yield Poll()
        if isinstance(incoming, Halt):
            if tracer is not None:
                tracer.event(obs.CONTROL, party="sender",
                             signal="halt_received")
            report.halted_by_peer = True
            return report


def syncc_receiver(a: ConflictRotatingVector, *, reconcile: bool,
                   tracer: Tracer | None = None
                   ) -> Generator[Any, Any, VectorReceiverReport]:
    """The receiving side of ``SYNCC_b(a)``; mutates ``a`` in place.

    Args:
        a: the vector to synchronize.
        reconcile: Algorithm 3 line 2, ``reconcile ← a ∥ b``.  While true,
            every element modified by this session gets its conflict bit
            set, so it can never hide unmodified elements from a later sync.
    """
    report = VectorReceiverReport()
    prev: str | None = None
    while True:
        message: Message = yield Recv()
        if isinstance(message, Halt):
            if tracer is not None:
                tracer.event(obs.CONTROL, party="receiver",
                             signal="halt_received")
            report.received_halt = True
            return report
        assert isinstance(message, ElementCMsg)
        site, value, conflict = message.site, message.value, message.conflict
        if value <= a[site]:
            report.redundant_elements += 1
            if tracer is not None:
                tracer.event(obs.GAMMA_RETRANSMIT, party="receiver",
                             site=site, value=value, conflict=conflict)
            if conflict:
                # A tagged element may hide newer ones behind it: keep going.
                reconcile = True
                continue
            while True:
                extra = yield Drain()
                if extra is None:
                    break
                if isinstance(extra, Halt):
                    report.received_halt = True
                    return report
                report.ignored_elements += 1
            yield Send(Halt(_HALT_BITS))
            if tracer is not None:
                tracer.event(obs.CONTROL, party="receiver",
                             signal="halt_sent")
            report.sent_halt = True
            return report
        element = a.order.rotate_after(prev, site)
        prev = site
        element.value = value
        element.conflict = True if reconcile else conflict
        report.new_elements += 1
        if tracer is not None:
            tracer.event(obs.DELTA_ELEMENT, party="receiver",
                         site=site, value=value)
            if element.conflict:
                tracer.event(obs.CONFLICT_BIT, party="receiver", site=site,
                             inherited=conflict)


def sync_crv(a: ConflictRotatingVector, b: ConflictRotatingVector, *,
             encoding: Encoding = DEFAULT_ENCODING,
             reconcile: bool | None = None,
             tracer: Tracer | None = None) -> SessionResult:
    """Run ``SYNCC_b(a)`` under the instant driver, mutating ``a``.

    ``reconcile`` defaults to the Algorithm 1 verdict ``a ∥ b`` (what the
    preceding COMPARE exchange would have established).  Note that after a
    reconciliation the *hosting site* is expected to increment its own
    element as a separate update (§2.2); the replication layer does that,
    not this protocol.
    """
    if reconcile is None:
        reconcile = a.compare(b).is_concurrent
    return run_session(syncc_sender(b, tracer=tracer),
                       syncc_receiver(a, reconcile=reconcile, tracer=tracer),
                       encoding=encoding, tracer=tracer, span_name="SYNCC")
