"""SYNCS (Algorithm 4): synchronization of skip rotating vectors.

SYNCC retransmits Γ — conflict-tagged elements the receiver already knows.
SRV's segment bits recover the structure CRV lost: a vector is a series of
*segments* (the prefixing segments of its CRG ancestry), and knowing any one
element of a segment means knowing the whole segment.  So when the receiver
sees a known, tagged element it answers ``(SKIP, segs)`` naming the segment,
and the sender fast-forwards to that segment's end instead of streaming the
rest of it: O(|Δ|+γ) communication, optimal by Theorem 5.1.

Pipelining subtleties handled here (§4 and DESIGN.md):

* Both parties count segment boundaries (``segs``); the sender honors a
  ``SKIP`` only when its argument matches its own count, so stale skips that
  raced past a boundary are ignored.
* The sender transmits the **terminator element** (segment bit = 1) of a
  skipped segment.  The paper omits the receiver's ``segs`` maintenance "for
  brevity"; delivering every boundary marker is the one-element-per-skip
  device that keeps the two counters synchronized under arbitrary pipelining
  overshoot, and it preserves O(|Δ|+γ) since it is O(1) per skip.
* The receiver's ``skipping`` flag suppresses duplicate SKIPs and discards
  the overshoot elements of a segment already skipped; it clears at the next
  boundary or at the next genuinely new element.
* A known tagged element that *is* a terminator needs no SKIP at all — the
  segment ends with it — so none is sent.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.skip import SkipRotatingVector
from repro.net.wire import DEFAULT_ENCODING, Encoding
from repro.obs import trace as obs
from repro.obs.trace import Tracer
from repro.protocols.effects import Drain, Poll, Recv, Send
from repro.protocols.messages import ElementSMsg, Halt, Message, Skip
from repro.protocols.reports import VectorReceiverReport, VectorSenderReport
from repro.protocols.session import SessionResult, run_session

_HALT_BITS = 1  # Table 2: the SRV bound is n·log(8mn) + n·log(2n) + 1.


def syncs_sender(b: SkipRotatingVector, *,
                 forward_terminators: bool = True,
                 tracer: Tracer | None = None
                 ) -> Generator[Any, Any, VectorSenderReport]:
    """The sending side of ``SYNCS_b(a)``.

    ``forward_terminators=False`` disables the terminator-forwarding
    clarification (see the module docstring) and follows Algorithm 4 to
    the letter: a skipped segment's boundary element is suppressed too.
    The result stays *correct* but the receiver's ``segs`` counter falls
    behind after every honored skip, so later SKIPs arrive stale and
    whole known segments stream redundantly — the ablation benchmark
    measures exactly that cost.
    """
    report = VectorSenderReport()
    element = b.first()
    if element is None:
        yield Send(Halt(_HALT_BITS))
        report.reached_end = True
        return report
    segs = 0
    skipping = False
    while True:
        # Drain asynchronous control traffic before touching the next element.
        while True:
            incoming = yield Poll()
            if incoming is None:
                break
            if isinstance(incoming, Halt):
                if tracer is not None:
                    tracer.event(obs.CONTROL, party="sender",
                                 signal="halt_received")
                report.halted_by_peer = True
                return report
            if (isinstance(incoming, Skip) and incoming.segs == segs
                    and not skipping):
                skipping = True
                report.skips_honored += 1
                if tracer is not None:
                    tracer.event(obs.GAMMA_SKIP, party="sender", segs=segs)
            elif isinstance(incoming, Skip) and tracer is not None:
                tracer.event(obs.CONTROL, party="sender",
                             signal="stale_skip", segs=incoming.segs)
            # Anything else is a stale SKIP whose segment already streamed.
        if not skipping or (element.segment and forward_terminators):
            # Terminators are sent even inside a skip so the receiver sees
            # every boundary and the two segs counters stay in lock-step.
            yield Send(ElementSMsg(element.site, element.value,
                                   element.conflict, element.segment))
            report.elements_sent += 1
        else:
            report.elements_suppressed += 1
            if tracer is not None:
                tracer.event("element_suppressed", party="sender",
                             site=element.site)
        if element.segment:
            segs += 1
            skipping = False
        if element.next is None:
            yield Send(Halt(_HALT_BITS))
            report.reached_end = True
            return report
        element = element.next


def syncs_receiver(a: SkipRotatingVector, *, reconcile: bool,
                   tracer: Tracer | None = None
                   ) -> Generator[Any, Any, VectorReceiverReport]:
    """The receiving side of ``SYNCS_b(a)``; mutates ``a`` in place."""
    report = VectorReceiverReport()
    prev: str | None = None
    segs = 0
    skipping = False
    try:
        while True:
            message: Message = yield Recv()
            if isinstance(message, Halt):
                # The sender exhausted ⌈b⌉.  During a reconciliation the run of
                # freshly written elements still needs its terminator: what
                # follows them in ≺_a is causally unrelated, and without the
                # boundary a later local update would fuse the two runs into
                # one (unskippable-safe but also *unsafe*) segment.
                if reconcile and prev is not None:
                    boundary = a.order.get(prev)
                    assert boundary is not None
                    boundary.segment = True
                    a.order.touch()
                if tracer is not None:
                    tracer.event(obs.CONTROL, party="receiver",
                                 signal="halt_received")
                report.received_halt = True
                return report
            assert isinstance(message, ElementSMsg)
            site, value = message.site, message.value
            if value <= a[site]:
                if skipping:
                    report.ignored_elements += 1
                else:
                    report.redundant_elements += 1
                    if tracer is not None:
                        tracer.event(obs.GAMMA_RETRANSMIT, party="receiver",
                                     site=site, value=value,
                                     conflict=message.conflict)
                    # A skip (or halt) cuts the run of freshly written elements:
                    # the last one written now ends a segment of ≺_a (§4).
                    if reconcile and prev is not None:
                        boundary = a.order.get(prev)
                        assert boundary is not None
                        boundary.segment = True
                        a.order.touch()
                    if message.conflict:
                        reconcile = True
                        if not message.segment:
                            yield Send(Skip(segs))
                            report.skips_issued += 1
                            skipping = True
                            if tracer is not None:
                                tracer.event(obs.CONTROL, party="receiver",
                                             signal="skip_sent", segs=segs)
                        else:
                            # This element terminates its segment — nothing
                            # left to skip, keep reading.  Still one known
                            # segment consumed at O(1) cost (γ accounting).
                            report.inline_segments += 1
                            if tracer is not None:
                                tracer.event("inline_segment", party="receiver",
                                             segs=segs)
                    else:
                        while True:
                            extra = yield Drain()
                            if extra is None:
                                break
                            if isinstance(extra, Halt):
                                report.received_halt = True
                                return report
                            report.ignored_elements += 1
                        yield Send(Halt(_HALT_BITS))
                        if tracer is not None:
                            tracer.event(obs.CONTROL, party="receiver",
                                         signal="halt_sent")
                        report.sent_halt = True
                        return report
            else:
                skipping = False
                element = a.order.rotate_after(prev, site)
                prev = site
                element.value = value
                element.conflict = True if reconcile else message.conflict
                element.segment = message.segment
                report.new_elements += 1
                if tracer is not None:
                    tracer.event(obs.DELTA_ELEMENT, party="receiver",
                                 site=site, value=value)
                    if element.conflict:
                        tracer.event(obs.CONFLICT_BIT, party="receiver",
                                     site=site, inherited=message.conflict)
            if message.segment:
                segs += 1
                skipping = False
    except GeneratorExit:
        # Closed mid-session (the reliable transport aborting an
        # attempt).  The run of freshly written elements still needs
        # its segment terminator, exactly as on Halt: without the
        # boundary, causally unrelated successors in ≺_a would fuse
        # with the run into one unsafe segment.  Note the torn vector
        # remains causally *incomplete* regardless (it holds Δ's newest
        # elements without their past) — resumable callers must restore
        # a pre-session snapshot, per SessionOptions.rebuild's contract;
        # the seal only keeps ≺_a structurally sane for direct users.
        if reconcile and prev is not None:
            boundary = a.order.get(prev)
            assert boundary is not None
            boundary.segment = True
            a.order.touch()
        raise


def sync_srv(a: SkipRotatingVector, b: SkipRotatingVector, *,
             encoding: Encoding = DEFAULT_ENCODING,
             reconcile: bool | None = None,
             tracer: Tracer | None = None) -> SessionResult:
    """Run ``SYNCS_b(a)`` under the instant driver, mutating ``a``.

    ``reconcile`` defaults to the Algorithm 1 verdict ``a ∥ b``.  As with
    SYNCC, the post-reconciliation self-increment is the replication
    layer's job.
    """
    if reconcile is None:
        reconcile = a.compare(b).is_concurrent
    return run_session(syncs_sender(b, tracer=tracer),
                       syncs_receiver(a, reconcile=reconcile, tracer=tracer),
                       encoding=encoding, tracer=tracer, span_name="SYNCS")
