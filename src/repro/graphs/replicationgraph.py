"""Replication graphs (§4): the system-wide history of replica versions.

A replication graph of an object is a dag in which each node represents a
class of *identical replicas* and records their (rotating) vector.  Nodes
with one parent result from a single update on the parent version; nodes
with two parents result from conflict reconciliation.  The graph has a
single source (the initial replica); once the system quiesces into eventual
consistency it also has a single sink.

This structure is *analytic*: no site stores it (storing it would violate
the O(n) bound of Theorem 5.1 — that is exactly the theorem's point).  The
reproduction builds it alongside scripted and generated workloads to

* reproduce Figure 1 node-for-node,
* coalesce it into the CRG of Figure 2 (:mod:`repro.graphs.crg`), and
* evaluate the Π sets that bound the measured γ of SYNCS sessions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import GraphError

#: A structural snapshot of a rotating vector: ``(site, value)`` pairs in
#: ascending ≺ order (front first).  Plain version vectors use a canonical
#: sorted order instead.
VectorSnapshot = Tuple[Tuple[str, int], ...]


@dataclass
class VersionNode:
    """One replica-version class in the replication graph."""

    node_id: int
    vector: VectorSnapshot
    left_parent: Optional[int] = None
    right_parent: Optional[int] = None
    #: Sites currently hosting a replica of this exact version (labels in
    #: Figure 1); informational only.
    sites: Set[str] = field(default_factory=set)

    @property
    def parents(self) -> Tuple[int, ...]:
        return tuple(p for p in (self.left_parent, self.right_parent)
                     if p is not None)

    @property
    def is_merge(self) -> bool:
        return self.left_parent is not None and self.right_parent is not None

    @property
    def is_source(self) -> bool:
        return self.left_parent is None and self.right_parent is None

    def values(self) -> Dict[str, int]:
        """The vector as a plain ``{site: value}`` map."""
        return dict(self.vector)


class ReplicationGraph:
    """The evolving version dag of one replicated object."""

    def __init__(self) -> None:
        self._nodes: Dict[int, VersionNode] = {}
        self._children: Dict[int, List[int]] = {}
        self._next_id = 1
        self._listeners: List[Callable[[VersionNode], None]] = []

    def subscribe(self, listener: Callable[[VersionNode], None]) -> None:
        """Call ``listener(node)`` after every node insertion.

        The incremental segment index registers here so it sees exactly the
        nodes an update/reconcile touches, instead of rescanning the graph.
        """
        self._listeners.append(listener)

    # -- construction -------------------------------------------------------------

    def _new_node(self, vector: Sequence[Tuple[str, int]],
                  left: Optional[int], right: Optional[int],
                  node_id: Optional[int]) -> VersionNode:
        if node_id is None:
            node_id = self._next_id
        if node_id in self._nodes:
            raise GraphError(f"node id {node_id} already used")
        self._next_id = max(self._next_id, node_id) + 1
        for parent in (left, right):
            if parent is not None and parent not in self._nodes:
                raise GraphError(f"parent {parent} not in graph")
        node = VersionNode(node_id, tuple(vector), left, right)
        self._nodes[node_id] = node
        self._children[node_id] = []
        for parent in node.parents:
            self._children[parent].append(node_id)
        for listener in self._listeners:
            listener(node)
        return node

    def add_initial(self, vector: Sequence[Tuple[str, int]], *,
                    node_id: Optional[int] = None) -> VersionNode:
        """The source node: the object's initial replica version."""
        if self._nodes:
            raise GraphError("replication graph already has a source")
        return self._new_node(vector, None, None, node_id)

    def add_update(self, parent: int, vector: Sequence[Tuple[str, int]], *,
                   node_id: Optional[int] = None) -> VersionNode:
        """A version produced by a single update on ``parent``."""
        return self._new_node(vector, parent, None, node_id)

    def add_merge(self, left: int, right: int,
                  vector: Sequence[Tuple[str, int]], *,
                  node_id: Optional[int] = None) -> VersionNode:
        """A version produced by reconciling two concurrent versions."""
        if left == right:
            raise GraphError("merge parents must differ")
        return self._new_node(vector, left, right, node_id)

    # -- lookups --------------------------------------------------------------------

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, node_id: int) -> VersionNode:
        """The version node ``node_id``; raises GraphError if absent."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphError(f"no node {node_id}") from None

    def nodes(self) -> List[VersionNode]:
        """All version nodes, by ascending id (parents before children)."""
        return [self._nodes[i] for i in sorted(self._nodes)]

    def children(self, node_id: int) -> List[int]:
        """Ids of the node's children, in creation order."""
        return list(self._children.get(node_id, ()))

    def source(self) -> VersionNode:
        """The unique source (initial replica) node."""
        sources = [n for n in self._nodes.values() if n.is_source]
        if len(sources) != 1:
            raise GraphError(f"expected 1 source, found {len(sources)}")
        return sources[0]

    def sinks(self) -> List[int]:
        """Ids of childless nodes (current frontier versions)."""
        return sorted(i for i in self._nodes if not self._children[i])

    def ancestors(self, node_id: int) -> Set[int]:
        """All proper ancestors of ``node_id``."""
        result: Set[int] = set()
        stack = list(self.node(node_id).parents)
        while stack:
            current = stack.pop()
            if current in result:
                continue
            result.add(current)
            stack.extend(self._nodes[current].parents)
        return result

    def label(self, node_id: int, site: str) -> None:
        """Record that ``site`` currently hosts this version."""
        for node in self._nodes.values():
            node.sites.discard(site)
        self.node(node_id).sites.add(site)
