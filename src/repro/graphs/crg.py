"""Coalesced replication graphs (CRG), prefixing segments, and Π sets (§4).

A CRG is a replication graph in which consecutive single-parent nodes, each
with at most one child, merge into one node whose vector is the youngest of
the chain.  In a CRG every single-parent node *prefixes* its parent's
vector with a unique run of elements — its **prefixing segment** — and a
vector is nothing but a series of such segments.  Segments have the three
properties (§4) that justify SYNCS's skipping:

i.   element sets are unique across segments,
ii.  intra-segment order persists from vector to vector,
iii. segments only ever shrink.

``Π_v`` is the set of non-merge CRG nodes among v's node and its ancestors;
the segments of v (including vanished ones) map bijectively onto ``Π_v``,
and Theorem 5.1's lower bound — as well as the γ of any concrete
``SYNCS_b(a)`` run, which satisfies ``γ ≤ |Π_a ∩ Π_b|`` — is stated in
terms of it.  The benchmark for experiment E6 checks that inequality on
live sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import GraphError
from repro.graphs.replicationgraph import (ReplicationGraph, VectorSnapshot,
                                           VersionNode)


@dataclass
class CRGNode:
    """One coalesced node: a maximal chain of single-parent versions."""

    #: Original replication-graph node ids, oldest first.
    members: Tuple[int, ...]
    #: Vector of the youngest member (the chain's final version).
    vector: VectorSnapshot
    left_parent: Optional[int] = None   # id = youngest member of parent node
    right_parent: Optional[int] = None
    is_merge: bool = False

    @property
    def node_id(self) -> int:
        """Canonical id: the youngest member."""
        return self.members[-1]

    @property
    def parents(self) -> Tuple[int, ...]:
        return tuple(p for p in (self.left_parent, self.right_parent)
                     if p is not None)


class CoalescedGraph:
    """The CRG of a replication graph, with segment analytics."""

    def __init__(self, nodes: Dict[int, CRGNode],
                 member_map: Dict[int, int]) -> None:
        self._nodes = nodes
        #: original node id -> canonical id of its coalesced node
        self._member_map = member_map
        # Per-instance memos: a CoalescedGraph never mutates after
        # construction, so Π sets and prefixing segments are computed at
        # most once per node.  SegmentIndex seeds these across rebuilds.
        self._pi_memo: Dict[int, FrozenSet[int]] = {}
        self._seg_memo: Dict[int, Tuple[Tuple[str, int], ...]] = {}

    def adopt_memos(self, pi_memo: Dict[int, FrozenSet[int]],
                    seg_memo: Dict[int, Tuple[Tuple[str, int], ...]]) -> None:
        """Seed the memo tables with entries known to still be valid.

        Used by :class:`~repro.graphs.segindex.SegmentIndex` to carry
        surviving cache entries across incremental rebuilds; callers are
        responsible for having invalidated anything a graph change touched.
        """
        self._pi_memo.update(pi_memo)
        self._seg_memo.update(seg_memo)

    # -- lookups ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def node(self, node_id: int) -> CRGNode:
        """The CRG node with canonical id ``node_id``."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphError(f"no CRG node {node_id}") from None

    def nodes(self) -> List[CRGNode]:
        """All CRG nodes, by canonical id."""
        return [self._nodes[i] for i in sorted(self._nodes)]

    def canonical(self, original_id: int) -> int:
        """The CRG node a replication-graph node coalesced into."""
        try:
            return self._member_map[original_id]
        except KeyError:
            raise GraphError(f"no such original node {original_id}") from None

    # -- segments -------------------------------------------------------------------

    def prefixing_segment(self, node_id: int) -> List[Tuple[str, int]]:
        """The segment a single-parent node prefixes its parent with.

        The run of front elements of the node's vector whose (site, value)
        pair differs from the parent's vector; for the source, the whole
        vector.  Merge nodes create no segments and raise.
        """
        cached = self._seg_memo.get(node_id)
        if cached is not None:
            return list(cached)
        node = self.node(node_id)
        if node.is_merge:
            raise GraphError(f"CRG node {node_id} is a merge: no segment")
        if node.left_parent is None:
            segment = list(node.vector)
        else:
            parent_values = dict(self.node(node.left_parent).vector)
            segment = []
            for site, value in node.vector:
                if parent_values.get(site) == value:
                    break
                segment.append((site, value))
        self._seg_memo[node_id] = tuple(segment)
        return segment

    def pi_set(self, node_id: int) -> Set[int]:
        """``Π_v``: the node (if non-merge) plus its non-merge ancestors.

        The segments of v's vector — including vanished ones — map
        bijectively onto this set (§4.1).  Memoized per node: ancestors'
        Π sets are shared sub-results, so a sweep over the whole graph is
        linear in arcs instead of quadratic.
        """
        memo = self._pi_memo
        cached = memo.get(node_id)
        if cached is None:
            self.node(node_id)  # raise early on unknown ids
            stack: List[int] = [node_id]
            while stack:
                current = stack[-1]
                if current in memo:
                    stack.pop()
                    continue
                node = self.node(current)
                pending = [p for p in node.parents if p not in memo]
                if pending:
                    stack.extend(pending)
                    continue
                stack.pop()
                result: Set[int] = set()
                for parent in node.parents:
                    result |= memo[parent]
                if not node.is_merge:
                    result.add(current)
                memo[current] = frozenset(result)
            cached = memo[node_id]
        return set(cached)

    def pi_set_uncached(self, node_id: int) -> Set[int]:
        """Reference Π computation by plain ancestor walk (the memo's oracle)."""
        start = self.node(node_id)
        result: Set[int] = set()
        stack: List[int] = [start.node_id]
        seen: Set[int] = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            node = self.node(current)
            if not node.is_merge:
                result.add(current)
            stack.extend(node.parents)
        return result

    def gamma_upper_bound(self, a_node: int, b_node: int) -> int:
        """``|Π_a ∩ Π_b|``: Theorem 5.1's cap on SYNCS_b(a) skips."""
        return len(self.pi_set(a_node) & self.pi_set(b_node))


def coalesce(graph: ReplicationGraph) -> CoalescedGraph:
    """Coalesce consecutive single-parent, single-child runs (Figure 2)."""
    # Identify chain heads: a node starts a coalesced node unless it is a
    # single-parent node whose parent is also single-child (then it extends
    # the parent's chain).
    def extends_parent(node: VersionNode) -> bool:
        # Strictly per §4: chains contain single-parent nodes only (not the
        # source, not merges), each member with at most one child.
        if node.is_merge or node.is_source:
            return False
        if len(graph.children(node.node_id)) > 1:
            return False
        parent_id = node.left_parent
        assert parent_id is not None
        if len(graph.children(parent_id)) != 1:
            return False
        parent = graph.node(parent_id)
        return not (parent.is_merge or parent.is_source)

    chains: Dict[int, List[int]] = {}   # head id -> member ids oldest-first
    head_of: Dict[int, int] = {}
    for node in graph.nodes():          # ids ascend, parents precede children
        if extends_parent(node):
            head = head_of[node.left_parent]  # type: ignore[index]
            chains[head].append(node.node_id)
            head_of[node.node_id] = head
        else:
            chains[node.node_id] = [node.node_id]
            head_of[node.node_id] = node.node_id

    nodes: Dict[int, CRGNode] = {}
    member_map: Dict[int, int] = {}
    for head, members in chains.items():
        youngest = graph.node(members[-1])
        oldest = graph.node(members[0])

        def canonical_parent(parent_id: Optional[int]) -> Optional[int]:
            if parent_id is None:
                return None
            parent_head = head_of[parent_id]
            return chains[parent_head][-1]

        crg_node = CRGNode(
            members=tuple(members),
            vector=youngest.vector,
            left_parent=canonical_parent(oldest.left_parent),
            right_parent=canonical_parent(oldest.right_parent),
            is_merge=oldest.is_merge,
        )
        nodes[crg_node.node_id] = crg_node
        for member in members:
            member_map[member] = crg_node.node_id
    return CoalescedGraph(nodes, member_map)
