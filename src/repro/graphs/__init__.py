"""Graph substrates: causal graphs, replication graphs, and CRGs.

* :mod:`repro.graphs.causalgraph` — per-replica operation dags (§6).
* :mod:`repro.graphs.replicationgraph` — the system-wide replication graph
  whose nodes are identical-replica classes (§4).
* :mod:`repro.graphs.crg` — coalesced replication graphs, prefixing
  segments, Π sets, and the analytic γ used by Theorem 5.1.
"""

from repro.graphs.causalgraph import CausalGraph, GraphNode, build_graph
from repro.graphs.crg import CoalescedGraph, CRGNode, coalesce
from repro.graphs.render import (render_causal_graph, render_segments,
                                 render_replication_graph,
                                 vector_orders_table)
from repro.graphs.replicationgraph import ReplicationGraph, VersionNode

__all__ = [
    "CRGNode",
    "CausalGraph",
    "CoalescedGraph",
    "GraphNode",
    "ReplicationGraph",
    "VersionNode",
    "build_graph",
    "coalesce",
    "render_causal_graph",
    "render_replication_graph",
    "render_segments",
    "vector_orders_table",
]
