"""Incremental segment index over a growing replication graph.

:func:`repro.graphs.crg.coalesce` rebuilds the whole CRG — chains, Π
sets, prefixing segments — from scratch on every call.  That is fine for
one-shot analysis but quadratic for a live workload that re-checks the
γ ≤ |Π_a ∩ Π_b| bound (E6) or re-derives segments after every update:
each update or reconciliation touches a *constant* number of chains, yet
the full rebuild re-walks all of them.

:class:`SegmentIndex` maintains the coalesced structure *incrementally*.
It subscribes to the replication graph's insertion feed and, per new
node, applies the only two structural events §4 coalescing admits:

* **extension** — a single-parent node whose parent is single-child joins
  the parent's chain; the chain's canonical id moves to the new node;
* **split** — a node that gains a second child can neither extend its
  parent nor be extended, so its chain cuts into (up to) three pieces.

Every event yields the exact set of *dirty canonical ids*; cached Π sets
and prefixing segments are dropped only for those ids and for entries
whose Π set contains one (tracked by a reverse-dependency table).  All
other memo entries survive — that is the dirty-tracking contract the
property tests verify against the full-rebuild oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.graphs.crg import CoalescedGraph, CRGNode, coalesce
from repro.graphs.replicationgraph import ReplicationGraph, VersionNode


@dataclass
class SegmentIndexStats:
    """Observability counters for cache behaviour."""

    nodes_absorbed: int = 0
    chain_extensions: int = 0
    chain_splits: int = 0
    invalidations: int = 0
    rebuilds: int = 0
    #: Canonical ids whose cached entries were dropped, per absorb (for
    #: tests asserting invalidation is *targeted*, not wholesale).
    last_dirty: Set[int] = field(default_factory=set)


class SegmentIndex:
    """Dirty-tracked CRG view of one :class:`ReplicationGraph`.

    >>> graph = ReplicationGraph()
    >>> index = SegmentIndex(graph)
    >>> root = graph.add_initial([("A", 1)])
    >>> child = graph.add_update(root.node_id, [("A", 2)])
    >>> index.pi_set(child.node_id) == {child.node_id}
    True
    """

    def __init__(self, graph: ReplicationGraph) -> None:
        self._graph = graph
        #: chain head (oldest member) -> member ids, oldest first
        self._chains: Dict[int, List[int]] = {}
        #: member id -> its chain's head
        self._head_of: Dict[int, int] = {}
        self._pi_memo: Dict[int, FrozenSet[int]] = {}
        self._seg_memo: Dict[int, Tuple[Tuple[str, int], ...]] = {}
        #: canonical id -> canonical ids whose cached Π set contains it
        self._pi_dependents: Dict[int, Set[int]] = {}
        self._crg: CoalescedGraph | None = None
        self.stats = SegmentIndexStats()
        # Bootstrap from a batch coalesce: replaying an already-built graph
        # through _absorb would see *final* child counts, not the counts at
        # each node's insertion time.  Incrementality starts now.
        for crg_node in coalesce(graph).nodes():
            members = list(crg_node.members)
            self._chains[members[0]] = members
            for member in members:
                self._head_of[member] = members[0]
        graph.subscribe(self._absorb)

    # -- incremental maintenance -------------------------------------------------

    def _absorb(self, node: VersionNode) -> None:
        dirty: Set[int] = set()
        for parent_id in node.parents:
            # The new node is already linked, so a count of 2 means the
            # parent just went single-child -> multi-child: any chain it
            # sat in must cut around it.
            if len(self._graph.children(parent_id)) == 2:
                self._split_around(parent_id, dirty)
        if self._extends_parent(node):
            head = self._head_of[node.left_parent]  # type: ignore[index]
            members = self._chains[head]
            dirty.add(members[-1])  # canonical id moves to the new node
            members.append(node.node_id)
            self._head_of[node.node_id] = head
            self.stats.chain_extensions += 1
        else:
            self._chains[node.node_id] = [node.node_id]
            self._head_of[node.node_id] = node.node_id
        self.stats.nodes_absorbed += 1
        self._invalidate(dirty)

    def _extends_parent(self, node: VersionNode) -> bool:
        # Mirrors coalesce(): single-parent, at most one child, parent
        # single-child and neither merge nor source.  A freshly inserted
        # node has no children, so only the parent-side conditions bind.
        if node.is_merge or node.is_source:
            return False
        parent_id = node.left_parent
        assert parent_id is not None
        if len(self._graph.children(parent_id)) != 1:
            return False
        parent = self._graph.node(parent_id)
        return not (parent.is_merge or parent.is_source)

    def _split_around(self, member_id: int, dirty: Set[int]) -> None:
        """Cut ``member_id`` out of its chain (it gained a second child).

        §4 chains admit members with at most one child, so the member can
        no longer extend its predecessor nor be extended by its successor:
        the chain becomes (up to) three chains, and only their canonical
        ids are dirtied.
        """
        head = self._head_of[member_id]
        members = self._chains[head]
        if len(members) == 1:
            return
        index = members.index(member_id)
        dirty.add(members[-1])  # the old canonical id, whatever happens
        before, after = members[:index], members[index + 1:]
        del self._chains[head]
        for piece in (before, [member_id], after):
            if not piece:
                continue
            self._chains[piece[0]] = piece
            for member in piece:
                self._head_of[member] = piece[0]
            dirty.add(piece[-1])
        self.stats.chain_splits += 1

    def _invalidate(self, dirty: Set[int]) -> None:
        self._crg = None
        self.stats.last_dirty = set(dirty)
        for canonical in dirty:
            self._seg_memo.pop(canonical, None)
            self._pi_memo.pop(canonical, None)
            self.stats.invalidations += 1
            for dependent in self._pi_dependents.pop(canonical, ()):
                self._pi_memo.pop(dependent, None)

    # -- queries ---------------------------------------------------------------------

    def crg(self) -> CoalescedGraph:
        """The current coalesced graph, rebuilt lazily from the chains.

        The rebuild is O(#chains); surviving Π/segment memo entries are
        re-seeded so only dirtied nodes ever recompute.
        """
        if self._crg is None:
            nodes: Dict[int, CRGNode] = {}
            member_map: Dict[int, int] = {}
            for head, members in self._chains.items():
                youngest = self._graph.node(members[-1])
                oldest = self._graph.node(members[0])
                crg_node = CRGNode(
                    members=tuple(members),
                    vector=youngest.vector,
                    left_parent=self._canonical_parent(oldest.left_parent),
                    right_parent=self._canonical_parent(oldest.right_parent),
                    is_merge=oldest.is_merge,
                )
                nodes[crg_node.node_id] = crg_node
                for member in members:
                    member_map[member] = crg_node.node_id
            self._crg = CoalescedGraph(nodes, member_map)
            self._crg.adopt_memos(self._pi_memo, self._seg_memo)
            self.stats.rebuilds += 1
        return self._crg

    def _canonical_parent(self, parent_id: int | None) -> int | None:
        if parent_id is None:
            return None
        return self._chains[self._head_of[parent_id]][-1]

    def canonical(self, original_id: int) -> int:
        """The canonical (youngest-member) id of a node's chain."""
        return self._chains[self._head_of[original_id]][-1]

    def pi_set(self, original_id: int) -> Set[int]:
        """``Π`` of the node's coalesced chain, from the dirty-tracked memo."""
        crg = self.crg()
        canonical = self.canonical(original_id)
        result = crg.pi_set(canonical)
        self._harvest(crg)
        return result

    def prefixing_segment(self, original_id: int) -> List[Tuple[str, int]]:
        """The chain's prefixing segment, from the dirty-tracked memo."""
        crg = self.crg()
        result = crg.prefixing_segment(self.canonical(original_id))
        self._harvest(crg)
        return result

    def gamma_upper_bound(self, a_node: int, b_node: int) -> int:
        """``|Π_a ∩ Π_b|`` without re-walking unchanged ancestry."""
        return len(self.pi_set(a_node) & self.pi_set(b_node))

    def _harvest(self, crg: CoalescedGraph) -> None:
        """Pull fresh memo entries back out of the CRG view.

        New entries join the index's long-lived tables and the reverse
        dependency map so later invalidation stays targeted.
        """
        for canonical, pi in crg._pi_memo.items():
            if canonical not in self._pi_memo:
                self._pi_memo[canonical] = pi
                for member in pi:
                    if member != canonical:
                        self._pi_dependents.setdefault(
                            member, set()).add(canonical)
        for canonical, segment in crg._seg_memo.items():
            self._seg_memo.setdefault(canonical, segment)

    # -- verification -------------------------------------------------------------------

    def verify_against_rebuild(self) -> List[str]:
        """Compare the incremental state against a from-scratch coalesce.

        Returns human-readable mismatch descriptions (empty = coherent);
        the property tests drive random histories through this.
        """
        problems: List[str] = []
        oracle = coalesce(self._graph)
        mine = self.crg()
        oracle_nodes = {n.node_id: n for n in oracle.nodes()}
        mine_nodes = {n.node_id: n for n in mine.nodes()}
        if set(oracle_nodes) != set(mine_nodes):
            problems.append(
                f"canonical ids differ: only-oracle="
                f"{sorted(set(oracle_nodes) - set(mine_nodes))} "
                f"only-index={sorted(set(mine_nodes) - set(oracle_nodes))}")
            return problems
        for node_id, expected in oracle_nodes.items():
            actual = mine_nodes[node_id]
            if expected != actual:
                problems.append(f"node {node_id}: {expected} != {actual}")
                continue
            if not expected.is_merge:
                if (oracle.prefixing_segment(node_id)
                        != mine.prefixing_segment(node_id)):
                    problems.append(f"segment of {node_id} differs")
            if oracle.pi_set_uncached(node_id) != mine.pi_set(node_id):
                problems.append(f"pi set of {node_id} differs")
        return problems
