"""ASCII rendering of replication and causal graphs.

The paper's figures are dags; these helpers draw them as indented text
trees so benchmark reports, examples, and debugging sessions can *show*
the structures they verify (Figure 1's replication graph, Figure 3's
causal graphs), not just assert on them.

Rendering walks the dag top-down from the sources; a node with several
parents is drawn under its first parent and referenced by ``(↑ id)``
markers under the others, keeping the output linear in the graph size.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Sequence, Set

from repro.graphs.causalgraph import CausalGraph
from repro.graphs.replicationgraph import ReplicationGraph


def _render_dag(roots: Sequence[Hashable],
                children_of: Callable[[Hashable], List[Hashable]],
                label_of: Callable[[Hashable], str],
                short_label_of: Optional[Callable[[Hashable], str]] = None
                ) -> str:
    """Indented tree rendering with back-references for extra parents."""
    lines: List[str] = []
    drawn: Set[Hashable] = set()
    short = short_label_of or label_of

    def walk(node: Hashable, prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        if node in drawn:
            lines.append(f"{prefix}{connector}(↑ {short(node)})")
            return
        drawn.add(node)
        lines.append(f"{prefix}{connector}{label_of(node)}")
        child_prefix = prefix + ("" if is_root else
                                 ("   " if is_last else "│  "))
        children = children_of(node)
        for index, child in enumerate(children):
            walk(child, child_prefix, index == len(children) - 1, False)

    for index, root in enumerate(roots):
        walk(root, "", index == len(roots) - 1, True)
    return "\n".join(lines)


def render_causal_graph(graph: CausalGraph,
                        label: Optional[Callable[[Hashable], str]] = None
                        ) -> str:
    """Draw a causal graph from its sources down to the sinks.

    >>> from repro.graphs.causalgraph import build_graph
    >>> print(render_causal_graph(build_graph([(None, 1), (1, 2), (1, 3)])))
    1
    ├─ 2
    └─ 3
    """
    label_fn = label or (lambda node_id: str(node_id))

    def children_of(node_id: Hashable) -> List[Hashable]:
        return sorted(graph.children(node_id), key=repr)

    return _render_dag(graph.sources(), children_of, label_fn)


def render_replication_graph(graph: ReplicationGraph, *,
                             show_vectors: bool = True,
                             show_sites: bool = True) -> str:
    """Draw a replication graph with its vectors and host labels.

    Merge nodes (the figures' gray nodes) are marked ``[merge]``; host
    labels render as ``@{sites}``.
    """
    def label_of(node_id: Hashable) -> str:
        node = graph.node(node_id)  # type: ignore[arg-type]
        parts = [str(node.node_id)]
        if node.is_merge:
            parts.append("[merge]")
        if show_vectors:
            inner = ", ".join(f"{site}:{value}" for site, value in node.vector)
            parts.append(f"⟨{inner}⟩")
        if show_sites and node.sites:
            parts.append("@{" + ",".join(sorted(node.sites)) + "}")
        return " ".join(parts)

    def children_of(node_id: Hashable) -> List[Hashable]:
        return graph.children(node_id)  # type: ignore[arg-type]

    return _render_dag([graph.source().node_id], children_of, label_of,
                       short_label_of=str)


def render_segments(segments: Sequence[Sequence[tuple]]) -> str:
    """Draw a vector's segments in the paper's boxed style.

    >>> render_segments([[("C", 1)], [("B", 1), ("A", 1)]])
    '[C:1] [B:1, A:1]'
    """
    boxes = []
    for segment in segments:
        inner = ", ".join(f"{site}:{value}" for site, value in segment)
        boxes.append(f"[{inner}]")
    return " ".join(boxes)


def vector_orders_table(vectors: Dict[int, object]) -> str:
    """One line per θ vector: id, ≺ order, values — Figure 1's table view."""
    lines = []
    for key in sorted(vectors):
        vector = vectors[key]
        inner = ", ".join(f"{site}:{value}"
                          for site, value in vector.elements())  # type: ignore[attr-defined]
        lines.append(f"θ{key}: ⟨{inner}⟩")
    return "\n".join(lines)
