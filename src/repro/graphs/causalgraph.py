"""Causal graphs for operation-transfer systems (§6 of the paper).

A causal graph is a dag in which each node represents one *operation*
executed against a replicated object.  Nodes have at most two parents:
single-parent nodes are ordinary updates; double-parent nodes are conflict
reconciliations (merges).  The graph of a replica has a single *source*
(the object-creation operation, shared by all replicas of the object) and —
between synchronizations — a single *sink*, the latest operation executed
on the replica.

Replica comparison (§6) is O(1) given the peers' sink identifiers: if the
sink of one replica exists in the other's graph but not vice versa, the
former causally precedes the latter; neither ⇒ concurrent; both ⇒ equal.
Node lookup is a hash-table access (the paper's stated assumption).

The class supports two mutation styles:

* the validated, append-only API used by the operation-transfer layer
  (:meth:`append`, :meth:`merge_sinks`), which maintains the single-sink
  discipline and requires parents to exist; and
* the out-of-order :meth:`install` used by ``SYNCG``'s receiver, which adds
  nodes children-first as the sender's reverse DFS delivers them.  Between
  a synchronization and the subsequent reconciliation a graph legitimately
  has two sinks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.order import Ordering
from repro.errors import GraphError

NodeId = Hashable


@dataclass(frozen=True)
class GraphNode:
    """One operation node: identifier and up to two parent identifiers.

    The paper arbitrarily calls either parent of a merge node "left"; a
    single-parent node has only a left parent, and the source has none.
    """

    node_id: NodeId
    left_parent: Optional[NodeId] = None
    right_parent: Optional[NodeId] = None

    @property
    def parents(self) -> Tuple[NodeId, ...]:
        return tuple(p for p in (self.left_parent, self.right_parent)
                     if p is not None)

    @property
    def is_merge(self) -> bool:
        return self.left_parent is not None and self.right_parent is not None

    @property
    def is_source(self) -> bool:
        return self.left_parent is None and self.right_parent is None


class CausalGraph:
    """A replica's causal graph with O(1) node lookup and sink tracking."""

    __slots__ = ("_nodes", "_children", "_present_kids", "_childless", "_log")

    def __init__(self) -> None:
        self._nodes: Dict[NodeId, GraphNode] = {}
        # Children sets may hold entries for parents that have not arrived
        # yet (out-of-order install during SYNCG); such ids are not nodes.
        self._children: Dict[NodeId, Set[NodeId]] = {}
        # Incremental sink index: per-node count of *present* children and
        # the set of present nodes whose count is zero.  Maintained by
        # install() so sinks()/compare() stop rescanning the whole graph on
        # every pull — the dominant cost of long operation-transfer
        # histories (E4).
        self._present_kids: Dict[NodeId, int] = {}
        self._childless: Set[NodeId] = set()
        # Append-only install order; its length is the graph version and
        # slices of it answer "what arrived since" in O(Δ).
        self._log: List[NodeId] = []

    # -- construction (validated, append-only) ----------------------------------

    @classmethod
    def with_source(cls, node_id: NodeId) -> "CausalGraph":
        """A fresh graph containing only the object-creation operation."""
        graph = cls()
        graph.install(GraphNode(node_id))
        return graph

    def append(self, node_id: NodeId, parent: NodeId) -> GraphNode:
        """Record an ordinary update on top of ``parent`` (usually the sink)."""
        if parent not in self._nodes:
            raise GraphError(f"parent {parent!r} not in graph")
        if node_id in self._nodes:
            raise GraphError(f"node {node_id!r} already in graph")
        return self.install(GraphNode(node_id, parent))

    def merge_sinks(self, node_id: NodeId, left: NodeId,
                    right: NodeId) -> GraphNode:
        """Record a reconciliation joining two concurrent lineages."""
        for parent in (left, right):
            if parent not in self._nodes:
                raise GraphError(f"parent {parent!r} not in graph")
        if node_id in self._nodes:
            raise GraphError(f"node {node_id!r} already in graph")
        if left == right:
            raise GraphError("merge parents must differ")
        return self.install(GraphNode(node_id, left, right))

    def install(self, node: GraphNode) -> GraphNode:
        """Low-level insert that tolerates not-yet-present parents.

        Used by the SYNCG receiver, whose reverse-DFS stream delivers
        children before parents; by session end the graph is ancestor-closed
        again.  Re-installing an identical node is a no-op; conflicting
        parent data raises :class:`GraphError`.
        """
        existing = self._nodes.get(node.node_id)
        if existing is not None:
            if existing != node:
                raise GraphError(
                    f"node {node.node_id!r} already present with different "
                    f"parents: {existing} vs {node}")
            return existing
        self._nodes[node.node_id] = node
        self._children.setdefault(node.node_id, set())
        self._log.append(node.node_id)
        if self._present_kids.get(node.node_id, 0) == 0:
            self._childless.add(node.node_id)
        for parent in set(node.parents):
            self._children.setdefault(parent, set()).add(node.node_id)
            self._present_kids[parent] = self._present_kids.get(parent, 0) + 1
            self._childless.discard(parent)
        return node

    # -- lookups ----------------------------------------------------------------

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, node_id: NodeId) -> GraphNode:
        """The node record for ``node_id``; raises GraphError if absent."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphError(f"no node {node_id!r}") from None

    def nodes(self) -> Iterator[GraphNode]:
        """All node records, in insertion order."""
        return iter(self._nodes.values())

    def node_ids(self) -> Set[NodeId]:
        """The set of node identifiers (``V`` in the paper)."""
        return set(self._nodes)

    def arcs(self) -> Set[Tuple[NodeId, NodeId]]:
        """All ``(parent, child)`` arcs."""
        result: Set[Tuple[NodeId, NodeId]] = set()
        for node in self._nodes.values():
            for parent in node.parents:
                result.add((parent, node.node_id))
        return result

    def children(self, node_id: NodeId) -> Set[NodeId]:
        """Present children of ``node_id`` (ids not installed don't count)."""
        return {c for c in self._children.get(node_id, ())
                if c in self._nodes}

    def sinks(self) -> List[NodeId]:
        """Nodes with no (present) children, in deterministic order.

        Served from the incremental childless index — O(#sinks), not O(V).
        """
        return sorted(self._childless, key=repr)

    def sinks_uncached(self) -> List[NodeId]:
        """Reference sink scan over the whole graph (the index's oracle)."""
        found = [node_id for node_id in self._nodes
                 if not self.children(node_id)]
        return sorted(found, key=repr)

    @property
    def version(self) -> int:
        """Number of installs so far; pairs with :meth:`added_since`."""
        return len(self._log)

    def added_since(self, version: int) -> List[NodeId]:
        """Ids installed after the given :attr:`version` mark, in order.

        Lets callers account a synchronization's Δ in O(|Δ|) instead of
        diffing two O(V) id-set snapshots.
        """
        return self._log[version:]

    @property
    def sink(self) -> NodeId:
        """The unique sink; raises if the graph is mid-reconciliation."""
        sinks = self.sinks()
        if len(sinks) != 1:
            raise GraphError(f"graph has {len(sinks)} sinks: {sinks}")
        return sinks[0]

    def sources(self) -> List[NodeId]:
        """Parentless nodes (object creations), deterministic order."""
        return sorted((node_id for node_id, node in self._nodes.items()
                       if node.is_source), key=repr)

    # -- traversal ----------------------------------------------------------------

    def ancestors(self, node_id: NodeId) -> Set[NodeId]:
        """All proper ancestors of ``node_id`` (present in the graph)."""
        result: Set[NodeId] = set()
        stack = list(self.node(node_id).parents)
        while stack:
            current = stack.pop()
            if current in result or current not in self._nodes:
                continue
            result.add(current)
            stack.extend(self._nodes[current].parents)
        return result

    def common_ancestors(self, left: NodeId, right: NodeId) -> Set[NodeId]:
        """Nodes in the causal past of both ``left`` and ``right``.

        Each argument counts as its own ancestor, so a fast-forward pair
        reports the older node among the result.
        """
        left_past = self.ancestors(left) | {left}
        right_past = self.ancestors(right) | {right}
        return left_past & right_past

    def merge_bases(self, left: NodeId, right: NodeId) -> List[NodeId]:
        """The *maximal* common ancestors — three-way merge bases (§6).

        "Distributed revision control systems use the causal hierarchy for
        versioning control and efficient three-way merging": the merge base
        of two heads is a common ancestor no other common ancestor
        descends from.  Criss-cross histories have several; the list is
        deterministic and callers pick (or recursively merge) per policy.
        """
        common = self.common_ancestors(left, right)
        dominated: Set[NodeId] = set()
        for node_id in common:
            dominated |= self.ancestors(node_id) & common
        return sorted((n for n in common if n not in dominated), key=repr)

    def merge_base(self, left: NodeId, right: NodeId) -> NodeId:
        """One deterministic merge base (the first of :meth:`merge_bases`)."""
        bases = self.merge_bases(left, right)
        if not bases:
            raise GraphError(f"{left!r} and {right!r} share no ancestor")
        return bases[0]

    def is_ancestor_closed(self) -> bool:
        """True iff every referenced parent is present (steady-state invariant)."""
        return all(parent in self._nodes
                   for node in self._nodes.values()
                   for parent in node.parents)

    def topological_order(self) -> List[NodeId]:
        """Parents-before-children order with deterministic tie-breaking."""
        indegree = {node_id: len([p for p in node.parents if p in self._nodes])
                    for node_id, node in self._nodes.items()}
        ready = sorted((n for n, d in indegree.items() if d == 0), key=repr)
        order: List[NodeId] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            added = sorted(self.children(current), key=repr)
            for child in added:
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
            ready.sort(key=repr)
        if len(order) != len(self._nodes):
            raise GraphError("graph contains a cycle")
        return order

    # -- comparison and set views ----------------------------------------------

    def compare(self, other: "CausalGraph") -> Ordering:
        """§6 replica comparison via mutual sink membership; O(1)."""
        mine, theirs = self.sink, other.sink
        i_know_theirs = theirs in self
        they_know_mine = mine in other
        if i_know_theirs and they_know_mine:
            return Ordering.EQUAL
        if they_know_mine:
            return Ordering.BEFORE
        if i_know_theirs:
            return Ordering.AFTER
        return Ordering.CONCURRENT

    def union_with(self, other: "CausalGraph") -> "CausalGraph":
        """A new graph containing both node sets (the SYNCG postcondition)."""
        result = self.copy()
        for node in other.nodes():
            result.install(node)
        return result

    def copy(self) -> "CausalGraph":
        """An independent copy of the graph."""
        clone = CausalGraph()
        for node in self._nodes.values():
            clone.install(node)
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CausalGraph):
            return NotImplemented
        return self._nodes == other._nodes

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("causal graphs are mutable and unhashable")

    def __repr__(self) -> str:
        return f"CausalGraph({len(self._nodes)} nodes, sinks={self.sinks()})"


def build_graph(arcs: Iterable[Tuple[Optional[NodeId], NodeId]]) -> CausalGraph:
    """Build a graph from ``(parent, child)`` pairs; ``(None, root)`` adds roots.

    Multiple pairs with the same child accumulate its (≤2) parents in left,
    right order.  Convenient for tests and scripted scenarios.
    """
    parents: Dict[NodeId, List[NodeId]] = {}
    seen: List[NodeId] = []
    for parent, child in arcs:
        if child not in parents:
            parents[child] = []
            seen.append(child)
        if parent is not None:
            if len(parents[child]) == 2:
                raise GraphError(f"node {child!r} would have >2 parents")
            parents[child].append(parent)
    graph = CausalGraph()
    for child in seen:
        plist = parents[child]
        left = plist[0] if plist else None
        right = plist[1] if len(plist) > 1 else None
        graph.install(GraphNode(child, left, right))
    if not graph.is_ancestor_closed():
        raise GraphError("arc list references parents that never appear")
    return graph
