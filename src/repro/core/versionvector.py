"""Plain version vectors (Parker et al. 1986), the baseline scheme.

A version vector is a map from site name to the number of updates made on
that site.  Sites absent from the map implicitly have value 0; zero-valued
elements are never stored or transmitted (this matches the paper's Figure 1
caption, "zero valued elements have been removed from vectors").

This module provides the *traditional* implementation against which the
rotating variants are measured: comparison walks all elements and
synchronization ships the entire vector.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple

from repro.core.order import Ordering


class VersionVector:
    """A mutable version vector: ``{site name: update count}``.

    >>> v = VersionVector({"A": 2, "B": 1})
    >>> v["A"], v["C"]
    (2, 0)
    >>> v.record_update("C")
    >>> v["C"]
    1
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: Mapping[str, int] | None = None) -> None:
        self._counts: Dict[str, int] = {}
        if counts:
            for site, value in counts.items():
                self._set(site, value)

    # -- element access ----------------------------------------------------

    def _set(self, site: str, value: int) -> None:
        if value < 0:
            raise ValueError(f"vector value for {site!r} must be >= 0, got {value}")
        if value == 0:
            self._counts.pop(site, None)
        else:
            self._counts[site] = value

    def __getitem__(self, site: str) -> int:
        """The value of ``site``'s element; 0 for absent sites."""
        return self._counts.get(site, 0)

    def __setitem__(self, site: str, value: int) -> None:
        self._set(site, value)

    def __contains__(self, site: str) -> bool:
        return site in self._counts

    def __len__(self) -> int:
        """The number of non-zero elements."""
        return len(self._counts)

    def __iter__(self) -> Iterator[str]:
        return iter(self._counts)

    def items(self) -> Iterable[Tuple[str, int]]:
        """``(site, value)`` pairs for every non-zero element."""
        return self._counts.items()

    def sites(self) -> Iterable[str]:
        """Site names with non-zero values."""
        return self._counts.keys()

    def total_updates(self) -> int:
        """Sum of all element values (total updates this vector reflects)."""
        return sum(self._counts.values())

    # -- updates and merging -----------------------------------------------

    def record_update(self, site: str) -> int:
        """Record one local update on ``site``; returns the new value."""
        value = self._counts.get(site, 0) + 1
        self._counts[site] = value
        return value

    def merge(self, other: "VersionVector") -> None:
        """Elementwise-max merge ``other`` into this vector (in place).

        This is the semantics every SYNC* algorithm must reproduce: after
        synchronization the ith value equals ``max(a[i], b[i])`` for all i.
        """
        for site, value in other.items():
            if value > self._counts.get(site, 0):
                self._counts[site] = value

    def merged(self, other: "VersionVector") -> "VersionVector":
        """A new vector equal to the elementwise max of the two operands."""
        result = self.copy()
        result.merge(other)
        return result

    def copy(self) -> "VersionVector":
        """An independent copy."""
        return VersionVector(self._counts)

    # -- comparison ----------------------------------------------------------

    def compare(self, other: "VersionVector") -> Ordering:
        """Full elementwise comparison (the traditional O(n) algorithm).

        ``a ≺ b`` iff ``a[i] <= b[i]`` for all i and ``a[j] < b[j]`` for
        some j; concurrency is the absence of dominance either way.
        """
        less = False    # some element strictly smaller in self
        greater = False  # some element strictly greater in self
        for site in set(self._counts) | set(other._counts):
            mine, theirs = self[site], other[site]
            if mine < theirs:
                less = True
            elif mine > theirs:
                greater = True
            if less and greater:
                return Ordering.CONCURRENT
        if less:
            return Ordering.BEFORE
        if greater:
            return Ordering.AFTER
        return Ordering.EQUAL

    def dominates(self, other: "VersionVector") -> bool:
        """True iff this vector is equal to or causally follows ``other``."""
        return self.compare(other) in (Ordering.EQUAL, Ordering.AFTER)

    # -- dunder conveniences --------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VersionVector):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        return hash(frozenset(self._counts.items()))

    def as_dict(self) -> Dict[str, int]:
        """A plain-dict snapshot of the non-zero elements."""
        return dict(self._counts)

    def __repr__(self) -> str:
        inner = ", ".join(f"{s}:{v}" for s, v in sorted(self._counts.items()))
        return f"<{inner}>"
