"""Array-backed total order of vector elements with O(1) ROTATE.

Drop-in alternative to :class:`repro.core.linkedorder.ElementOrder`: the
same operations and semantics (including the segment-bit carry of the
paper's modified ROTATE), but flat storage.  Element fields live in
parallel Python lists (``site``/``value``/``conflict``/``segment``) and
the ``≺`` links are integer indices into two more lists — no per-element
node objects, no pointer chasing through the heap.

Why it is faster than the linked representation:

* ``copy()`` is six ``list.copy()`` calls plus one ``dict.copy()`` — all
  C-speed bulk copies — instead of allocating and re-linking one
  ``Element`` object per entry.  Vector snapshots dominate cluster
  benchmarks and chaos-mode session resume, which makes this the single
  biggest win.
* bulk construction (:meth:`extend_back`) appends whole rows without the
  per-element anchor checks ``rotate_after`` pays, so ``from_pairs`` and
  ``from_segments`` are one pass.
* batch walks (:meth:`as_tuples`, :meth:`pairs_in_order`,
  :meth:`values_in_order`, :meth:`record_update`, :meth:`rotate_many`)
  read the arrays directly with the index hops inlined, instead of
  attribute-chasing node objects.

Protocol code that holds individual elements (`sender` walks via
``element.next``, receivers write ``element.value``) gets lightweight
:class:`ArrayElement` *views*: slotted handles onto one index whose
properties read and write the arrays in place.  Views are cached per
slot, so identity is stable for the lifetime of the element and repeated
walks allocate nothing.

Removal (§7 site retirement) unlinks the slot and drops it from the site
table but leaves the row in place — exactly like a detached linked-list
node, the returned element stays readable.  Dead rows are bounded by the
number of removals and vanish at the next :meth:`copy` (clones compact).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

#: Index sentinel for "no neighbor" (the linked ``None``).
_NIL = -1


class ArrayElement:
    """A view onto one slot of an :class:`ArrayElementOrder`.

    Implements the :class:`~repro.core.linkedorder.Element` surface —
    ``site``/``value``/``conflict``/``segment`` fields (the latter three
    writable) and ``prev``/``next`` traversal — as properties over the
    owning order's arrays.  Client code cannot tell the backends apart.
    """

    __slots__ = ("_order", "_index")

    def __init__(self, order: "ArrayElementOrder", index: int) -> None:
        self._order = order
        self._index = index

    @property
    def site(self) -> str:
        return self._order._sites[self._index]

    @property
    def value(self) -> int:
        return self._order._values[self._index]

    @value.setter
    def value(self, new: int) -> None:
        self._order._values[self._index] = new

    @property
    def conflict(self) -> bool:
        return self._order._conflicts[self._index]

    @conflict.setter
    def conflict(self, flag: bool) -> None:
        self._order._conflicts[self._index] = flag

    @property
    def segment(self) -> bool:
        return self._order._segments[self._index]

    @segment.setter
    def segment(self, flag: bool) -> None:
        self._order._segments[self._index] = flag

    @property
    def prev(self) -> Optional["ArrayElement"]:
        index = self._order._prv[self._index]
        return None if index == _NIL else self._order._view(index)

    @property
    def next(self) -> Optional["ArrayElement"]:
        index = self._order._nxt[self._index]
        return None if index == _NIL else self._order._view(index)

    def __repr__(self) -> str:
        bits = ("̅" if self.conflict else "") + ("|" if self.segment else "")
        return f"({self.site}:{self.value}{bits})"


class ArrayElementOrder:
    """The total order ``≺``, stored as parallel arrays with index links.

    API-compatible with :class:`~repro.core.linkedorder.ElementOrder`:
    every operation, error, and semantic detail (version counter,
    ``touch``, the segment-bit carry on unlink) matches, and the
    equivalence property suite (``tests/core/test_array_equivalence.py``)
    drives both backends through random interleavings to prove it.
    """

    __slots__ = ("_sites", "_values", "_conflicts", "_segments",
                 "_prv", "_nxt", "_by_site", "_head", "_tail",
                 "_views", "_version")

    def __init__(self) -> None:
        self._sites: List[str] = []
        self._values: List[int] = []
        self._conflicts: List[bool] = []
        self._segments: List[bool] = []
        self._prv: List[int] = []
        self._nxt: List[int] = []
        self._by_site: Dict[str, int] = {}
        self._head = _NIL
        self._tail = _NIL
        self._views: List[Optional[ArrayElement]] = []
        self._version = 0

    # -- change tracking -------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic mutation counter; derived caches key on it."""
        return self._version

    def touch(self) -> None:
        """Declare an out-of-band mutation (direct element field write)."""
        self._version += 1

    # -- views -----------------------------------------------------------------

    def _view(self, index: int) -> ArrayElement:
        view = self._views[index]
        if view is None:
            view = self._views[index] = ArrayElement(self, index)
        return view

    # -- lookups -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_site)

    def __contains__(self, site: str) -> bool:
        return site in self._by_site

    def get(self, site: str) -> Optional[ArrayElement]:
        """The element for ``site``, or None if its value is zero."""
        index = self._by_site.get(site)
        return None if index is None else self._view(index)

    def value(self, site: str) -> int:
        """``v[site]``; absent elements read as 0."""
        index = self._by_site.get(site)
        return 0 if index is None else self._values[index]

    def first(self) -> Optional[ArrayElement]:
        """``⌊v⌋`` — the least (front, most recently modified) element."""
        return None if self._head == _NIL else self._view(self._head)

    def last(self) -> Optional[ArrayElement]:
        """``⌈v⌉`` — the greatest (back, oldest) element."""
        return None if self._tail == _NIL else self._view(self._tail)

    def __iter__(self) -> Iterator[ArrayElement]:
        """Elements in ascending ``≺`` order (front to back)."""
        index = self._head
        nxt = self._nxt
        while index != _NIL:
            yield self._view(index)
            index = nxt[index]

    def sites_in_order(self) -> List[str]:
        """Site names in ascending ≺ order (direct array walk)."""
        result: List[str] = []
        index, sites, nxt = self._head, self._sites, self._nxt
        while index != _NIL:
            result.append(sites[index])
            index = nxt[index]
        return result

    def pairs_in_order(self) -> List[Tuple[str, int]]:
        """``(site, value)`` rows in ≺ order, no view objects involved."""
        result: List[Tuple[str, int]] = []
        index = self._head
        sites, values, nxt = self._sites, self._values, self._nxt
        while index != _NIL:
            result.append((sites[index], values[index]))
            index = nxt[index]
        return result

    def values_dict(self) -> Dict[str, int]:
        """``{site: value}`` over the *linked* elements only.

        Walks the links rather than dumping the site table so detached
        zero elements (``rotate_after``'s self-anchor no-op) are excluded,
        exactly like iterating the linked backend.
        """
        result: Dict[str, int] = {}
        index = self._head
        sites, values, nxt = self._sites, self._values, self._nxt
        while index != _NIL:
            result[sites[index]] = values[index]
            index = nxt[index]
        return result

    def total_value(self) -> int:
        """Sum of all linked element values (direct array walk)."""
        total = 0
        index, values, nxt = self._head, self._values, self._nxt
        while index != _NIL:
            total += values[index]
            index = nxt[index]
        return total

    # -- allocation ------------------------------------------------------------

    def _new_slot(self, site: str, value: int) -> int:
        index = len(self._sites)
        self._sites.append(site)
        self._values.append(value)
        self._conflicts.append(False)
        self._segments.append(False)
        self._prv.append(_NIL)
        self._nxt.append(_NIL)
        self._views.append(None)
        self._by_site[site] = index
        return index

    def _unlink(self, index: int) -> None:
        """Detach a linked slot, carrying a set segment bit backward."""
        prv, nxt = self._prv, self._nxt
        before, after = prv[index], nxt[index]
        if self._segments[index] and before != _NIL:
            self._segments[before] = True
        if before != _NIL:
            nxt[before] = after
        else:
            self._head = after
        if after != _NIL:
            prv[after] = before
        else:
            self._tail = before
        prv[index] = nxt[index] = _NIL

    def _link_front(self, index: int) -> None:
        head = self._head
        self._prv[index] = _NIL
        self._nxt[index] = head
        if head != _NIL:
            self._prv[head] = index
        self._head = index
        if self._tail == _NIL:
            self._tail = index

    # -- ROTATE ---------------------------------------------------------------

    def rotate_front(self, site: str) -> ArrayElement:
        """``ROTATE(φ, site)``: move (or insert) the element to the front."""
        self._version += 1
        index = self._by_site.get(site)
        if index is None:
            index = self._new_slot(site, 0)
        elif index == self._head:
            return self._view(index)
        elif self._prv[index] != _NIL:
            # Linked and not the head; detached slots skip straight to
            # the relink, mirroring the linked backend's fast path.
            self._unlink(index)
        self._link_front(index)
        return self._view(index)

    def record_update(self, site: str) -> int:
        """Local-update fast path: rotate front, increment, clear bits.

        One array pass instead of a rotation plus three view property
        writes; the semantics are exactly
        :meth:`~repro.core.rotating.BasicRotatingVector.record_update`.
        """
        self._version += 1
        index = self._by_site.get(site)
        if index is None:
            index = self._new_slot(site, 0)
            self._link_front(index)
        elif index != self._head:
            if self._prv[index] != _NIL:
                self._unlink(index)
            self._link_front(index)
        value = self._values[index] + 1
        self._values[index] = value
        self._conflicts[index] = False
        self._segments[index] = False
        return value

    def rotate_many(self, sites: List[str]) -> None:
        """Apply ``rotate_front`` for each site in order, one version bump.

        Equivalent to the sequential loop (the last site ends up at the
        front) with the per-call bookkeeping hoisted out and the
        unlink/relink surgery inlined over the hoisted arrays.
        """
        self._version += 1
        by_site = self._by_site
        prv, nxt, segments = self._prv, self._nxt, self._segments
        head, tail = self._head, self._tail
        for site in sites:
            index = by_site.get(site)
            if index is None:
                index = self._new_slot(site, 0)
            elif index == head:
                continue
            else:
                before = prv[index]
                if before != _NIL:
                    # Linked mid-list: splice out, carrying the segment
                    # bit to the predecessor (same as ``_unlink``).
                    after = nxt[index]
                    if segments[index]:
                        segments[before] = True
                    nxt[before] = after
                    if after != _NIL:
                        prv[after] = before
                    else:
                        tail = before
                # A detached slot (``before == _NIL`` but not head) goes
                # straight to the relink.
            prv[index] = _NIL
            nxt[index] = head
            if head != _NIL:
                prv[head] = index
            head = index
            if tail == _NIL:
                tail = index
        self._head, self._tail = head, tail

    def remove(self, site: str) -> Optional[ArrayElement]:
        """Permanently drop an element (site retirement, §7 pruning).

        The slot is unlinked (with the segment-bit carry) and removed
        from the site table; the row itself stays readable through the
        returned view, like a detached linked node.  Dead rows compact
        away on the next :meth:`copy`.
        """
        index = self._by_site.pop(site, None)
        if index is None:
            return None
        self._version += 1
        view = self._view(index)
        if self._prv[index] != _NIL or index == self._head:
            self._unlink(index)
        return view

    def rotate_after(self, prev_site: Optional[str], site: str
                     ) -> ArrayElement:
        """``ROTATE(prev_site, site)``: place the element after ``prev``."""
        if prev_site is None:
            return self.rotate_front(site)
        self._version += 1
        if prev_site == site:
            index = self._by_site.get(site)
            if index is None:
                index = self._new_slot(site, 0)
            return self._view(index)
        anchor = self._by_site.get(prev_site)
        if anchor is None:
            raise KeyError(f"anchor element {prev_site!r} not in order")
        index = self._by_site.get(site)
        if index is None:
            index = self._new_slot(site, 0)
        if self._nxt[anchor] == index:
            return self._view(index)
        if self._prv[index] != _NIL or index == self._head:
            self._unlink(index)
        # Link after the anchor.
        after = self._nxt[anchor]
        self._prv[index] = anchor
        self._nxt[index] = after
        if after != _NIL:
            self._prv[after] = index
        else:
            self._tail = index
        self._nxt[anchor] = index
        return self._view(index)

    # -- bulk construction -----------------------------------------------------

    def extend_back(self, rows: List[Tuple[str, int]]) -> None:
        """Append ``(site, value)`` rows at the back, in order, one pass.

        The bulk body of ``from_pairs``: rows must name sites not already
        present (the caller validates — this is the unchecked fast path).
        """
        if not rows:
            return
        self._version += 1
        base = len(self._sites)
        by_site = self._by_site
        for offset, (site, value) in enumerate(rows):
            by_site[site] = base + offset
            self._sites.append(site)
            self._values.append(value)
        count = len(rows)
        self._conflicts.extend([False] * count)
        self._segments.extend([False] * count)
        self._views.extend([None] * count)
        self._prv.extend(range(base - 1, base + count - 1))
        self._nxt.extend(range(base + 1, base + count + 1))
        self._nxt[-1] = _NIL
        if self._tail != _NIL:
            self._nxt[self._tail] = base
            self._prv[base] = self._tail
        else:
            self._head = base
            self._prv[base] = _NIL
        self._tail = base + count - 1

    # -- snapshots -----------------------------------------------------------

    def copy(self) -> "ArrayElementOrder":
        """A deep copy: bulk array copies, no per-element allocation.

        When no slots are dead the arrays are copied verbatim (C-speed
        ``list.copy``); a removal-scarred order is compacted into fresh
        contiguous arrays instead.
        """
        clone = ArrayElementOrder.__new__(ArrayElementOrder)
        clone._version = 0
        if len(self._by_site) == len(self._sites):
            clone._sites = self._sites.copy()
            clone._values = self._values.copy()
            clone._conflicts = self._conflicts.copy()
            clone._segments = self._segments.copy()
            clone._prv = self._prv.copy()
            clone._nxt = self._nxt.copy()
            clone._by_site = self._by_site.copy()
            clone._head = self._head
            clone._tail = self._tail
            clone._views = [None] * len(self._sites)
            return clone
        # Compacting path: walk the links once, emitting rows in ≺ order.
        sites: List[str] = []
        values: List[int] = []
        conflicts: List[bool] = []
        segments: List[bool] = []
        index = self._head
        nxt = self._nxt
        while index != _NIL:
            sites.append(self._sites[index])
            values.append(self._values[index])
            conflicts.append(self._conflicts[index])
            segments.append(self._segments[index])
            index = nxt[index]
        count = len(sites)
        clone._sites = sites
        clone._values = values
        clone._conflicts = conflicts
        clone._segments = segments
        clone._prv = list(range(-1, count - 1))
        clone._nxt = list(range(1, count + 1))
        if count:
            clone._nxt[-1] = _NIL
        clone._by_site = {site: position
                          for position, site in enumerate(sites)}
        clone._head = 0 if count else _NIL
        clone._tail = count - 1 if count else _NIL
        clone._views = [None] * count
        return clone

    def as_tuples(self) -> List[Tuple[str, int, bool, bool]]:
        """``(site, value, conflict, segment)`` rows in ``≺`` order."""
        result: List[Tuple[str, int, bool, bool]] = []
        index = self._head
        sites, values = self._sites, self._values
        conflicts, segments, nxt = self._conflicts, self._segments, self._nxt
        while index != _NIL:
            result.append((sites[index], values[index],
                           conflicts[index], segments[index]))
            index = nxt[index]
        return result

    def __repr__(self) -> str:
        return "⟨" + ", ".join(repr(e) for e in self) + "⟩"
