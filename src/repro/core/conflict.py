"""Conflict rotating vectors (CRV) — §3.2 of the paper.

SYNCB cannot be reused after synchronizing *concurrent* vectors: the merge
rotates elements to the front without changing their values, which hides the
elements behind them from later incremental syncs (the paper's θ₁/θ₃
example).  CRV fixes this with one *conflict bit* per element:

* every element modified during a reconciliation gets its bit set, and
* ``SYNCC`` (:mod:`repro.protocols.syncc`) skips over set bits instead of
  halting, so tagged elements can never hide unmodified ones.

The bit is cleared whenever the element's value is incremented by a genuine
local update.  The cost is Γ — elements the receiver already knows but that
are retransmitted because their bit is set — making SYNCC O(|Δ|+|Γ|).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.rotating import BasicRotatingVector


class ConflictRotatingVector(BasicRotatingVector):
    """A BRV with one conflict bit per element.

    The bit bookkeeping itself happens inside ``SYNCC``/``SYNCS`` (the bits
    are protocol state); this class adds inspection helpers and a
    constructor that sets bits explicitly.

    >>> v = ConflictRotatingVector.from_pairs_with_bits(
    ...     [("A", 2, True), ("B", 2, False)])
    >>> v.conflict_bit("A"), v.conflict_bit("B")
    (True, False)
    """

    kind = "crv"

    __slots__ = ()

    @classmethod
    def from_pairs_with_bits(
        cls, rows: List[Tuple[str, int, bool]]
    ) -> "ConflictRotatingVector":
        """Build a CRV from ``(site, value, conflict_bit)`` rows in ≺ order."""
        vector = cls.from_pairs([(site, value) for site, value, _ in rows])
        for site, _, bit in rows:
            element = vector.order.get(site)
            assert element is not None
            element.conflict = bit
        return vector

    def conflict_bit(self, site: str) -> bool:
        """``v.c[site]``; absent elements read as unset."""
        element = self.order.get(site)
        return element.conflict if element is not None else False

    def set_conflict_bit(self, site: str, flag: bool = True) -> None:
        """Set or clear ``v.c[site]``; the element must exist."""
        element = self.order.get(site)
        if element is None:
            raise KeyError(f"no element for site {site!r}")
        element.conflict = flag

    def conflict_sites(self) -> List[str]:
        """Sites whose conflict bit is set, in ≺ order."""
        return [e.site for e in self.order if e.conflict]

    def clear_conflict_bits(self) -> None:
        """Clear every conflict bit (useful for tests and baselines)."""
        for element in self.order:
            element.conflict = False
