"""Causal ordering verdicts shared by every concurrency-control scheme.

The paper compares replicas (and their metadata) into one of four causal
relationships: equal, causally-precedes (``a ≺ b``), causally-follows
(``b ≺ a``), and concurrent (``a ∥ b``).  Every metadata implementation in
this package — plain version vectors, BRV, CRV, SRV, and causal graphs —
reports comparisons using the same :class:`Ordering` enum so the replication
layer can be metadata-agnostic.
"""

from __future__ import annotations

import enum


class Ordering(enum.Enum):
    """Causal relationship between two replicas or their metadata."""

    EQUAL = "equal"
    #: ``a ≺ b`` — the left operand causally precedes the right one.
    BEFORE = "before"
    #: ``b ≺ a`` — the left operand causally follows the right one.
    AFTER = "after"
    #: ``a ∥ b`` — neither dominates; a syntactic conflict.
    CONCURRENT = "concurrent"

    @property
    def is_concurrent(self) -> bool:
        """True iff the operands are concurrent (``a ∥ b``)."""
        return self is Ordering.CONCURRENT

    @property
    def is_comparable(self) -> bool:
        """True iff the operands are *not* concurrent (``a ∦ b``)."""
        return self is not Ordering.CONCURRENT

    def flipped(self) -> "Ordering":
        """The verdict with operands swapped: ``compare(b, a)``."""
        if self is Ordering.BEFORE:
            return Ordering.AFTER
        if self is Ordering.AFTER:
            return Ordering.BEFORE
        return self

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        symbols = {
            Ordering.EQUAL: "=",
            Ordering.BEFORE: "≺",       # ≺
            Ordering.AFTER: "≻",        # ≻
            Ordering.CONCURRENT: "∥",   # ∥
        }
        return symbols[self]
