"""Core concurrency-control metadata: version vectors and rotating variants.

This subpackage implements the paper's primary data structures:

* :class:`~repro.core.versionvector.VersionVector` — the classic scheme
  (Parker et al. 1986), used as the correctness oracle and as the
  "traditional" baseline that ships whole vectors.
* :class:`~repro.core.rotating.BasicRotatingVector` (BRV, §3.1),
  :class:`~repro.core.conflict.ConflictRotatingVector` (CRV, §3.2), and
  :class:`~repro.core.skip.SkipRotatingVector` (SRV, §4) — the paper's three
  incremental-synchronization vector implementations.
* :class:`~repro.core.order.Ordering` — the shared comparison verdict type.

The wire protocols that synchronize these structures live in
:mod:`repro.protocols`.
"""

from repro.core.linkedorder import Element, ElementOrder
from repro.core.order import Ordering
from repro.core.versionvector import VersionVector
from repro.core.rotating import BasicRotatingVector
from repro.core.conflict import ConflictRotatingVector
from repro.core.skip import SkipRotatingVector

__all__ = [
    "Element",
    "ElementOrder",
    "Ordering",
    "VersionVector",
    "BasicRotatingVector",
    "ConflictRotatingVector",
    "SkipRotatingVector",
]
