"""Skip rotating vectors (SRV) — §4 of the paper.

CRV pays O(|Γ|) retransmission because a receiver cannot tell which tagged
elements it already knows.  SRV adds a *segment bit* per element that marks
segment boundaries: the segments of a vector are exactly the prefixing
segments of its coalesced replication graph (CRG) ancestry, and segments
have three properties (§4) that make them skippable wholesale:

i.   a segment has a unique set of elements — as soon as a value changes the
     element is rotated out into a new prefixing segment;
ii.  intra-segment order is persistent from vector to vector;
iii. segments never grow — they only shrink and eventually vanish.

Hence if the receiver knows the first element of a segment with an equal or
greater value, it knows the entire segment and ``SYNCS``
(:mod:`repro.protocols.syncs`) can skip it with a single O(1) ``SKIP``
message, giving O(|Δ|+γ) communication — optimal by Theorem 5.1.

A segment bit of one marks the **last** element of a segment; the end of
the vector is an implicit boundary.  New boundaries appear only during
reconciliation (when ``SYNCS`` observes a skip or halt), and local updates
extend the front segment — which is precisely how consecutive single-parent
CRG nodes coalesce.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.conflict import ConflictRotatingVector
from repro.core.linkedorder import Element

#: A parsed segment partition: ``((site, value), ...)`` runs, front first.
SegmentPartition = Tuple[Tuple[Tuple[str, int], ...], ...]


class SkipRotatingVector(ConflictRotatingVector):
    """A CRV with one segment bit per element.

    >>> v = SkipRotatingVector.from_segments([
    ...     [("C", 1)], [("H", 1)], [("G", 1), ("F", 1), ("E", 1)],
    ...     [("B", 1)], [("A", 1)]])
    >>> [[site for site, _ in seg] for seg in v.segments()]
    [['C'], ['H'], ['G', 'F', 'E'], ['B'], ['A']]
    """

    kind = "srv"

    __slots__ = ("_partition_cache", "_partition_version")

    def __init__(self) -> None:
        super().__init__()
        # Cached parse of the segment partition, keyed on the order's
        # mutation version: repeated analytics (segment counts, storage
        # sizing, Π-bound checks) stop re-walking the linked list.
        self._partition_cache: Optional[SegmentPartition] = None
        self._partition_version = -1

    @classmethod
    def from_segments(
        cls, segments: List[List[Tuple[str, int]]]
    ) -> "SkipRotatingVector":
        """Build an SRV from explicit segments, front segment first.

        Sets the segment bit on the last element of every segment (also the
        final one, even though the vector end already implies a boundary —
        both encodings parse identically).
        """
        pairs = [pair for segment in segments for pair in segment]
        vector = cls.from_pairs(pairs)
        for segment in segments:
            if not segment:
                raise ValueError("segments must be non-empty")
            last_site = segment[-1][0]
            element = vector.order.get(last_site)
            assert element is not None
            element.segment = True
        vector.order.touch()
        return vector

    def restore(self, snapshot: "BasicRotatingVector") -> None:
        """In-place rollback; also drops the cached segment partition.

        The adopted order starts a fresh version counter, which could
        collide with ``_partition_version`` and revive a parse of the
        pre-restore state — so the cache is invalidated explicitly.
        """
        super().restore(snapshot)
        self._partition_cache = None
        self._partition_version = -1

    # -- segment inspection -----------------------------------------------------

    def segment_bit(self, site: str) -> bool:
        """``v.s[site]``; absent elements read as unset."""
        element = self.order.get(site)
        return element.segment if element is not None else False

    def set_segment_bit(self, site: str, flag: bool = True) -> None:
        """Set or clear ``v.s[site]``; the element must exist."""
        element = self.order.get(site)
        if element is None:
            raise KeyError(f"no element for site {site!r}")
        element.segment = flag
        self.order.touch()

    def partition(self) -> SegmentPartition:
        """The cached segment partition, front segment first.

        Re-parsed only when the element order's mutation version moved
        since the last call; any rotation, removal, or declared field write
        (:meth:`~repro.core.linkedorder.ElementOrder.touch`) invalidates
        it.  The returned tuples are immutable and safe to share.
        """
        version = self.order.version
        if self._partition_version != version or self._partition_cache is None:
            self._partition_cache = tuple(
                tuple(segment) for segment in self.segments_uncached())
            self._partition_version = version
        return self._partition_cache

    def segments(self) -> List[List[Tuple[str, int]]]:
        """The vector parsed into segments, front to back.

        A segment is a maximal run of elements ending at one whose segment
        bit is set; the vector end is an implicit terminator.  Served from
        :meth:`partition`'s cache; the lists returned are fresh copies.
        """
        return [list(segment) for segment in self.partition()]

    def segments_uncached(self) -> List[List[Tuple[str, int]]]:
        """Reference parse that always walks the element order.

        The oracle the cached path is property-tested against.
        """
        result: List[List[Tuple[str, int]]] = []
        current: List[Tuple[str, int]] = []
        for element in self.order:
            current.append((element.site, element.value))
            if element.segment:
                result.append(current)
                current = []
        if current:
            result.append(current)
        return result

    def segment_count(self) -> int:
        """Number of segments currently present in the vector."""
        return len(self.partition())

    def segment_elements(self) -> List[List[Element]]:
        """Like :meth:`segments` but yielding the live elements."""
        result: List[List[Element]] = []
        current: List[Element] = []
        for element in self.order:
            current.append(element)
            if element.segment:
                result.append(current)
                current = []
        if current:
            result.append(current)
        return result
