"""Array-backed BRV/CRV/SRV — the flat fast path behind the registry.

These classes inherit every algorithm (COMPARE, conflict/segment-bit
helpers, the segment-partition cache) from the linked-backend classes
and swap only the storage: :attr:`order_cls` points at
:class:`~repro.core.arrayorder.ArrayElementOrder`, and the hot
constructors/accessors are overridden with bulk array passes.

The two backends are interchangeable — byte-identical wire traffic,
identical ``bench_fingerprint``s — which
``tests/core/test_array_equivalence.py`` (hypothesis) and the
``perf.compare --require-same-bits`` CI gate both enforce.  Pick a
backend per run via ``ProtocolSpec.vector_class(backend)`` or the
``backend`` field on cluster/store/bench configs.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.core.arrayorder import ArrayElementOrder
from repro.core.conflict import ConflictRotatingVector
from repro.core.rotating import BasicRotatingVector
from repro.core.skip import SkipRotatingVector
from repro.core.versionvector import VersionVector


class ArrayBasicRotatingVector(BasicRotatingVector):
    """BRV over parallel arrays; see §3.1 and :mod:`repro.core.arrayorder`."""

    backend = "array"
    order_cls = ArrayElementOrder

    __slots__ = ()

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[str, int]]
                   ) -> "ArrayBasicRotatingVector":
        """Bulk build: validate once, then append all rows in one pass."""
        rows: List[Tuple[str, int]] = []
        seen = set()
        for site, value in pairs:
            if value <= 0:
                raise ValueError(f"element {site!r} must have positive value")
            if site in seen:
                raise ValueError(f"duplicate site {site!r} in pairs")
            seen.add(site)
            rows.append((site, value))
        vector = cls()
        vector.order.extend_back(rows)
        return vector

    def record_update(self, site: str) -> int:
        """Local update via the order's single-pass fast path."""
        return self.order.record_update(site)

    def rotate_many(self, sites: List[str]) -> None:
        """Batch ROTATE: the last site ends up at the front (``⌊v⌋``)."""
        self.order.rotate_many(sites)

    def elements(self) -> List[Tuple[str, int]]:
        """``(site, value)`` pairs in ≺ order, straight off the arrays."""
        return self.order.pairs_in_order()

    def total_updates(self) -> int:
        """Sum of all element values (single array pass)."""
        return self.order.total_value()

    def to_version_vector(self) -> VersionVector:
        """The plain version vector this rotating vector represents."""
        return VersionVector(self.order.values_dict())


class ArrayConflictRotatingVector(ArrayBasicRotatingVector,
                                  ConflictRotatingVector):
    """CRV over parallel arrays (§3.2 conflict bits unchanged)."""

    kind = "crv"
    __slots__ = ()


class ArraySkipRotatingVector(ArrayConflictRotatingVector,
                              SkipRotatingVector):
    """SRV over parallel arrays (§4 segment bits and partition cache)."""

    kind = "srv"
    __slots__ = ()
