"""Basic rotating vectors (BRV) — §3.1 of the paper.

A basic rotating vector is a version vector paired with a total order ``≺``
of its elements.  Whenever site *i* updates the replica the *i*-th value is
incremented **and** the element is rotated to the front of the order.  The
order therefore records modification recency, which enables:

* :meth:`BasicRotatingVector.compare` — Algorithm 1, an O(1) comparison
  that inspects only the front element of each vector, and
* ``SYNCB`` (:mod:`repro.protocols.syncb`) — incremental synchronization
  that ships only the elements modified since the two replicas last met.

BRV supports systems with *manual* conflict resolution only: automatic
reconciliation distorts the rotation order and is handled by the CRV and
SRV subclasses.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.core.linkedorder import Element, ElementOrder
from repro.core.order import Ordering
from repro.core.versionvector import VersionVector


class BasicRotatingVector:
    """A version vector with a rotate-to-front total order of elements.

    >>> v = BasicRotatingVector.from_pairs([("C", 3), ("A", 2), ("B", 1)])
    >>> v.first().site, v.last().site
    ('C', 'B')
    >>> v.record_update("B")
    2
    >>> v.sites_in_order()
    ['B', 'C', 'A']
    """

    #: Human-readable tag used by wire accounting and reports.
    kind = "brv"

    #: Storage backend tag; the array subclasses override it.
    backend = "linked"

    #: The element-order implementation this class instantiates.  Array
    #: subclasses (:mod:`repro.core.arrayvec`) swap in the flat
    #: :class:`~repro.core.arrayorder.ArrayElementOrder` while inheriting
    #: every algorithm below unchanged.
    order_cls = ElementOrder

    __slots__ = ("order",)

    def __init__(self) -> None:
        self.order = self.order_cls()

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[str, int]]) -> "BasicRotatingVector":
        """Build a vector whose ``≺`` order equals the pair order given.

        The first pair becomes ``⌊v⌋``; values must be positive (zero-valued
        elements are never stored) and site names must be distinct — a
        repeated site would silently rotate the existing element to the
        later position, corrupting the order the caller spelled out.
        """
        vector = cls()
        previous: Optional[str] = None
        for site, value in pairs:
            if value <= 0:
                raise ValueError(f"element {site!r} must have positive value")
            if site in vector.order:
                raise ValueError(f"duplicate site {site!r} in pairs")
            element = vector.order.rotate_after(previous, site)
            element.value = value
            previous = site
        return vector

    def copy(self) -> "BasicRotatingVector":
        """An independent deep copy (order, values, and bits)."""
        clone = type(self)()
        clone.order = self.order.copy()
        return clone

    def restore(self, snapshot: "BasicRotatingVector") -> None:
        """Adopt ``snapshot``'s state in place, keeping this identity.

        Every alias to this vector (cluster result views, site tables)
        continues to see it — which is the point: resumable sessions
        roll a receiver back to its pre-session snapshot without
        invalidating references the surrounding system already holds.
        ``snapshot`` itself is not captured; its order is copied.
        """
        self.order = snapshot.order.copy()

    # -- element access ----------------------------------------------------------

    def __getitem__(self, site: str) -> int:
        """``v[site]``; absent sites read as 0."""
        return self.order.value(site)

    def __len__(self) -> int:
        return len(self.order)

    def __contains__(self, site: str) -> bool:
        return site in self.order

    def first(self) -> Optional[Element]:
        """``⌊v⌋`` — the least element (most recent modification)."""
        return self.order.first()

    def last(self) -> Optional[Element]:
        """``⌈v⌉`` — the greatest element (oldest modification)."""
        return self.order.last()

    def sites_in_order(self) -> List[str]:
        """Site names in ascending ``≺`` order."""
        return self.order.sites_in_order()

    def elements(self) -> List[Tuple[str, int]]:
        """``(site, value)`` pairs in ascending ``≺`` order."""
        return [(e.site, e.value) for e in self.order]

    def total_updates(self) -> int:
        """Sum of all element values."""
        return sum(e.value for e in self.order)

    # -- updates ---------------------------------------------------------------

    def record_update(self, site: str) -> int:
        """Record one local update on ``site``: increment and rotate to front.

        Clears the element's conflict bit (§3.2: the bit "is reset whenever
        ``v[i]`` is incremented due to a replica update on site *i*") and its
        segment bit (a fresh update extends the vector's front segment, which
        is how consecutive single-parent nodes coalesce in the CRG).  Returns
        the new value.
        """
        element = self.order.rotate_front(site)
        element.value += 1
        element.conflict = False
        element.segment = False
        return element.value

    def rotate_many(self, sites: List[str]) -> None:
        """Batch ROTATE: each site moves to the front in turn.

        After the call the last listed site is at the front (``⌊v⌋``),
        matching a receiver replaying a sender's rotation sequence.  The
        array backend overrides this with a single contiguous pass.
        """
        order = self.order
        for site in sites:
            order.rotate_front(site)

    # -- comparison ----------------------------------------------------------

    def compare(self, other: "BasicRotatingVector") -> Ordering:
        """Algorithm 1 (COMPARE): O(1) comparison via the front elements.

        Correctness requires each vector's front element to be *fresh*, i.e.
        produced by a local update (``record_update``), not left over from a
        reconciliation merge.  Replication systems guarantee this because the
        hosting site increments its own element right after merging
        concurrent vectors (§2.2, Parker et al. §C); compare
        ``tests/core/test_compare.py::test_unincremented_merge_anomaly``.
        """
        mine, theirs = self.first(), other.first()
        if mine is None and theirs is None:
            return Ordering.EQUAL
        if mine is None:
            return Ordering.BEFORE
        if theirs is None:
            return Ordering.AFTER
        la, ua = mine.site, mine.value
        lb, ub = theirs.site, theirs.value
        if ua == other[la] and self[lb] == ub:
            return Ordering.EQUAL
        if ua <= other[la]:
            return Ordering.BEFORE
        if ub <= self[lb]:
            return Ordering.AFTER
        return Ordering.CONCURRENT

    def compare_full(self, other: "BasicRotatingVector") -> Ordering:
        """Traditional elementwise comparison, as a reference oracle."""
        return self.to_version_vector().compare(other.to_version_vector())

    # -- conversions and equality ----------------------------------------------

    def to_version_vector(self) -> VersionVector:
        """The plain version vector this rotating vector represents."""
        return VersionVector({e.site: e.value for e in self.order})

    def same_values(self, other: "BasicRotatingVector") -> bool:
        """True iff both represent the same plain version vector."""
        return self.to_version_vector() == other.to_version_vector()

    def same_structure(self, other: "BasicRotatingVector") -> bool:
        """True iff order, values, and per-element bits all coincide."""
        return self.order.as_tuples() == other.order.as_tuples()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BasicRotatingVector):
            return NotImplemented
        return self.same_values(other)

    # Vectors are mutable containers: explicitly unhashable, so identity
    # bugs can't hide in sets or dict keys (``hash(v)`` raises TypeError).
    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        inner = ", ".join(repr(e) for e in self.order)
        return f"{type(self).__name__}⟨{inner}⟩"
