"""Doubly-linked total order of vector elements with O(1) ROTATE.

The paper's rotating vectors pair a version vector with a total order ``≺``
of its elements.  The order is "front = most recently modified": whenever
site *i* updates the replica, ``ROTATE(φ, i)`` moves the *i*-th element to
the first position.  During synchronization the receiver re-anchors received
elements with ``ROTATE(prev, i)`` so its front mirrors the sender's.

Each element carries, besides its value, the *conflict bit* used by CRV
(§3.2) and the *segment bit* used by SRV (§4).  The paper's modified ROTATE
carries a set segment bit to the element's predecessor, because a segment
bit of one marks the **last** element of a segment: when that element
leaves, its predecessor becomes the segment's new last element.  The carry
is a no-op for BRV/CRV, whose segment bits are never set, so this class
implements it unconditionally.

Storage is O(n) (assumption (i) in §3.3 grants O(1) dictionary operations).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple


class Element:
    """One vector element: site name, value, conflict bit, segment bit.

    Elements are nodes of the doubly-linked order; ``prev``/``next`` point
    toward the front (least, most recent) and back (greatest, oldest)
    respectively.  Client code treats instances as read-mostly views and
    mutates them only through :class:`ElementOrder`.
    """

    __slots__ = ("site", "value", "conflict", "segment", "prev", "next")

    def __init__(self, site: str, value: int) -> None:
        self.site = site
        self.value = value
        self.conflict = False
        self.segment = False
        self.prev: Optional[Element] = None
        self.next: Optional[Element] = None

    def __repr__(self) -> str:
        bits = ("̅" if self.conflict else "") + ("|" if self.segment else "")
        return f"({self.site}:{self.value}{bits})"


class ElementOrder:
    """The total order ``≺`` over a vector's non-zero elements.

    Provides the operations the paper's algorithms need, all O(1) except
    iteration:

    * ``first()`` / ``last()`` — ``⌊v⌋`` and ``⌈v⌉``.
    * ``rotate_front(site)`` — ``ROTATE(φ, i)``.
    * ``rotate_after(prev_site, site)`` — ``ROTATE(p, i)``.
    * element lookup by site name.
    """

    __slots__ = ("_by_site", "_head", "_tail", "_version")

    def __init__(self) -> None:
        self._by_site: Dict[str, Element] = {}
        self._head: Optional[Element] = None
        self._tail: Optional[Element] = None
        self._version = 0

    # -- change tracking -------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic mutation counter; derived caches key on it.

        Every rotation/removal bumps it.  Code that writes element fields
        directly (protocol receivers re-anchoring elements, segment-boundary
        writes) must call :meth:`touch` so caches keyed on the version — the
        SRV segment-partition cache in :mod:`repro.core.skip` — never serve
        a stale parse.
        """
        return self._version

    def touch(self) -> None:
        """Declare an out-of-band mutation (direct element field write)."""
        self._version += 1

    # -- lookups -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_site)

    def __contains__(self, site: str) -> bool:
        return site in self._by_site

    def get(self, site: str) -> Optional[Element]:
        """The element for ``site``, or None if its value is zero."""
        return self._by_site.get(site)

    def value(self, site: str) -> int:
        """``v[site]``; absent elements read as 0."""
        element = self._by_site.get(site)
        return element.value if element is not None else 0

    def first(self) -> Optional[Element]:
        """``⌊v⌋`` — the least (front, most recently modified) element."""
        return self._head

    def last(self) -> Optional[Element]:
        """``⌈v⌉`` — the greatest (back, oldest) element."""
        return self._tail

    def __iter__(self) -> Iterator[Element]:
        """Elements in ascending ``≺`` order (front to back)."""
        node = self._head
        while node is not None:
            yield node
            node = node.next

    def sites_in_order(self) -> List[str]:
        """Site names in ascending ≺ order."""
        return [element.site for element in self]

    # -- linking primitives ----------------------------------------------------

    def _unlink(self, element: Element) -> None:
        """Detach ``element``, carrying a set segment bit to its predecessor.

        The carry implements the paper's modified ROTATE for SRV: the bit
        marks a segment's last element, so when that element leaves its
        position the previous element inherits the boundary.  A predecessor
        of ``None`` means the element was the front; the (single-element)
        segment simply vanishes with it.
        """
        if element.segment and element.prev is not None:
            element.prev.segment = True
        if element.prev is not None:
            element.prev.next = element.next
        else:
            self._head = element.next
        if element.next is not None:
            element.next.prev = element.prev
        else:
            self._tail = element.prev
        element.prev = element.next = None

    def _link_front(self, element: Element) -> None:
        element.prev = None
        element.next = self._head
        if self._head is not None:
            self._head.prev = element
        self._head = element
        if self._tail is None:
            self._tail = element

    def _link_after(self, anchor: Element, element: Element) -> None:
        element.prev = anchor
        element.next = anchor.next
        if anchor.next is not None:
            anchor.next.prev = element
        else:
            self._tail = element
        anchor.next = element

    def _obtain(self, site: str) -> Element:
        """The element for ``site``, creating a detached zero element if new."""
        element = self._by_site.get(site)
        if element is None:
            element = Element(site, 0)
            self._by_site[site] = element
        return element

    # -- ROTATE ---------------------------------------------------------------

    def rotate_front(self, site: str) -> Element:
        """``ROTATE(φ, site)``: move (or insert) the element to the front.

        This is the hottest mutation in the system (every local update and
        most receiver-side re-anchors call it), so the unlink/relink is
        inlined rather than routed through the helpers.  A non-head element
        found linked always has a predecessor (a linked ``prev is None``
        node *is* the head, which returned already); an element registered
        but detached (``rotate_after``'s self-anchor no-op) has neither
        neighbor and skips straight to the relink.
        """
        self._version += 1
        element = self._by_site.get(site)
        if element is None:
            element = Element(site, 0)
            self._by_site[site] = element
        elif element is self._head:
            return element
        else:
            prev = element.prev
            if prev is not None:
                nxt = element.next
                if element.segment:
                    prev.segment = True
                prev.next = nxt
                if nxt is not None:
                    nxt.prev = prev
                else:
                    self._tail = prev
        head = self._head
        element.prev = None
        element.next = head
        if head is not None:
            head.prev = element
        self._head = element
        if self._tail is None:
            self._tail = element
        return element

    def remove(self, site: str) -> Optional[Element]:
        """Permanently drop an element (site retirement, §7 pruning).

        Carries a set segment bit to the predecessor exactly like a
        rotation, so SRV segment parsing stays coherent.  Returns the
        detached element, or None if the site had no element.
        """
        element = self._by_site.pop(site, None)
        if element is None:
            return None
        self._version += 1
        self._unlink(element)
        return element

    def rotate_after(self, prev_site: Optional[str], site: str) -> Element:
        """``ROTATE(prev_site, site)``: place the element right after ``prev``.

        ``prev_site=None`` stands for the paper's ``p = φ`` and is equivalent
        to :meth:`rotate_front`.  Rotating an element after itself is a
        structural no-op (it already occupies the requested slot).
        """
        if prev_site is None:
            return self.rotate_front(site)
        self._version += 1
        if prev_site == site:
            return self._obtain(site)
        anchor = self._by_site.get(prev_site)
        if anchor is None:
            raise KeyError(f"anchor element {prev_site!r} not in order")
        element = self._obtain(site)
        if anchor.next is element:
            return element
        if element.prev is not None or element is self._head:
            self._unlink(element)
        self._link_after(anchor, element)
        return element

    # -- snapshots -----------------------------------------------------------

    def copy(self) -> "ElementOrder":
        """A deep copy preserving order, values, and both per-element bits.

        Builds the clone's links directly instead of replaying rotations —
        the source order is already correct, so each node needs exactly one
        construction and one link, with no per-element dictionary probes or
        anchor checks.  Vector copies dominate workload replay and cluster
        benchmarks, which is why this path is flattened.
        """
        clone = ElementOrder()
        by_site = clone._by_site
        tail: Optional[Element] = None
        node = self._head
        while node is not None:
            copied = Element(node.site, node.value)
            copied.conflict = node.conflict
            copied.segment = node.segment
            by_site[copied.site] = copied
            if tail is None:
                clone._head = copied
            else:
                tail.next = copied
                copied.prev = tail
            tail = copied
            node = node.next
        clone._tail = tail
        return clone

    def as_tuples(self) -> List[Tuple[str, int, bool, bool]]:
        """``(site, value, conflict, segment)`` rows in ``≺`` order."""
        return [(e.site, e.value, e.conflict, e.segment) for e in self]

    def __repr__(self) -> str:
        return "⟨" + ", ".join(repr(e) for e in self) + "⟩"
