"""Exception hierarchy for the ``repro`` library.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the interesting sub-cases.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConcurrentVectorsError(ReproError):
    """A protocol that requires non-concurrent inputs received concurrent ones.

    Raised by :func:`repro.protocols.syncb.sync_brv` when the two vectors are
    concurrent: Algorithm 2 (SYNCB) carries the explicit precondition
    ``a`` is not concurrent with ``b`` and BRV provides no conflict
    reconciliation.
    """


class ConflictDetected(ReproError):
    """Two replicas were found to be concurrent under a *manual* policy.

    Manual conflict resolution excludes conflicting replicas from the system
    until a human merges them; the replication layer signals that situation
    with this exception (or records it, depending on configuration).
    """

    def __init__(self, message: str, *, site_a: str | None = None,
                 site_b: str | None = None) -> None:
        super().__init__(message)
        self.site_a = site_a
        self.site_b = site_b


class ValidationError(ReproError, ValueError):
    """A configuration value object was constructed with nonsensical values.

    Raised eagerly by :class:`~repro.net.channel.ChannelSpec`,
    :class:`~repro.net.faults.FaultSpec`, and
    :class:`~repro.net.faults.RetryPolicy` — a silently-accepted negative
    latency or out-of-range fault probability would invalidate every
    measurement downstream.  Subclasses :class:`ValueError` too, so
    callers that guarded construction with ``except ValueError`` keep
    working.
    """


class ProtocolError(ReproError):
    """A protocol state machine received a message it cannot handle."""


class SessionError(ReproError):
    """A protocol session driver failed to run its coroutines to completion."""


class SimulationError(ReproError):
    """The discrete-event simulator was asked to do something impossible."""


class InvariantViolationError(ReproError):
    """An inline invariant checker caught an impossible system state.

    Raised by :class:`repro.obs.monitor.ClusterMonitor` in strict mode the
    moment an accounting identity, an ancestor-closure check, or a
    COMPARE-vs-oracle spot check fails mid-run; in counting mode the same
    evidence is recorded as an ``invariant_violation`` trace event instead.
    Either way the violation falsifies the harness, not the workload.
    """


class UnknownSiteError(ReproError, KeyError):
    """A site name was used that the membership registry does not know."""


class GraphError(ReproError):
    """A causal/replication graph operation violated a structural invariant."""
