"""Trace events consumed by the workload runners.

A workload is a deterministic sequence of events; the same trace can be
replayed against any metadata kind or transfer model, which is how the
benchmarks compare schemes on identical histories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union


@dataclass(frozen=True)
class CreateEvent:
    """Create ``object_id`` on ``site`` with an initial value/payload."""

    site: str
    object_id: str
    value: Any = None


@dataclass(frozen=True)
class CloneEvent:
    """First-time replication of ``object_id`` from ``src`` onto ``dst``."""

    src: str
    dst: str
    object_id: str


@dataclass(frozen=True)
class UpdateEvent:
    """A local update of ``object_id`` on ``site``."""

    site: str
    object_id: str
    value: Any = None


@dataclass(frozen=True)
class SyncEvent:
    """A directional pull of ``object_id``: ``dst`` synchronizes from ``src``."""

    src: str
    dst: str
    object_id: str
    bidirectional: bool = False


TraceEvent = Union[CreateEvent, CloneEvent, UpdateEvent, SyncEvent]
