"""Cluster-scale workload schedules: who syncs with whom, and when.

The anti-entropy layer (:mod:`repro.replication.antientropy`) generates its
gossip schedule *dynamically* while the simulation runs; that is right for
convergence experiments but wrong for performance regression, where two
runs must execute the **same** session schedule so their traffic and
timing are comparable.  This module precomputes deterministic schedules —
plain value objects a :class:`~repro.net.cluster.ClusterRunner` (or any
other driver) can execute, re-execute, or replay sequentially.

Schedules are pure functions of their parameters and a seed: the same
arguments always produce the identical event list, regardless of how the
consuming runner interleaves execution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.net.faults import FaultSpec
from repro.workload.topology import RandomPairTopology, Topology


@dataclass(frozen=True)
class SessionRequest:
    """One requested pairwise synchronization: ``dst`` pulls from ``src``.

    ``at`` is the earliest simulated start time; a runner with per-site
    session queues may start the session later if either endpoint is busy.
    ``objs`` optionally restricts a *sharded* session to a subset of the
    pair's shared objects (the deterministic closing sweep uses this to
    scope each session to the replica groups it closes); ``None`` — the
    default — syncs everything the pair shares, and unsharded runners
    ignore the field entirely.
    """

    at: float
    src: str
    dst: str
    objs: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True)
class UpdateRequest:
    """One local update landing on ``site`` at simulated time ``at``.

    ``obj`` names the replicated object the update lands on; clusters
    replicating a single object (the default) leave it at 0.
    """

    at: float
    site: str
    obj: int = 0


def site_names(n_sites: int) -> List[str]:
    """The canonical fleet naming used across workloads: S000, S001, …"""
    return [f"S{i:03d}" for i in range(n_sites)]


def gossip_schedule(sites: Sequence[str], *, rounds: int,
                    period: float = 1.0, jitter: float = 0.2,
                    topology: Optional[Topology] = None,
                    seed: int = 0) -> List[SessionRequest]:
    """A fixed gossip schedule: every site initiates once per round.

    Per round each site draws a jittered offset around ``round·period``
    and a partner from ``topology`` (uniform random pairs by default); the
    result is sorted by request time, ties broken by draw order, so
    executing it is deterministic.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if period <= 0:
        raise ValueError(f"period must be > 0, got {period}")
    topology = topology or RandomPairTopology()
    rng = random.Random(seed)
    requests: List[SessionRequest] = []
    step = 0
    site_list = list(sites)
    for round_no in range(rounds):
        base = (round_no + 1) * period
        for _ in site_list:
            offset = 1 + jitter * (2 * rng.random() - 1)
            src, dst = topology.pair(rng, step, site_list)
            requests.append(SessionRequest(at=base * offset,
                                           src=src, dst=dst))
            step += 1
    requests.sort(key=lambda r: r.at)
    return requests


def update_schedule(sites: Sequence[str], *, n_updates: int,
                    interval: float = 0.7, seed: int = 0,
                    writers: Optional[Sequence[str]] = None,
                    n_objects: int = 1) -> List[UpdateRequest]:
    """Exponentially-spaced updates over ``writers`` (default: all sites).

    Restricting ``writers`` to a single site produces the conflict-free
    regime BRV requires (§3.1: no reconciliation); the default multi-writer
    draw exercises CRV/SRV reconciliation under concurrency.  With
    ``n_objects > 1`` each update additionally draws a uniform object
    index; ``n_objects=1`` emits the historical single-object schedule
    (every request's ``obj`` is 0 and no extra random draws happen, so
    seeded schedules are unchanged).
    """
    if n_updates < 0:
        raise ValueError(f"n_updates must be >= 0, got {n_updates}")
    if interval <= 0:
        raise ValueError(f"interval must be > 0, got {interval}")
    if n_objects < 1:
        raise ValueError(f"n_objects must be >= 1, got {n_objects}")
    pool = list(writers) if writers is not None else list(sites)
    if n_updates and not pool:
        raise ValueError("no writers to draw updates from")
    rng = random.Random(seed)
    clock = 0.0
    requests: List[UpdateRequest] = []
    for _ in range(n_updates):
        clock += rng.expovariate(1.0 / interval)
        obj = rng.randrange(n_objects) if n_objects > 1 else 0
        requests.append(UpdateRequest(at=clock, site=rng.choice(pool),
                                      obj=obj))
    return requests


def chaos_faults(loss: float, *, latency: float,
                 seed: int = 0) -> FaultSpec:
    """The standard chaos profile for a nominal loss rate.

    One scalar — the nominal ``loss`` rate — expands into the full fault
    mix the benchmark grid and the chaos demo share: drops at ``loss``,
    duplication at half of it, reordering at ``loss`` with a window of
    four propagation latencies (enough to land a copy behind traffic sent
    later, not enough to dwarf the ARQ timeout).  Keeping the expansion
    here means every consumer labels a run by one number and still
    injects the identical, seeded fault mix.
    """
    return FaultSpec(drop=loss, duplicate=loss / 2, reorder=loss,
                     reorder_window=4 * latency, seed=seed)
