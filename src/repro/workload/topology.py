"""Synchronization topologies: who pulls from whom.

The communication pattern controls the conflict rate and the shape of the
replication graph: a star topology funnels everything through a hub and
rarely conflicts; random pairwise gossip conflicts often; a ring propagates
updates in a fixed direction.  Topologies are deterministic functions of a
seeded RNG and the step index so traces are reproducible.
"""

from __future__ import annotations

import random
from typing import List, Protocol, Tuple


class Topology(Protocol):
    """Chooses the (src, dst) pair for a synchronization event."""

    def pair(self, rng: random.Random, step: int,
             sites: List[str]) -> Tuple[str, str]:
        """Return ``(src, dst)``: dst pulls from src."""
        ...


class RandomPairTopology:
    """Uniform random gossip: any distinct ordered pair."""

    def pair(self, rng: random.Random, step: int,
             sites: List[str]) -> Tuple[str, str]:
        """Pick a uniformly random ordered pair of distinct sites."""
        src, dst = rng.sample(sites, 2)
        return src, dst


class RingTopology:
    """Each sync moves clockwise: site i pulls from site i−1."""

    def pair(self, rng: random.Random, step: int,
             sites: List[str]) -> Tuple[str, str]:
        """The clockwise pair for this step index."""
        index = step % len(sites)
        return sites[(index - 1) % len(sites)], sites[index]


class StarTopology:
    """Spokes exchange with a hub (the first site), alternating direction."""

    def pair(self, rng: random.Random, step: int,
             sites: List[str]) -> Tuple[str, str]:
        """A hub↔spoke pair, direction alternating by step parity."""
        hub = sites[0]
        spoke = rng.choice(sites[1:]) if len(sites) > 1 else hub
        if step % 2 == 0:
            return spoke, hub   # hub pulls from spoke
        return hub, spoke       # spoke pulls from hub


class ClusteredTopology:
    """Mostly-local gossip: pairs inside a cluster, occasional bridges.

    Models multi-regional collaboration (§1): sites split into ``clusters``
    groups; with probability ``bridge_probability`` a sync crosses groups.
    """

    def __init__(self, clusters: int = 2,
                 bridge_probability: float = 0.1) -> None:
        if clusters < 1:
            raise ValueError("clusters must be >= 1")
        if not 0 <= bridge_probability <= 1:
            raise ValueError("bridge_probability must be in [0, 1]")
        self.clusters = clusters
        self.bridge_probability = bridge_probability

    def _cluster_of(self, index: int, n: int) -> int:
        size = max(1, (n + self.clusters - 1) // self.clusters)
        return index // size

    def pair(self, rng: random.Random, step: int,
             sites: List[str]) -> Tuple[str, str]:
        """A pair inside one cluster, or a bridge with small probability."""
        n = len(sites)
        if n < 2:
            return sites[0], sites[0]
        for _ in range(32):
            i, j = rng.sample(range(n), 2)
            same = self._cluster_of(i, n) == self._cluster_of(j, n)
            cross = rng.random() < self.bridge_probability
            if same != cross:
                return sites[i], sites[j]
        return sites[i], sites[j]  # degenerate cluster layout: accept any
