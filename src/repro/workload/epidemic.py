"""Epidemic dissemination schedules for sharded multi-region fleets.

The fixed star/ring sweeps in :mod:`repro.workload.cluster` assume every
site replicates everything — gather-at-hub closes the whole fleet.  A
sharded fleet needs a different shape: updates to an object only concern
its replica group, so dissemination is *epidemic* (seeded push/pull
gossip among shard peers, region-aware) and convergence is closed by a
deterministic per-group sweep:

* :func:`epidemic_schedule` — per round every site contacts ``fanout``
  shard peers, preferring same-region peers with probability
  ``local_bias``; odd rounds push (the initiator is the sender), even
  rounds pull.  Pure function of (spec, shards, rounds, seed).
* :func:`sharded_update_schedule` — updates land only on sites that
  replicate the drawn object.
* :func:`closing_sweep` — the deterministic two-phase closer: each
  group's leader (its first ring replica) pulls from every member, then
  pushes back.  Sessions are scoped (via ``SessionRequest.objs``) to
  exactly the objects the leader leads for that member, so a sweep
  session can never spawn a fresh §2.2 self-increment on an object some
  *other* group's sweep already closed.  After phase 2 the leader's
  state dominates every member on every led object — convergence is
  structural, not probabilistic.

Phases are spaced ``settle`` simulated seconds apart (simulated time is
free) so each phase's queue drains before the next begins — the
domination argument needs phase 1 complete before phase 2 starts.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.net.sharding import ShardMap
from repro.net.topology import TopologySpec, select_peer
from repro.workload.cluster import SessionRequest, UpdateRequest


def epidemic_schedule(spec: TopologySpec, shards: ShardMap, *,
                      rounds: int, period: float = 1.0,
                      jitter: float = 0.2,
                      seed: Optional[int] = None) -> List[SessionRequest]:
    """Seeded push/pull gossip among shard peers, region-aware.

    Per round each site draws ``spec.gossip.fanout`` peers from its
    shard-peer set (sites sharing at least one object — so no session
    ever syncs nothing).  Each draw first picks a side of the
    local/remote split — same-region peers with probability
    ``local_bias`` when both sides are populated — then a uniform peer
    from that side via :func:`~repro.net.topology.select_peer`, the
    same primitive the store's anti-entropy uses.  With
    ``gossip.push_pull`` odd rounds reverse direction (the initiator
    sends); otherwise every round is a pull, the historical
    anti-entropy shape.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if period <= 0:
        raise ValueError(f"period must be > 0, got {period}")
    gossip = spec.gossip
    rng = random.Random(f"epidemic:{spec.seed if seed is None else seed}")
    sites = spec.site_names()
    requests: List[SessionRequest] = []
    for round_no in range(rounds):
        base = (round_no + 1) * period
        push = gossip.push_pull and round_no % 2 == 1
        for site in sites:
            region = spec.region_of(site)
            candidates = shards.shard_peers.get(site, ())
            if not candidates:
                continue  # hosts nothing — nothing to gossip about
            local = [p for p in candidates
                     if spec.region_of(p) == region]
            remote = [p for p in candidates
                      if spec.region_of(p) != region]
            for _ in range(gossip.fanout):
                offset = 1 + jitter * (2 * rng.random() - 1)
                if local and remote:
                    pool = local if rng.random() < gossip.local_bias \
                        else remote
                else:
                    pool = local or remote
                peer = select_peer(rng, site, pool)
                src, dst = (site, peer) if push else (peer, site)
                requests.append(SessionRequest(at=base * offset,
                                               src=src, dst=dst))
    requests.sort(key=lambda r: r.at)
    return requests


def sharded_update_schedule(spec: TopologySpec, shards: ShardMap, *,
                            n_updates: int, interval: float = 0.25,
                            leader_only: bool = False,
                            seed: Optional[int] = None
                            ) -> List[UpdateRequest]:
    """Exponentially-spaced updates landing only on hosting replicas.

    Each update draws a uniform object, then a uniform site from that
    object's replica group — the sharded analogue of
    :func:`~repro.workload.cluster.update_schedule`.  With
    ``leader_only`` every update lands on the object's ring leader (its
    first replica): one writer per object, the conflict-free regime BRV
    requires — the sharded analogue of the classic schedules'
    single-writer ``writers=[hub]`` restriction.
    """
    if n_updates < 0:
        raise ValueError(f"n_updates must be >= 0, got {n_updates}")
    if interval <= 0:
        raise ValueError(f"interval must be > 0, got {interval}")
    rng = random.Random(
        f"epidemic-updates:{spec.seed if seed is None else seed}")
    clock = 0.0
    requests: List[UpdateRequest] = []
    for _ in range(n_updates):
        clock += rng.expovariate(1.0 / interval)
        obj = rng.randrange(shards.n_objects)
        site = (shards.replicas[obj][0] if leader_only
                else rng.choice(shards.replicas[obj]))
        requests.append(UpdateRequest(at=clock, site=site, obj=obj))
    return requests


def closing_sweep(shards: ShardMap, *, start: float,
                  spacing: float = 0.001,
                  settle: float = 500.0) -> List[SessionRequest]:
    """The deterministic convergence closer for a sharded fleet.

    Phase 1 (from ``start``): every group's leader pulls from each
    member.  Phase 2 (``settle`` seconds after phase 1's last request):
    the leader pushes back.  Sessions between the same (member, leader)
    pair are deduplicated across groups by unioning their object sets;
    each session's ``objs`` restriction keeps it scoped to objects that
    leader actually leads, so no sweep session can reconcile — and
    thereby self-increment — an object outside its own groups.

    Why this closes: all updates to an object land inside its replica
    group, so after phase 1 the leader's copy dominates every member's
    (reconciliation self-increments during phase 1 land on the leader
    and are included).  Phase 2 then finds every member BEFORE-or-EQUAL
    the leader — a pure adoption with no new increments — leaving all
    replicas equal.  The spacing between phases is load-bearing: each
    phase's sessions must have drained before the next phase (and the
    sweep itself must start after the epidemic traffic has drained),
    which is what the generous ``settle`` gaps buy; simulated seconds
    are free.
    """
    if spacing <= 0:
        raise ValueError(f"spacing must be > 0, got {spacing}")
    if settle <= 0:
        raise ValueError(f"settle must be > 0, got {settle}")
    pair_objs: Dict[Tuple[str, str], List[int]] = {}
    order: List[Tuple[str, str]] = []
    for obj, group in enumerate(shards.replicas):
        leader = group[0]
        for member in group[1:]:
            key = (member, leader)
            if key not in pair_objs:
                pair_objs[key] = []
                order.append(key)
            pair_objs[key].append(obj)
    requests: List[SessionRequest] = []
    for index, (member, leader) in enumerate(order):
        requests.append(SessionRequest(
            at=start + index * spacing, src=member, dst=leader,
            objs=tuple(pair_objs[(member, leader)])))
    phase2 = start + len(order) * spacing + settle
    for index, (member, leader) in enumerate(order):
        requests.append(SessionRequest(
            at=phase2 + index * spacing, src=leader, dst=member,
            objs=tuple(pair_objs[(member, leader)])))
    return requests
