"""Scripted scenarios, including the paper's worked examples.

The functions here rebuild, executably, the exact artifacts of the paper:

* :func:`figure1_graph` — the 9-node replication graph of Figure 1 with
  its vectors (reconciliations are shown pre-increment, as in the figure);
* :func:`figure1_vectors` — the θ₁…θ₉ rotating vectors produced by driving
  the real SYNCC/SYNCS protocols through the same history (footnote 1:
  θ₇ := SYNCC_θ₆(θ₂) and θ₉ := SYNCC_θ₃(θ₈));
* :func:`figure3_graphs` — the causal graphs of sites A and C from
  Figure 3, used by the SYNCG reproduction;
* a few structured traces the benchmarks reuse.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Type

from repro.core.conflict import ConflictRotatingVector
from repro.core.rotating import BasicRotatingVector
from repro.core.skip import SkipRotatingVector
from repro.errors import ReproError
from repro.graphs.causalgraph import CausalGraph, build_graph
from repro.graphs.replicationgraph import ReplicationGraph
from repro.protocols.syncc import sync_crv
from repro.protocols.syncs import sync_srv
from repro.workload.events import (CloneEvent, CreateEvent, SyncEvent,
                                   TraceEvent, UpdateEvent)

#: Figure 1's nine vectors as plain ``{site: value}`` maps, keyed by node id.
FIGURE1_VECTORS: Dict[int, Dict[str, int]] = {
    1: {"A": 1},
    2: {"B": 1, "A": 1},
    3: {"C": 1, "B": 1, "A": 1},
    4: {"E": 1, "A": 1},
    5: {"F": 1, "E": 1, "A": 1},
    6: {"G": 1, "F": 1, "E": 1, "A": 1},
    7: {"G": 1, "F": 1, "E": 1, "B": 1, "A": 1},
    8: {"H": 1, "G": 1, "F": 1, "E": 1, "B": 1, "A": 1},
    9: {"C": 1, "H": 1, "G": 1, "F": 1, "E": 1, "B": 1, "A": 1},
}

#: Figure 1's element orders (ascending ≺, front first), keyed by node id.
FIGURE1_ORDERS: Dict[int, List[str]] = {
    1: ["A"],
    2: ["B", "A"],
    3: ["C", "B", "A"],
    4: ["E", "A"],
    5: ["F", "E", "A"],
    6: ["G", "F", "E", "A"],
    7: ["G", "F", "E", "B", "A"],
    8: ["H", "G", "F", "E", "B", "A"],
    9: ["C", "H", "G", "F", "E", "B", "A"],
}


def figure1_graph() -> ReplicationGraph:
    """The replication graph of Figure 1, node ids and vectors included."""
    graph = ReplicationGraph()
    order = FIGURE1_ORDERS

    def snapshot(node: int) -> List[Tuple[str, int]]:
        return [(site, FIGURE1_VECTORS[node][site]) for site in order[node]]

    graph.add_initial(snapshot(1), node_id=1)
    graph.add_update(1, snapshot(2), node_id=2)
    graph.add_update(2, snapshot(3), node_id=3)
    graph.add_update(1, snapshot(4), node_id=4)
    graph.add_update(4, snapshot(5), node_id=5)
    graph.add_update(5, snapshot(6), node_id=6)
    graph.add_merge(2, 6, snapshot(7), node_id=7)
    graph.add_update(7, snapshot(8), node_id=8)
    graph.add_merge(8, 3, snapshot(9), node_id=9)
    # Figure 1 labels: node 7 is hosted on D and A; node 9 on B.
    graph.label(7, "D")
    graph.label(7, "A")
    graph.label(9, "B")
    return graph


def figure1_vectors(
    cls: Type[BasicRotatingVector] = ConflictRotatingVector,
) -> Dict[int, BasicRotatingVector]:
    """θ₁…θ₉ built by replaying Figure 1's history through real protocols.

    Reconciliations follow footnote 1 — ``θ₇ := SYNCC_θ₆(θ₂)`` and
    ``θ₉ := SYNCC_θ₃(θ₈)`` (or their SYNCS counterparts for SRV) — and,
    matching the figure, the post-reconciliation self-increment is *not*
    applied, so the vectors are exactly the printed ones.
    """
    if issubclass(cls, SkipRotatingVector):
        def reconcile(a, b):
            sync_srv(a, b, reconcile=True)
    elif issubclass(cls, ConflictRotatingVector):
        def reconcile(a, b):
            sync_crv(a, b, reconcile=True)
    else:
        raise ReproError(
            "Figure 1 contains reconciliations; BRV cannot replay it (§3.1)")

    theta: Dict[int, BasicRotatingVector] = {}
    theta[1] = cls()
    theta[1].record_update("A")
    theta[2] = theta[1].copy()
    theta[2].record_update("B")
    theta[3] = theta[2].copy()
    theta[3].record_update("C")
    theta[4] = theta[1].copy()
    theta[4].record_update("E")
    theta[5] = theta[4].copy()
    theta[5].record_update("F")
    theta[6] = theta[5].copy()
    theta[6].record_update("G")
    theta[7] = theta[2].copy()
    reconcile(theta[7], theta[6])
    theta[8] = theta[7].copy()
    theta[8].record_update("H")
    theta[9] = theta[8].copy()
    reconcile(theta[9], theta[3])
    return theta


def figure3_graphs() -> Tuple[CausalGraph, CausalGraph]:
    """The causal graphs of site A and site C from Figure 3.

    Site A holds operations {1, 2, 4, 5, 6, 7} (7 merges branches 2 and 6);
    site C holds {1, 4, 5, 6}.  Parent sides follow the paper's traversal:
    node 7's left parent is 6, so the 7→6→…→1 branch is visited first.
    """
    site_a = build_graph([(None, 1), (1, 2), (1, 4), (4, 5), (5, 6),
                          (6, 7), (2, 7)])
    site_c = build_graph([(None, 1), (1, 4), (4, 5), (5, 6)])
    return site_a, site_c


# -- structured traces reused by benchmarks -----------------------------------------


def chain_trace(n_sites: int, rounds: int, object_id: str = "obj0"
                ) -> List[TraceEvent]:
    """Updates at the head site flow down a chain — BRV's best case.

    Every round: one update at site 0, then a cascade of pulls
    1←0, 2←1, …; no two updates are ever concurrent.
    """
    sites = [f"S{i:03d}" for i in range(n_sites)]
    trace: List[TraceEvent] = [CreateEvent(sites[0], object_id, "v0")]
    trace.extend(CloneEvent(sites[0], dst, object_id) for dst in sites[1:])
    for round_no in range(rounds):
        trace.append(UpdateEvent(sites[0], object_id, f"v{round_no + 1}"))
        for index in range(1, n_sites):
            trace.append(SyncEvent(sites[index - 1], sites[index], object_id))
    return trace


def all_write_then_gossip_trace(n_sites: int, rounds: int,
                                object_id: str = "obj0") -> List[TraceEvent]:
    """Every site writes, then a gossip sweep reconciles — maximal conflicts.

    Models the paper's high-conflict example (§4): a heavily updated,
    append-only replicated log where nearly every synchronization is a
    (syntactic-only) reconciliation.
    """
    sites = [f"S{i:03d}" for i in range(n_sites)]
    trace: List[TraceEvent] = [CreateEvent(sites[0], object_id, "v0")]
    trace.extend(CloneEvent(sites[0], dst, object_id) for dst in sites[1:])
    for round_no in range(rounds):
        for site in sites:
            trace.append(UpdateEvent(site, object_id,
                                     f"{site}r{round_no}"))
        for index in range(1, n_sites):
            trace.append(SyncEvent(sites[index - 1], sites[index], object_id))
        for index in range(n_sites - 2, -1, -1):
            trace.append(SyncEvent(sites[index + 1], sites[index], object_id))
    return trace
