"""Seeded random workload generation with conflict-rate control.

A :class:`WorkloadConfig` describes sites, objects, the update/sync mix,
and the synchronization topology; :func:`generate_trace` expands it into a
deterministic event list that any replication system replays identically.
The *conflict rate* — the fraction of synchronizations that find concurrent
replicas — is an emergent property of the mix: raising ``update_ratio`` or
spreading updates across sites raises it, and the stock configurations
below give the benchmarks calibrated low/medium/high-conflict regimes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from repro.errors import ValidationError
from repro.workload.events import (CloneEvent, CreateEvent, SyncEvent,
                                   TraceEvent, UpdateEvent)
from repro.workload.topology import RandomPairTopology, Topology


def default_value_factory(site: str, object_id: str, sequence: int) -> Any:
    """Distinct, readable replica values for state-transfer workloads."""
    return f"{object_id}@{site}#{sequence}"


@dataclass
class WorkloadConfig:
    """Parameters of a generated workload.

    Attributes:
        n_sites: number of participating sites (named ``S000``, ``S001``…).
        n_objects: replicated objects (named ``obj0``…), all fully cloned.
        steps: number of update/sync events after the setup prologue.
        update_ratio: probability a step is a local update (vs. a sync).
        update_site_bias: exponent skewing update placement; 0 = uniform,
            larger values concentrate updates on few sites (lower conflict).
            *Which* sites are hot is a seed-derived permutation (see
            :func:`hot_site_order`), so bias placement varies per seed
            while staying deterministic.
        topology: synchronization pairing strategy.
        bidirectional: emit anti-entropy exchanges instead of one-way pulls.
        seed: RNG seed; same config + seed ⇒ same trace, always.
        value_factory: values attached to update events.

    Construction validates every numeric field and raises
    :class:`~repro.errors.ValidationError` on nonsense — an out-of-range
    ``update_ratio`` or a zero object count would silently generate a
    trace that measures nothing (matching the ``ChannelSpec`` style).
    """

    n_sites: int = 8
    n_objects: int = 1
    steps: int = 200
    update_ratio: float = 0.5
    update_site_bias: float = 0.0
    topology: Topology = field(default_factory=RandomPairTopology)
    bidirectional: bool = False
    seed: int = 0
    value_factory: Callable[[str, str, int], Any] = default_value_factory

    def __post_init__(self) -> None:
        if self.n_sites < 2:
            raise ValidationError(
                f"workloads need at least two sites, got {self.n_sites}")
        if self.n_objects < 1:
            raise ValidationError(
                f"n_objects must be >= 1, got {self.n_objects}")
        if self.steps < 0:
            raise ValidationError(f"steps must be >= 0, got {self.steps}")
        if not 0.0 <= self.update_ratio <= 1.0:
            raise ValidationError(
                f"update_ratio must be in [0, 1], got {self.update_ratio}")
        if self.update_site_bias < 0:
            raise ValidationError(
                f"update_site_bias must be >= 0, "
                f"got {self.update_site_bias}")

    def site_names(self) -> List[str]:
        """The generated site names, in id order."""
        return [f"S{i:03d}" for i in range(self.n_sites)]

    def object_names(self) -> List[str]:
        """The generated object names."""
        return [f"obj{i}" for i in range(self.n_objects)]


def low_conflict_config(n_sites: int = 8, steps: int = 200,
                        seed: int = 0) -> WorkloadConfig:
    """Few, concentrated updates and frequent syncs: conflicts are rare."""
    return WorkloadConfig(n_sites=n_sites, steps=steps, seed=seed,
                          update_ratio=0.2, update_site_bias=2.0)


def medium_conflict_config(n_sites: int = 8, steps: int = 200,
                           seed: int = 0) -> WorkloadConfig:
    """Balanced mix: occasional concurrent updates."""
    return WorkloadConfig(n_sites=n_sites, steps=steps, seed=seed,
                          update_ratio=0.5)


def high_conflict_config(n_sites: int = 8, steps: int = 200,
                         seed: int = 0) -> WorkloadConfig:
    """Update-heavy, uniform placement: most syncs reconcile (§4's regime,
    e.g. a heavily appended replicated log)."""
    return WorkloadConfig(n_sites=n_sites, steps=steps, seed=seed,
                          update_ratio=0.8)


def hot_site_order(sites: Sequence[str], seed: int) -> List[str]:
    """The seed-derived hot-site permutation used by biased placement.

    Historically the zipf weights were pinned to site-index order, so
    ``S000`` was the hot site of *every* seeded workload — bias placement
    carried no seed entropy at all.  The permutation is drawn from its
    own derived stream (``hot-sites:<seed>``) so it never perturbs the
    trace RNG: two configs differing only in ``update_site_bias`` still
    draw identical step/object/topology sequences.
    """
    order = list(sites)
    random.Random(f"hot-sites:{seed}").shuffle(order)
    return order


def _pick_update_site(rng: random.Random, sites: List[str], bias: float,
                      hot_order: Optional[Sequence[str]] = None) -> str:
    if bias <= 0:
        return rng.choice(sites)
    # Zipf-ish skew: weight the i-th *hottest* site by (i+1)^-bias.
    ranked = list(hot_order) if hot_order is not None else sites
    weights = [(index + 1) ** -bias for index in range(len(ranked))]
    return rng.choices(ranked, weights=weights, k=1)[0]


def generate_trace(config: WorkloadConfig) -> List[TraceEvent]:
    """Expand a config into a deterministic event trace.

    The prologue creates every object on the first site and clones it to
    all others (so every site participates from the start); the body mixes
    updates and syncs per ``update_ratio``.
    """
    rng = random.Random(config.seed)
    sites = config.site_names()
    objects = config.object_names()
    hot_order = (hot_site_order(sites, config.seed)
                 if config.update_site_bias > 0 else None)

    trace: List[TraceEvent] = []
    for object_id in objects:
        trace.append(CreateEvent(sites[0], object_id,
                                 config.value_factory(sites[0], object_id, 0)))
        for dst in sites[1:]:
            trace.append(CloneEvent(sites[0], dst, object_id))

    sequence = 0
    for step in range(config.steps):
        object_id = rng.choice(objects)
        if rng.random() < config.update_ratio:
            sequence += 1
            site = _pick_update_site(rng, sites, config.update_site_bias,
                                     hot_order=hot_order)
            trace.append(UpdateEvent(
                site, object_id,
                config.value_factory(site, object_id, sequence)))
        else:
            src, dst = config.topology.pair(rng, step, sites)
            trace.append(SyncEvent(src, dst, object_id,
                                   bidirectional=config.bidirectional))
    return trace
