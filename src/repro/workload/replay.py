"""Replaying traces against replication systems.

The same trace drives any metadata kind or transfer model, which is how
benchmarks hold the *history* fixed while varying the *scheme*.  Replays
return a small summary of what happened so harnesses can report conflict
rates alongside traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.replication.opsystem import OpTransferSystem
from repro.replication.statesystem import StateTransferSystem
from repro.workload.events import (CloneEvent, CreateEvent, SyncEvent,
                                   TraceEvent, UpdateEvent)


@dataclass
class ReplaySummary:
    """Counters accumulated over one trace replay."""

    updates: int = 0
    syncs: int = 0
    pulls: int = 0
    reconciliations: int = 0
    conflicts: int = 0
    noops: int = 0
    actions: Dict[str, int] = field(default_factory=dict)

    @property
    def conflict_rate(self) -> float:
        """Fraction of sync pulls that found concurrent replicas."""
        if self.syncs == 0:
            return 0.0
        return (self.reconciliations + self.conflicts) / self.syncs

    def _count(self, action: str) -> None:
        self.actions[action] = self.actions.get(action, 0) + 1
        if action == "pull":
            self.pulls += 1
        elif action in ("reconcile", "merge"):
            self.reconciliations += 1
        elif action == "conflict":
            self.conflicts += 1
        elif action == "none":
            self.noops += 1


def replay_state(trace: List[TraceEvent],
                 system: StateTransferSystem) -> ReplaySummary:
    """Drive a state-transfer system through a trace."""
    summary = ReplaySummary()
    for event in trace:
        if isinstance(event, CreateEvent):
            system.create_object(event.site, event.object_id, event.value)
        elif isinstance(event, CloneEvent):
            system.clone_replica(event.src, event.dst, event.object_id)
            summary.syncs += 1
            summary._count(system.outcomes[-1].action)
        elif isinstance(event, UpdateEvent):
            replica = system.replica(event.site, event.object_id)
            if replica.conflicted:
                continue  # excluded pending manual resolution
            system.update(event.site, event.object_id, event.value)
            summary.updates += 1
        elif isinstance(event, SyncEvent):
            dst = system.replica(event.dst, event.object_id)
            src = system.replica(event.src, event.object_id)
            if dst.conflicted or src.conflicted:
                continue
            outcome = system.pull(event.dst, event.src, event.object_id)
            summary.syncs += 1
            summary._count(outcome.action)
            if event.bidirectional:
                second = system.pull(event.src, event.dst, event.object_id)
                summary.syncs += 1
                summary._count(second.action)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown trace event {event!r}")
    return summary


def replay_ops(trace: List[TraceEvent],
               system: OpTransferSystem) -> ReplaySummary:
    """Drive an operation-transfer system through the same trace shape."""
    summary = ReplaySummary()
    for event in trace:
        if isinstance(event, CreateEvent):
            system.create_object(event.site, event.object_id, event.value)
        elif isinstance(event, CloneEvent):
            system.clone_replica(event.src, event.dst, event.object_id)
            summary.syncs += 1
            summary._count(system.outcomes[-1].action)
        elif isinstance(event, UpdateEvent):
            if system.replica(event.site, event.object_id).conflicted:
                continue
            system.update(event.site, event.object_id, event.value)
            summary.updates += 1
        elif isinstance(event, SyncEvent):
            if system.replica(event.dst, event.object_id).conflicted:
                continue
            outcome = system.pull(event.dst, event.src, event.object_id)
            summary.syncs += 1
            summary._count(outcome.action)
            if (event.bidirectional
                    and not system.replica(event.src,
                                           event.object_id).conflicted):
                second = system.pull(event.src, event.dst, event.object_id)
                summary.syncs += 1
                summary._count(second.action)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown trace event {event!r}")
    return summary
