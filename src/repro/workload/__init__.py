"""Workload generation, topologies, scripted scenarios, and trace replay."""

from repro.workload.events import (CloneEvent, CreateEvent, SyncEvent,
                                   TraceEvent, UpdateEvent)
from repro.workload.generator import (WorkloadConfig, default_value_factory,
                                      generate_trace, high_conflict_config,
                                      low_conflict_config,
                                      medium_conflict_config)
from repro.workload.replay import ReplaySummary, replay_ops, replay_state
from repro.workload.scenarios import (FIGURE1_ORDERS, FIGURE1_VECTORS,
                                      all_write_then_gossip_trace,
                                      chain_trace, figure1_graph,
                                      figure1_vectors, figure3_graphs)
from repro.workload.topology import (ClusteredTopology, RandomPairTopology,
                                     RingTopology, StarTopology, Topology)

__all__ = [
    "CloneEvent",
    "ClusteredTopology",
    "CreateEvent",
    "FIGURE1_ORDERS",
    "FIGURE1_VECTORS",
    "RandomPairTopology",
    "ReplaySummary",
    "RingTopology",
    "StarTopology",
    "SyncEvent",
    "Topology",
    "TraceEvent",
    "UpdateEvent",
    "WorkloadConfig",
    "all_write_then_gossip_trace",
    "chain_trace",
    "default_value_factory",
    "figure1_graph",
    "figure1_vectors",
    "figure3_graphs",
    "generate_trace",
    "high_conflict_config",
    "low_conflict_config",
    "medium_conflict_config",
    "replay_ops",
    "replay_state",
]
