"""Client traffic for the replicated store: zipfian keys, sticky sessions.

The store's cluster scheduler (:mod:`repro.store.cluster`) executes
whatever it is handed; this module generates *client* traffic the way a
serving system sees it and measures what clients feel:

* **Zipfian key popularity** — key ranks get weight ``(rank+1)^-zipf``
  over a seed-derived hot-key permutation (the same idiom as the trace
  generator's hot-*site* permutation: which keys are hot varies per
  seed, deterministically).
* **Configurable read/write mix** — ``read_ratio`` of ops are gets,
  ``delete_ratio`` are deletes, the rest are puts.
* **Per-client session stickiness** — every client is pinned to one
  coordinator site for its whole life and threads the causal context of
  its last observed state into each write, the DVV client contract.

:func:`run_store_workload` pushes the generated ops through a
:class:`~repro.store.cluster.StoreCluster` interleaved with periodic
anti-entropy rounds, appends a deterministic convergence sweep, and
reports end-to-end **latency** (queue wait at a busy coordinator plus
the client↔site round trip) and **staleness** (how far behind the
globally newest write the read replica was) as exact percentiles
through the standard :class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ValidationError
from repro.net.channel import ChannelSpec
from repro.net.faults import RetryPolicy
from repro.obs.consistency import ConsistencyMonitor
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.store.cluster import (ClientOp, StoreCluster, StoreConfig,
                                 StoreRunResult, gossip_peers)
from repro.workload.cluster import chaos_faults, site_names


@dataclass(frozen=True)
class StoreWorkloadConfig:
    """Parameters of one client workload against a store fleet.

    Construction validates every field and raises
    :class:`~repro.errors.ValidationError` on nonsense, matching the
    ``ChannelSpec``/``WorkloadConfig`` style.
    """

    n_sites: int = 8
    n_keys: int = 32
    n_clients: int = 64
    ops: int = 10_000
    read_ratio: float = 0.9
    delete_ratio: float = 0.02
    zipf: float = 1.1
    #: Mean client-op inter-arrival time (exponential), seconds.
    op_interval: float = 0.002
    #: Anti-entropy round period, seconds.
    sync_period: float = 1.0
    protocol: str = "srv"
    #: Vector storage backend (``array`` fast path or ``linked`` oracle).
    backend: str = "array"
    batch_size: int = 8
    #: Nominal chaos loss rate on the inter-site links (0 = perfect).
    loss_rate: float = 0.0
    chaos_seed: int = 0
    net_latency: float = 0.01
    bandwidth: float = 1_000_000.0
    client_latency: float = 0.002
    read_repair: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_sites < 2:
            raise ValidationError(
                f"store workloads need at least two sites, "
                f"got {self.n_sites}")
        if self.n_keys < 1:
            raise ValidationError(f"n_keys must be >= 1, got {self.n_keys}")
        if self.n_clients < 1:
            raise ValidationError(
                f"n_clients must be >= 1, got {self.n_clients}")
        if self.ops < 0:
            raise ValidationError(f"ops must be >= 0, got {self.ops}")
        for name in ("read_ratio", "delete_ratio", "loss_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValidationError(
                    f"{name} must be in [0, 1], got {value}")
        if self.read_ratio + self.delete_ratio > 1.0:
            raise ValidationError(
                f"read_ratio + delete_ratio must be <= 1, got "
                f"{self.read_ratio} + {self.delete_ratio}")
        if self.zipf < 0:
            raise ValidationError(f"zipf must be >= 0, got {self.zipf}")
        if self.op_interval <= 0:
            raise ValidationError(
                f"op_interval must be > 0, got {self.op_interval}")
        if self.sync_period <= 0:
            raise ValidationError(
                f"sync_period must be > 0, got {self.sync_period}")

    def key_names(self) -> List[str]:
        """The zero-padded key namespace this workload addresses."""
        width = max(2, len(str(self.n_keys - 1)))
        return [f"key{i:0{width}d}" for i in range(self.n_keys)]


def hot_key_order(keys: List[str], seed: int) -> List[str]:
    """Seed-derived hot-key permutation (private stream, like hot sites)."""
    order = list(keys)
    random.Random(f"store-hot-keys:{seed}").shuffle(order)
    return order


@dataclass(frozen=True)
class PlannedOp:
    """One generated client op, before execution."""

    at: float
    client: int
    site: str
    kind: str
    key: str
    value: Optional[str]
    repair_peer: Optional[str]


def generate_client_ops(config: StoreWorkloadConfig) -> List[PlannedOp]:
    """Expand the config into a deterministic client-op list."""
    rng = random.Random(f"store-workload:{config.seed}")
    sites = site_names(config.n_sites)
    keys = hot_key_order(config.key_names(), config.seed)
    weights = [(rank + 1) ** -config.zipf for rank in range(len(keys))]
    # Sticky sessions: every client is pinned to one coordinator site.
    client_site = [rng.choice(sites) for _ in range(config.n_clients)]
    plan: List[PlannedOp] = []
    clock = 0.0
    for index in range(config.ops):
        clock += rng.expovariate(1.0 / config.op_interval)
        client = rng.randrange(config.n_clients)
        site = client_site[client]
        key = rng.choices(keys, weights=weights, k=1)[0]
        draw = rng.random()
        peer = rng.choice([s for s in sites if s != site])
        if draw < config.read_ratio:
            plan.append(PlannedOp(at=clock, client=client, site=site,
                                  kind="get", key=key, value=None,
                                  repair_peer=peer))
        elif draw < config.read_ratio + config.delete_ratio:
            plan.append(PlannedOp(at=clock, client=client, site=site,
                                  kind="delete", key=key, value=None,
                                  repair_peer=None))
        else:
            plan.append(PlannedOp(at=clock, client=client, site=site,
                                  kind="put", key=key,
                                  value=f"{key}@c{client:03d}#{index}",
                                  repair_peer=None))
    return plan


@dataclass
class StoreWorkloadResult:
    """Everything one workload run measured."""

    config: StoreWorkloadConfig
    store: StoreRunResult
    metrics: MetricsRegistry
    reads: int
    writes: int
    deletes: int
    converged: bool
    #: The consistency observatory's schema-validated digest
    #: (:meth:`~repro.obs.consistency.ConsistencyMonitor.summary`);
    #: ``None`` on unmonitored runs.
    consistency: Optional[Dict[str, Any]] = None

    @property
    def ops(self) -> int:
        return self.reads + self.writes + self.deletes

    def latency_summary(self, kind: str) -> Dict[str, float]:
        """Percentile summary of ``get``/``put`` end-to-end latency."""
        return self.metrics.histogram(
            f"store.{kind}_latency_seconds").summary()

    def staleness_summary(self) -> Dict[str, float]:
        """Percentile summary of read staleness (seconds behind newest)."""
        return self.metrics.histogram("store.staleness_seconds").summary()

    def digest(self) -> Dict[str, Any]:
        """A deterministic run digest: same config + seed ⇒ same dict.

        Contains no wall-clock quantity, so two runs of one seed must
        produce byte-identical digests — the CLI demo and the CI smoke
        job rely on it.
        """
        get_summary = self.latency_summary("get")
        put_summary = self.latency_summary("put")
        staleness_summary = self.staleness_summary()
        sets = self.store.sibling_sets()
        state = hashlib.sha256(
            repr(sorted((key, tuple(map(str, value)))
                        for key, value in sets.items())).encode()
        ).hexdigest()
        return {
            "ops": self.ops,
            "reads": self.reads,
            "writes": self.writes,
            "deletes": self.deletes,
            "ops_deferred": self.store.ops_deferred,
            "sessions": self.store.sessions,
            "sessions_abandoned": self.store.sessions_abandoned,
            "read_repairs": self.store.read_repairs,
            "reconciliations": self.store.reconciliations,
            "total_bits": self.store.total_bits,
            "sim_completion_seconds": round(self.store.completion_time, 9),
            "converged": self.converged,
            "state_sha256": state,
            "get_latency_p50": round(get_summary["p50"], 9),
            "get_latency_p99": round(get_summary["p99"], 9),
            "put_latency_p50": round(put_summary["p50"], 9),
            "put_latency_p99": round(put_summary["p99"], 9),
            "staleness_p50": round(staleness_summary["p50"], 9),
            "staleness_p99": round(staleness_summary["p99"], 9),
        }


def build_store_cluster(config: StoreWorkloadConfig, *,
                        tracer: Optional[Tracer] = None,
                        metrics: Optional[MetricsRegistry] = None,
                        monitor: Optional[ConsistencyMonitor] = None
                        ) -> StoreCluster:
    """The cluster a workload runs against (exposed for tests/benches)."""
    faults = (chaos_faults(config.loss_rate, latency=config.net_latency,
                           seed=config.chaos_seed)
              if config.loss_rate > 0 else None)
    channel = (ChannelSpec(latency=config.net_latency,
                           bandwidth=config.bandwidth, faults=faults)
               if faults is not None else
               ChannelSpec(latency=config.net_latency,
                           bandwidth=config.bandwidth))
    store_config = StoreConfig(
        protocol=config.protocol, backend=config.backend, channel=channel,
        batch_size=config.batch_size, client_latency=config.client_latency,
        read_repair=config.read_repair,
        retry=RetryPolicy(seed=config.chaos_seed))
    return StoreCluster(site_names(config.n_sites), store_config,
                        tracer=tracer, metrics=metrics, monitor=monitor)


def run_store_workload(config: StoreWorkloadConfig, *,
                       tracer: Optional[Tracer] = None,
                       metrics: Optional[MetricsRegistry] = None,
                       monitor: Optional[ConsistencyMonitor] = None
                       ) -> StoreWorkloadResult:
    """Run the full client workload to convergence; returns the result.

    The schedule interleaves client ops with periodic anti-entropy
    rounds; once every op has landed, a deterministic star sweep closes
    convergence (identical per-key sibling sets on every site, asserted
    by ``result.converged``).

    With a :class:`~repro.obs.consistency.ConsistencyMonitor` the run is
    additionally observed — divergence gauges, visibility watermarks,
    and the session-guarantee audit fed from each client's completion
    stream — and ``result.consistency`` carries the digest.  The
    simulated schedule is untouched either way: a ``monitor=None`` run
    is byte-identical to the unmonitored path.
    """
    metrics = metrics if metrics is not None else MetricsRegistry()
    cluster = build_store_cluster(config, tracer=tracer, metrics=metrics,
                                  monitor=monitor)
    sites = cluster.sites
    plan = generate_client_ops(config)
    horizon = plan[-1].at if plan else 0.0
    rounds = int(horizon / config.sync_period) + 1
    for round_no, src, dst in gossip_peers(sites, rounds=rounds,
                                           seed=config.seed):
        cluster.sim.call_at(
            (round_no + 1) * config.sync_period,
            lambda s=src, d=dst: cluster.request_sync(s, d))

    #: client → key → causal context of the last observed state.
    contexts: Dict[Tuple[int, str], Dict[str, int]] = {}
    #: key → executed time of the globally newest put/delete.
    latest_write: Dict[str, float] = {}
    counts = {"get": 0, "put": 0, "delete": 0}

    def complete(planned: PlannedOp, outcome: Any) -> None:
        latency = (outcome.executed_at - planned.at
                   + 2 * config.client_latency)
        counts[planned.kind] += 1
        contexts[(planned.client, planned.key)] = outcome.result.context
        if monitor is not None:
            monitor.audit_op(planned.client, planned.kind, planned.key,
                             outcome.result, outcome.executed_at)
        if planned.kind == "get":
            metrics.histogram("store.get_latency_seconds").observe(latency)
            metrics.histogram("store.staleness_seconds").observe(
                max(0.0, latest_write.get(planned.key, 0.0)
                    - outcome.result.as_of))
        else:
            metrics.histogram("store.put_latency_seconds").observe(latency)
            latest_write[planned.key] = max(
                latest_write.get(planned.key, 0.0), outcome.executed_at)

    def dispatch(planned: PlannedOp) -> None:
        cluster.submit(
            ClientOp(kind=planned.kind, site=planned.site, key=planned.key,
                     value=planned.value,
                     context=contexts.get((planned.client, planned.key)),
                     repair_peer=planned.repair_peer),
            on_done=lambda outcome, p=planned: complete(p, outcome))

    for planned in plan:
        cluster.sim.call_at(planned.at, lambda p=planned: dispatch(p))

    store_result = cluster.run(converge_via=sites[0])
    return StoreWorkloadResult(
        config=config, store=store_result, metrics=metrics,
        reads=counts["get"], writes=counts["put"], deletes=counts["delete"],
        converged=store_result.converged(),
        consistency=monitor.summary() if monitor is not None else None)
