"""The replicated key-value store served by rotating version vectors.

``repro.store`` is the layer the paper's metadata exists to serve: every
key carries its own rotating vector (any scheme from the protocol
registry), client writes thread causal contexts, concurrent writes
surface as siblings, divergent reads trigger read-repair, and background
anti-entropy drives per-key SYNC* sessions over the fault-tolerant
session transport.  See ``docs/STORE.md`` for the full semantics.
"""

from repro.store.cluster import (ClientOp, OpOutcome, StoreCluster,
                                 StoreConfig, StoreRunResult,
                                 StoreSessionRecord, gossip_peers)
from repro.store.kv import (TOMBSTONE, CausalContext, KeyRecord, KeySnapshot,
                            ReadResult, SiteStore, context_covers,
                            merge_siblings)

__all__ = [
    "TOMBSTONE",
    "CausalContext",
    "ClientOp",
    "KeyRecord",
    "KeySnapshot",
    "OpOutcome",
    "ReadResult",
    "SiteStore",
    "StoreCluster",
    "StoreConfig",
    "StoreRunResult",
    "StoreSessionRecord",
    "context_covers",
    "gossip_peers",
    "merge_siblings",
]
