"""The replicated store's cluster scheduler: clients + anti-entropy.

:class:`StoreCluster` hosts one :class:`~repro.store.kv.SiteStore` per
site on a single discrete-event simulator and drives two kinds of work
over them:

* **Client operations** (:class:`ClientOp`) execute against one site's
  table.  A site that is mid-session defers its client ops until the
  session ends — reads must never observe a torn mid-sync vector, and
  writes must never mutate a vector a live coroutine is iterating.  The
  deferral wait is the dominant realistic source of tail latency and is
  measured per op.
* **Anti-entropy sessions** synchronize a key set between two sites by
  running one stock SYNC* coroutine pair *per key* through the unified
  :func:`~repro.net.runner.launch` transport — so channel faults, ARQ
  retransmission, and transactional resume apply to store traffic
  unchanged.  Sibling sets are folded in afterwards by the pre-session
  verdicts (:meth:`~repro.store.kv.SiteStore.absorb`), and §2.2's
  post-reconciliation self-increment keeps COMPARE's freshness
  precondition per key.

Abort safety (the torn-vector contract)
---------------------------------------

On a faulted channel every session snapshots the receiver's records
before the first attempt.  Each *resume* restores them (in place —
vector identity survives) before rebuilding coroutines, and a session
that aborts **permanently** restores them too, via the launcher's
``on_abandon`` hook, before the endpoints are released.  Since client
ops defer while their site is in a session, no read can ever observe a
torn prefix of an aborted attempt: the key's get result after a failed
session equals its pre-session snapshot exactly.

Convergence
-----------

Per key, the sibling fold is a set union driven by vector verdicts:
adopt on domination, union on concurrency.  Union is order-insensitive
and idempotent, and the vectors themselves converge by the paper's sync
protocols, so any schedule that eventually pairs every site (directly or
transitively) drives all sites to identical per-key sibling sets.
:meth:`StoreCluster.run` can append a deterministic star sweep (gather
into a hub, then scatter back out) that *provably* closes convergence
for fault-free and resumable runs — the same pattern the monitor CLI
uses for its fleet score.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from repro.core.order import Ordering
from repro.errors import SessionError, SimulationError, ValidationError
from repro.net.channel import ChannelSpec
from repro.net.faults import RetryPolicy, derive_seed
from repro.net.runner import SessionOptions, TimedSessionResult, launch
from repro.net.simulator import Simulator
from repro.net.stats import TransferStats
from repro.net.topology import TopologySpec, uniform_peer_rounds
from repro.net.wire import DEFAULT_ENCODING, Encoding
from repro.obs import trace as obs
from repro.obs.consistency import ConsistencyMonitor
from repro.obs.metrics import MetricsRegistry, observe_session
from repro.obs.trace import Tracer
from repro.protocols import registry
from repro.store.kv import (TOMBSTONE, CausalContext, KeySnapshot,
                            ReadResult, SiteStore, merge_siblings)


@dataclass(frozen=True)
class StoreConfig:
    """Parameters of one store cluster.

    Attributes:
        protocol: per-key metadata scheme from the protocol registry —
            ``srv`` (the default) or ``crv`` reconcile concurrent keys
            automatically; ``brv`` requires single-writer keys (it
            raises on concurrent inputs, Algorithm 2's ``Require``).
        channel: link model for every anti-entropy session, including
            its fault spec (chaos applies to store traffic unchanged).
        encoding: wire pricing for every sync message.
        batch_size: keys coalesced into one framed wire session.
        proc_time: per-received-message processing cost in sessions.
        client_latency: one-way client↔site delay added to every op's
            end-to-end latency (the op itself executes at the site).
        increment_on_merge: §2.2's post-reconciliation self-increment on
            the pulling site, per reconciled key.
        coordinated_writes: the coordinating site executes each put as
            an atomic read-modify-write — the client's causal context is
            unioned with the site's current context, so the put
            supersedes every sibling the coordinator just observed.
            This is the standard defense against sibling explosion
            (unbounded sibling growth under many writers with stale
            contexts); siblings then arise only from genuinely
            concurrent cross-site writes and stay bounded by the fleet
            size.  Off, puts use the client context verbatim.
        read_repair: consult a peer replica on ``get`` and schedule a
            per-key repair session when the replicas diverge.
        retry: ARQ knobs for faulted channels (inert on perfect links).
        max_steps: per-session effect budget (livelock guard).
        topology: optional :class:`~repro.net.topology.TopologySpec`;
            when set, each anti-entropy session prices its hop over the
            channel of its endpoints' region pair instead of the single
            shared ``channel`` (``None`` keeps the historical
            one-channel store byte-identical).
    """

    protocol: str = "srv"
    channel: ChannelSpec = field(default_factory=ChannelSpec)
    encoding: Encoding = DEFAULT_ENCODING
    batch_size: int = 8
    proc_time: float = 0.0
    client_latency: float = 0.002
    increment_on_merge: bool = True
    coordinated_writes: bool = True
    read_repair: bool = True
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    max_steps: int = 10_000_000
    backend: str = "array"
    topology: Optional[TopologySpec] = None

    def __post_init__(self) -> None:
        if self.protocol not in registry.names():
            raise ValidationError(
                f"unknown protocol {self.protocol!r}; "
                f"expected one of {registry.names()}")
        try:
            registry.get(self.protocol).vector_class(self.backend)
        except ValueError as exc:
            raise ValidationError(str(exc)) from None
        if self.batch_size < 1:
            raise ValidationError(
                f"batch_size must be >= 1, got {self.batch_size}")
        if self.proc_time < 0:
            raise ValidationError(
                f"proc_time must be >= 0, got {self.proc_time}")
        if self.client_latency < 0:
            raise ValidationError(
                f"client_latency must be >= 0, got {self.client_latency}")
        if self.max_steps < 1:
            raise ValidationError(
                f"max_steps must be >= 1, got {self.max_steps}")


@dataclass
class ClientOp:
    """One client operation against a site's table."""

    kind: str  # "get" | "put" | "delete"
    site: str
    key: str
    value: Any = None
    context: Optional[CausalContext] = None
    #: Peer replica a ``get`` consults for read-repair; ``None`` skips.
    repair_peer: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("get", "put", "delete"):
            raise ValidationError(
                f"op kind must be get/put/delete, got {self.kind!r}")


@dataclass
class OpOutcome:
    """One executed client op, with its realized timing."""

    op: ClientOp
    result: ReadResult
    submitted_at: float
    executed_at: float
    #: Whether a read-repair session was scheduled by this op.
    repaired: bool = False

    @property
    def queue_wait(self) -> float:
        return self.executed_at - self.submitted_at


@dataclass
class StoreSessionRecord:
    """One anti-entropy session between two sites, over ``keys``."""

    index: int
    src: str
    dst: str
    keys: Tuple[str, ...]
    requested_at: float
    started_at: float = 0.0
    verdicts: Dict[str, Ordering] = field(default_factory=dict)
    reconciled: Dict[str, bool] = field(default_factory=dict)
    aborted: bool = False
    result: Optional[TimedSessionResult] = None

    @property
    def queue_wait(self) -> float:
        return self.started_at - self.requested_at


@dataclass
class _SyncRequest:
    src: str
    dst: str
    keys: Optional[Tuple[str, ...]]
    requested_at: float


@dataclass
class StoreRunResult:
    """What one store cluster run measured."""

    stores: Dict[str, SiteStore]
    records: List[StoreSessionRecord]
    totals: TransferStats
    completion_time: float
    ops_applied: int
    ops_deferred: int
    read_repairs: int
    reconciliations: int
    sessions_abandoned: int

    @property
    def sessions(self) -> int:
        return len(self.records)

    @property
    def total_bits(self) -> int:
        return self.totals.total_bits

    @property
    def max_queue_wait(self) -> float:
        return max((r.queue_wait for r in self.records), default=0.0)

    def all_keys(self) -> List[str]:
        """Every key any site has heard of, sorted."""
        keys: set = set()
        for store in self.stores.values():
            keys.update(store.table)
        return sorted(keys)

    def converged(self) -> bool:
        """True iff every site agrees on every key — vector *and* siblings."""
        stores = list(self.stores.values())
        first = stores[0]
        for key in self.all_keys():
            if any(key not in store.table for store in stores):
                return False
            reference = first.table[key]
            for store in stores[1:]:
                record = store.table[key]
                if record.siblings != reference.siblings:
                    return False
                if not record.vector.same_values(reference.vector):
                    return False
        return True

    def sibling_sets(self) -> Dict[str, Tuple[Any, ...]]:
        """Per-key sibling tuples at the first site (canonical order)."""
        first = next(iter(self.stores.values()))
        return {key: first.table[key].siblings
                for key in sorted(first.table)}


class StoreCluster:
    """Schedules client ops and per-key anti-entropy on one simulator.

    One-shot like :class:`~repro.net.cluster.ClusterRunner`: construct,
    schedule work (``sim.call_at`` + :meth:`submit` /
    :meth:`request_sync`), :meth:`run` once, read the result.  Sites are
    strictly serialized (fanout 1): a site is in at most one session at
    a time, which is what makes the transactional snapshot/restore story
    sound — no other writer can touch a key mid-rollback.
    """

    def __init__(self, sites: Optional[Iterable[str]], config: StoreConfig,
                 *, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 monitor: Optional[ConsistencyMonitor] = None) -> None:
        if sites is None:
            if config.topology is None:
                raise ValidationError(
                    "sites=None requires a StoreConfig.topology to name "
                    "the fleet")
            sites = config.topology.site_names()
        self.sites = list(sites)
        if len(self.sites) < 2:
            raise ValidationError("a store cluster needs at least two sites")
        if len(set(self.sites)) != len(self.sites):
            raise ValidationError("duplicate site names in store cluster")
        self.config = config
        if monitor is not None and tracer is None:
            # Same adoption contract as ClusterRunner/ClusterMonitor: a
            # cluster built without a tracer uses the monitor's private
            # one, so store events exist for the observatory to observe.
            tracer = monitor.tracer
        self.tracer = tracer
        self.metrics = metrics
        self.monitor = monitor
        spec = registry.get(config.protocol)
        self._spec = spec
        vector_cls = spec.vector_class(config.backend)
        self.stores: Dict[str, SiteStore] = {
            site: SiteStore(site, vector_cls) for site in self.sites}
        self.sim = Simulator()
        self._usage: Dict[str, int] = {site: 0 for site in self.sites}
        self._deferred_ops: Dict[str, List[Tuple[ClientOp, float, Optional[
            Callable[[OpOutcome], None]]]]] = {site: [] for site in self.sites}
        self._pending: List[_SyncRequest] = []
        #: (src, dst, key) triples with a repair session already queued;
        #: keeps hot keys from flooding the queue with duplicate repairs.
        self._repair_inflight: set = set()
        self._records: List[StoreSessionRecord] = []
        self._totals = TransferStats()
        self._ops_applied = 0
        self._ops_deferred = 0
        self._read_repairs = 0
        self._reconciliations = 0
        self._sessions_abandoned = 0
        self._finished = False

    # -- client operations -------------------------------------------------

    def submit(self, op: ClientOp,
               on_done: Optional[Callable[[OpOutcome], None]] = None
               ) -> None:
        """Submit ``op`` at the current simulated time.

        Executes immediately when the site is idle; defers until the
        site's session ends otherwise (FIFO per site, so one client's
        sticky-session ops stay ordered).
        """
        if op.site not in self.stores:
            raise ValidationError(f"unknown site {op.site!r}")
        now = self.sim.now
        if self._usage[op.site] > 0:
            self._deferred_ops[op.site].append((op, now, on_done))
            self._ops_deferred += 1
            if self.metrics is not None:
                self.metrics.counter("store.ops_deferred").inc()
            return
        self._execute_op(op, now, on_done)

    def _execute_op(self, op: ClientOp, submitted_at: float,
                    on_done: Optional[Callable[[OpOutcome], None]]) -> None:
        store = self.stores[op.site]
        now = self.sim.now
        repaired = False
        if op.kind == "put":
            result = store.put(op.key, op.value,
                               context=self._write_context(store, op),
                               now=now)
        elif op.kind == "delete":
            result = store.delete(op.key,
                                  context=self._write_context(store, op),
                                  now=now)
        else:
            result = store.get(op.key)
            if (self.config.read_repair and op.repair_peer is not None
                    and op.repair_peer != op.site
                    and op.repair_peer in self.stores
                    and self._usage[op.repair_peer] == 0):
                result, repaired = self._repaired_read(op, result)
        self._ops_applied += 1
        if self.metrics is not None:
            self.metrics.counter("store.ops").inc()
            self.metrics.counter(f"store.ops_{op.kind}").inc()
            self.metrics.histogram("store.op_queue_wait_seconds").observe(
                now - submitted_at)
        if self.tracer is not None:
            self.tracer.event(obs.STORE_OP, party=op.site, op=op.kind,
                              key=op.key)
        if self.monitor is not None:
            self.monitor.on_client_op(op.kind, op.site, op.key, now)
        if on_done is not None:
            on_done(OpOutcome(op=op, result=result,
                              submitted_at=submitted_at, executed_at=now,
                              repaired=repaired))

    def _write_context(self, store: SiteStore, op: ClientOp
                       ) -> Optional[CausalContext]:
        """The causal context a write executes under.

        With coordinated writes (the default) the coordinator unions the
        client's context with its own current context for the key — an
        atomic read-modify-write that covers every sibling the site
        holds, keeping sibling sets bounded by the number of genuinely
        concurrent writers (the fleet size) instead of growing with
        every stale-context put.
        """
        if not self.config.coordinated_writes:
            return op.context
        context = store.context_of(op.key)
        for site, count in (op.context or {}).items():
            if count > context.get(site, 0):
                context[site] = count
        return context

    def _repaired_read(self, op: ClientOp, local: ReadResult
                       ) -> Tuple[ReadResult, bool]:
        """Consult a peer replica; merge the read and schedule a repair.

        The peer is only consulted while idle — a mid-session peer could
        expose a torn vector.  On divergence the *stale* replica pulls
        from the fresh one (both ways on concurrency would double the
        traffic; the reverse direction is left to background rounds).
        """
        store = self.stores[op.site]
        peer_store = self.stores[op.repair_peer]
        if op.key not in peer_store.table and op.key not in store.table:
            return local, False
        record = store.record(op.key)
        peer_record = peer_store.record(op.key)
        verdict = record.vector.compare(peer_record.vector)
        if verdict is Ordering.EQUAL:
            return local, False
        if verdict is Ordering.AFTER:
            # The reader's replica is fresher: repair the peer.
            triple = (op.site, op.repair_peer, op.key)
        else:
            triple = (op.repair_peer, op.site, op.key)
        if triple not in self._repair_inflight:
            # At most one queued repair per (pair, key): a hot key read
            # at every op would otherwise flood the session queue with
            # duplicates that all sync the same divergence.
            self._repair_inflight.add(triple)
            self.request_sync(triple[0], triple[1], keys=(op.key,))
            self._read_repairs += 1
            if self.metrics is not None:
                self.metrics.counter("store.read_repairs").inc()
            if self.tracer is not None:
                self.tracer.event(obs.READ_REPAIR, party=op.site,
                                  peer=op.repair_peer, key=op.key,
                                  verdict=verdict.name.lower())
        if verdict is Ordering.AFTER:
            return local, True
        # The client observed both replicas: its view is the union and
        # its causal context the element-wise max of both vectors.
        siblings = (peer_record.siblings if verdict is Ordering.BEFORE
                    else merge_siblings(record.siblings,
                                        peer_record.siblings))
        context: CausalContext = dict(record.vector.elements())
        for site, count in peer_record.vector.elements():
            context[site] = max(context.get(site, 0), count)
        merged = ReadResult(
            key=op.key,
            values=tuple(v for v in siblings if v is not TOMBSTONE),
            context=context,
            as_of=max(record.updated_at, peer_record.updated_at))
        return merged, True

    # -- anti-entropy sessions ---------------------------------------------

    def request_sync(self, src: str, dst: str, *,
                     keys: Optional[Sequence[str]] = None) -> None:
        """Request that ``dst`` pull ``keys`` (default: all) from ``src``."""
        for name in (src, dst):
            if name not in self.stores:
                raise ValidationError(f"unknown site {name!r}")
        if src == dst:
            raise ValidationError(f"sync pairs a site with itself: {src}")
        request = _SyncRequest(src=src, dst=dst,
                               keys=tuple(keys) if keys is not None else None,
                               requested_at=self.sim.now)
        if self.tracer is not None:
            self.tracer.event(obs.SESSION_REQUEST, party=dst, peer=src)
        self._pending.append(request)
        self._dispatch()

    def _dispatch(self) -> None:
        still_pending: List[_SyncRequest] = []
        for request in self._pending:
            if (self._usage[request.src] == 0
                    and self._usage[request.dst] == 0):
                self._start(request)
            else:
                still_pending.append(request)
        self._pending = still_pending

    def _session_keys(self, request: _SyncRequest) -> Tuple[str, ...]:
        if request.keys is not None:
            return request.keys
        keys = set(self.stores[request.src].table)
        keys.update(self.stores[request.dst].table)
        return tuple(sorted(keys))

    def _build_pairs(self, src: str, dst: str, keys: Tuple[str, ...],
                     record: StoreSessionRecord) -> Tuple[Tuple[Any, Any],
                                                          ...]:
        """Fresh per-key coroutine pairs over the current records."""
        pairs: List[Tuple[Any, Any]] = []
        for key in keys:
            src_vector = self.stores[src].record(key).vector
            dst_vector = self.stores[dst].record(key).vector
            verdict = dst_vector.compare(src_vector)
            sender, receiver, reconciled = self._spec.build(
                src_vector, dst_vector, verdict, tracer=self.tracer)
            record.verdicts[key] = verdict
            record.reconciled[key] = (record.reconciled.get(key, False)
                                      or reconciled)
            pairs.append((sender, receiver))
        return tuple(pairs)

    def _channel_for(self, src: str, dst: str) -> ChannelSpec:
        """The channel one session uses — region-pair aware when the
        config carries a topology, the single shared channel otherwise."""
        if self.config.topology is None:
            return self.config.channel
        return self.config.topology.channel_for(src, dst)

    def _start(self, request: _SyncRequest) -> None:
        config = self.config
        src, dst = request.src, request.dst
        if request.keys is not None and len(request.keys) == 1:
            self._repair_inflight.discard((src, dst, request.keys[0]))
        keys = self._session_keys(request)
        record = StoreSessionRecord(
            index=len(self._records), src=src, dst=dst, keys=keys,
            requested_at=request.requested_at, started_at=self.sim.now)
        self._records.append(record)
        if not keys:
            # Nothing to synchronize (no keys written yet anywhere);
            # keep the record for accounting but skip the wire.
            record.result = None
            return
        self._usage[src] += 1
        self._usage[dst] += 1
        if self.tracer is not None:
            self.tracer.event(obs.SESSION_START, party=dst, peer=src,
                              session=record.index, keys=len(keys))
        channel = self._channel_for(src, dst)
        common = dict(
            batch_size=config.batch_size if len(keys) > 1 else 1,
            channel=channel, encoding=config.encoding,
            proc_time=config.proc_time, max_steps=config.max_steps,
            tracer=self.tracer, party_names=(src, dst), retry=config.retry,
            session_id=record.index,
            on_complete=lambda result: self._finish(record, result))
        pairs = self._build_pairs(src, dst, keys, record)
        if not channel.faults.enabled:
            launch(self.sim, SessionOptions(pairs=pairs, **common))
            return

        # Transactional attempts: snapshot the receiver's records now;
        # every resume — and a permanent abandon — restores them before
        # anything else can observe the torn prefix.
        snapshots: Dict[str, KeySnapshot] = {
            key: self.stores[dst].snapshot(key) for key in keys}
        first_pairs: List[Tuple[Tuple[Any, Any], ...]] = [pairs]

        def restore_all() -> None:
            for key, snapshot in snapshots.items():
                self.stores[dst].restore(key, snapshot)

        def rebuild() -> Tuple[Tuple[Any, Any], ...]:
            if first_pairs:
                return first_pairs.pop()
            restore_all()
            return self._build_pairs(src, dst, keys, record)

        def abandon(error: SessionError) -> None:
            restore_all()
            record.aborted = True
            self._sessions_abandoned += 1
            if self.metrics is not None:
                self.metrics.counter("store.sessions_abandoned").inc()
            self._release(record, stats=None)

        launch(self.sim, SessionOptions(
            rebuild=rebuild, on_abandon=abandon,
            fault_seed=derive_seed(channel.faults.seed, record.index),
            **common))

    def _finish(self, record: StoreSessionRecord,
                result: TimedSessionResult) -> None:
        record.result = result
        self._totals.merge(result.stats)
        src, dst = record.src, record.dst
        dst_store = self.stores[dst]
        for key in record.keys:
            src_record = self.stores[src].record(key)
            dst_store.absorb(key, record.verdicts[key], src_record.siblings,
                             src_record.updated_at)
            if self.monitor is not None:
                self.monitor.on_absorb(dst, key,
                                       dst_store.record(key).updated_at,
                                       self.sim.now)
            if self.config.increment_on_merge and record.reconciled[key]:
                # §2.2: the pulling site increments its own element after
                # an automatic merge, per reconciled key.
                dst_store.record(key).vector.record_update(dst)
                self._reconciliations += 1
                if self.tracer is not None:
                    self.tracer.event(obs.RECONCILE, party=dst, key=key,
                                      session=record.index)
        if self.metrics is not None:
            observe_session(self.metrics, result.stats,
                            protocol=f"store.{self.config.protocol}",
                            completion_time=result.duration)
        self._release(record, stats=result.stats)

    def _release(self, record: StoreSessionRecord,
                 stats: Optional[TransferStats]) -> None:
        """Free the endpoints, land deferred ops, dispatch queued syncs."""
        src, dst = record.src, record.dst
        self._usage[src] -= 1
        self._usage[dst] -= 1
        if self.tracer is not None:
            self.tracer.event(obs.SESSION_END, party=dst, peer=src,
                              session=record.index,
                              bits=stats.total_bits if stats else 0,
                              aborted=record.aborted)
        if self.metrics is not None:
            self.metrics.counter("store.sessions").inc()
            self.metrics.histogram("store.queue_wait_seconds").observe(
                record.queue_wait)
        if self.monitor is not None:
            self.monitor.on_session_end(self.sim.now)
        for site in (src, dst):
            # Flush FIFO, but re-check before every op: a flushed get can
            # start a read-repair session that re-occupies the site, and
            # the ops behind it must stay deferred — executing them would
            # mutate vectors the fresh session's coroutines (and its
            # transactional snapshot) already captured.
            while self._usage[site] == 0 and self._deferred_ops[site]:
                op, submitted_at, on_done = self._deferred_ops[site].pop(0)
                self._execute_op(op, submitted_at, on_done)
        self._dispatch()

    # -- convergence sweep -------------------------------------------------

    def sweep(self, hub: Optional[str] = None) -> None:
        """Issue a gather/scatter star through ``hub`` at the current time.

        All 2(n−1) requests funnel through the hub, whose fanout-1
        serialization executes them strictly in request order: first the
        hub absorbs every site's state (so it dominates the fleet), then
        every site adopts the hub's.  After a fault-free (or fully
        resumed) sweep all sites hold identical per-key records.
        """
        hub = hub if hub is not None else self.sites[0]
        if hub not in self.stores:
            raise ValidationError(f"unknown hub {hub!r}")
        for site in self.sites:
            if site != hub:
                self.request_sync(site, hub)
        for site in self.sites:
            if site != hub:
                self.request_sync(hub, site)

    # -- the run -----------------------------------------------------------

    def run(self, *, converge_via: Optional[str] = None) -> StoreRunResult:
        """Drain the schedule; optionally append a convergence sweep.

        With ``converge_via`` set (a hub site name), the run first drains
        everything already scheduled, then issues the star sweep and
        drains again — so the sweep provably runs after the last client
        op has landed.
        """
        if self._finished:
            raise SimulationError("StoreCluster instances are one-shot")
        self._finished = True
        if self.monitor is not None:
            self.monitor.attach(self)
        tracer = self.tracer
        previous_clock = tracer.clock if tracer is not None else None
        span = None
        if tracer is not None:
            tracer.clock = lambda: self.sim.now
            span = tracer.span(f"store:{self.config.protocol}",
                               sites=len(self.sites),
                               protocol=self.config.protocol,
                               latency=self.config.channel.latency,
                               bandwidth=self.config.channel.bandwidth)
        try:
            self.sim.run()
            if converge_via is not None:
                self.sweep(converge_via)
                self.sim.run()
        finally:
            if span is not None:
                span.end()
            if tracer is not None:
                tracer.flush_sampling()
                tracer.clock = previous_clock
        if self.monitor is not None:
            self.monitor.finalize()
        if self._pending or any(self._usage.values()):
            raise SimulationError(  # pragma: no cover - defensive
                "store cluster drained with sessions still queued or active")
        return StoreRunResult(
            stores=self.stores,
            records=self._records,
            totals=self._totals,
            completion_time=self.sim.now,
            ops_applied=self._ops_applied,
            ops_deferred=self._ops_deferred,
            read_repairs=self._read_repairs,
            reconciliations=self._reconciliations,
            sessions_abandoned=self._sessions_abandoned,
        )


def gossip_peers(sites: Sequence[str], *, rounds: int, seed: int = 0
                 ) -> List[Tuple[float, str, str]]:
    """A deterministic anti-entropy pairing: per round, each site pulls
    from a seeded-random peer.  Returns ``(round_index, src, dst)``-style
    tuples with the round index as a float for direct scheduling.

    Delegates to :func:`repro.net.topology.uniform_peer_rounds` — the
    shared seeded sampler behind both store anti-entropy and cluster
    gossip — with the historical ``store-gossip`` stream label, so the
    plan (and every committed store digest built on it) stays
    byte-identical to the pre-topology implementation.
    """
    return uniform_peer_rounds(sites, rounds=rounds, seed=seed)
