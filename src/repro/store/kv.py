"""Per-site key-value tables with one rotating vector per key.

The paper's vectors exist to serve replicated *data*; this module is the
data.  A :class:`SiteStore` maps each key to a :class:`KeyRecord` holding
the key's own rotating vector (any class from the protocol registry) and
its current *siblings* — the set of values written concurrently and not
yet superseded.  The client semantics follow the Dotted-Version-Vector
workload shape (Preguiça et al.; see also the ``SimDataStore`` design in
SNIPPETS.md):

* ``get`` returns every live sibling plus a *causal context* — a plain
  ``{site: count}`` snapshot of the key's vector at read time.
* ``put`` with a context that **covers** the key's current vector is a
  causal overwrite: it supersedes every sibling the client has seen.  A
  put with a stale (or absent) context is *concurrent* with the current
  state and lands as an additional sibling — no write is ever silently
  lost.
* ``delete`` is a put of the :data:`TOMBSTONE` sentinel; a key whose
  only sibling is the tombstone reads as absent (but its vector — and
  therefore its causal history — remains).

Every client write calls ``vector.record_update(site)``, so per-key
vectors evolve exactly like the paper's per-replica vectors and the
unmodified SYNC* protocols synchronize them key by key.  Sibling sets are
kept in a canonical sort order and merged by set union, which is
order-insensitive and idempotent — the convergence argument for
anti-entropy (see :mod:`repro.store.cluster`) rests on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.order import Ordering
from repro.core.rotating import BasicRotatingVector


class _Tombstone:
    """Singleton delete marker; sorts after every real value."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<deleted>"


#: The delete marker stored as a sibling value.
TOMBSTONE = _Tombstone()

#: A causal context: a plain ``{site: count}`` vector snapshot.
CausalContext = Dict[str, int]


def _sort_key(value: Any) -> Tuple[int, str]:
    # Tombstones last, everything else by its string form: a canonical
    # order over arbitrary (possibly mixed-type) sibling values.
    return (1 if value is TOMBSTONE else 0, str(value))


def merge_siblings(*groups: Iterable[Any]) -> Tuple[Any, ...]:
    """Set union of sibling groups, in canonical order.

    Union is commutative, associative, and idempotent, so any two sites
    that have exchanged the same writes end up with the identical tuple
    regardless of delivery order — the CRDT-style property the store's
    convergence check relies on.
    """
    merged: List[Any] = []
    for group in groups:
        for value in group:
            if not any(value is other or value == other for other in merged):
                merged.append(value)
    merged.sort(key=_sort_key)
    return tuple(merged)


def context_covers(context: Optional[CausalContext],
                   vector: BasicRotatingVector) -> bool:
    """Whether ``context`` dominates every element of ``vector``.

    A covering context proves the writer observed (a superset of) the
    key's current causal history, so its put may supersede the siblings.
    """
    if context is None:
        return False
    return all(context.get(site, 0) >= count
               for site, count in vector.elements())


@dataclass
class ReadResult:
    """What one ``get`` observed.

    ``values`` excludes tombstones; ``context`` is the causal context to
    thread into the next ``put`` of this key; ``as_of`` is the newest
    client-write time this replica has absorbed for the key (the
    staleness reference), and ``exists`` is False for missing or fully
    deleted keys.
    """

    key: str
    values: Tuple[Any, ...]
    context: CausalContext
    as_of: float = 0.0

    @property
    def exists(self) -> bool:
        return bool(self.values)


@dataclass
class KeyRecord:
    """One key's replicated state at one site."""

    vector: BasicRotatingVector
    siblings: Tuple[Any, ...] = ()
    #: Newest client-write simulated time reflected here (local writes
    #: and writes absorbed via anti-entropy alike) — the staleness clock.
    updated_at: float = 0.0

    def live_values(self) -> Tuple[Any, ...]:
        """The sibling values a client sees: tombstones filtered out."""
        return tuple(v for v in self.siblings if v is not TOMBSTONE)


@dataclass
class KeySnapshot:
    """A restorable copy of one key's record (transactional sessions)."""

    vector: BasicRotatingVector
    siblings: Tuple[Any, ...]
    updated_at: float


class SiteStore:
    """One site's key→record table.

    The store is deliberately passive: it validates and applies client
    operations against local state only.  Cross-site movement — sibling
    exchange, read-repair, anti-entropy — is the cluster scheduler's job
    (:mod:`repro.store.cluster`), which synchronizes the records' vectors
    with the stock SYNC* coroutines and merges siblings by verdict.
    """

    def __init__(self, site: str, vector_cls: type = BasicRotatingVector
                 ) -> None:
        self.site = site
        self.vector_cls = vector_cls
        self.table: Dict[str, KeyRecord] = {}

    # -- local state -------------------------------------------------------

    def keys(self) -> List[str]:
        """Known keys, sorted (deterministic iteration everywhere)."""
        return sorted(self.table)

    def record(self, key: str) -> KeyRecord:
        """The key's record, created empty on first touch."""
        record = self.table.get(key)
        if record is None:
            record = self.table[key] = KeyRecord(vector=self.vector_cls())
        return record

    def context_of(self, key: str) -> CausalContext:
        """The key's current causal context ({} for an absent key)."""
        record = self.table.get(key)
        if record is None:
            return {}
        return dict(record.vector.elements())

    def sibling_population(self) -> int:
        """Total stored sibling values across keys, tombstones included
        (the consistency observatory's divergence gauge)."""
        return sum(len(record.siblings) for record in self.table.values())

    def newest_updated_at(self) -> float:
        """The site's write watermark: the newest client-write time any
        of its keys reflects (0.0 for an empty table)."""
        return max((record.updated_at for record in self.table.values()),
                   default=0.0)

    # -- client operations -------------------------------------------------

    def get(self, key: str) -> ReadResult:
        """Read every live sibling plus the key's causal context."""
        record = self.table.get(key)
        if record is None:
            return ReadResult(key=key, values=(), context={})
        return ReadResult(key=key, values=record.live_values(),
                          context=dict(record.vector.elements()),
                          as_of=record.updated_at)

    def put(self, key: str, value: Any, *,
            context: Optional[CausalContext] = None,
            now: float = 0.0) -> ReadResult:
        """Write ``value``; supersede siblings iff ``context`` covers.

        Returns the post-write read (whose context lets a session-sticky
        client chain causal writes without an intervening get).
        """
        record = self.record(key)
        if context_covers(context, record.vector) or not record.siblings:
            siblings: Tuple[Any, ...] = (value,)
        else:
            # Concurrent with state this writer has not seen: keep both.
            siblings = merge_siblings(record.siblings, (value,))
        record.vector.record_update(self.site)
        record.siblings = siblings
        record.updated_at = max(record.updated_at, now)
        return ReadResult(key=key, values=record.live_values(),
                          context=dict(record.vector.elements()),
                          as_of=record.updated_at)

    def delete(self, key: str, *,
               context: Optional[CausalContext] = None,
               now: float = 0.0) -> ReadResult:
        """Write the tombstone; covered deletes empty the sibling set."""
        return self.put(key, TOMBSTONE, context=context, now=now)

    # -- anti-entropy ------------------------------------------------------

    def absorb(self, key: str, verdict: Ordering,
               src_siblings: Tuple[Any, ...], src_updated_at: float) -> bool:
        """Fold a completed sync session's outcome into ``key``.

        The session already synchronized the *vectors* (the receiver's
        record vector was mutated in place by the SYNC* coroutines);
        this applies the matching sibling rule, keyed on the pre-session
        verdict:

        * ``BEFORE`` — the sender strictly dominated: adopt its siblings.
        * concurrent — the receiver merged the vectors: union the
          sibling sets (no write from either side is dropped).
        * ``AFTER``/``EQUAL`` — the receiver knew everything: no change.

        Returns True when the sibling set (or staleness clock) moved.
        """
        record = self.record(key)
        if verdict is Ordering.BEFORE:
            changed = record.siblings != src_siblings
            record.siblings = src_siblings
        elif verdict.is_concurrent:
            merged = merge_siblings(record.siblings, src_siblings)
            changed = record.siblings != merged
            record.siblings = merged
        else:
            return False
        if src_updated_at > record.updated_at:
            record.updated_at = src_updated_at
            changed = True
        return changed

    # -- transactional snapshots -------------------------------------------

    def snapshot(self, key: str) -> KeySnapshot:
        """A restorable copy of the key's record (see :meth:`restore`)."""
        record = self.record(key)
        return KeySnapshot(vector=record.vector.copy(),
                           siblings=record.siblings,
                           updated_at=record.updated_at)

    def restore(self, key: str, snapshot: KeySnapshot) -> None:
        """Roll the key back to ``snapshot``, preserving vector identity.

        The vector is restored *in place* (``BasicRotatingVector.restore``
        and subclasses), so coroutines, result views, and per-key tables
        that alias it stay valid — the same contract the cluster runner's
        transactional resume relies on.  A mid-session abort therefore
        can never leave a read observing a torn vector: the abort path
        restores before the site is released to serve reads again.
        """
        record = self.record(key)
        record.vector.restore(snapshot.vector)
        record.siblings = snapshot.siblings
        record.updated_at = snapshot.updated_at
