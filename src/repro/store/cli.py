"""``python -m repro store`` — the replicated-store workload CLI.

Runs one seeded client workload (:mod:`repro.workload.clients`) against
a store fleet and prints a deterministic report: op mix, session and
read-repair counts, wire totals, client-felt latency and staleness
percentiles, and the converged per-key state digest.  Every printed
quantity is a pure function of the flags — no wall-clock numbers — so
two runs of the same seed are byte-identical, which the CI smoke job
checks by diffing them.

``--monitor`` attaches the consistency observatory
(:mod:`repro.obs.consistency`): the report gains w_k/w_all visibility
percentiles, per-site replication-lag gauges, and the session-guarantee
audit summary, and the export flags write the gauge families out through
the standard exporters (``--prom``/``--otlp``/``--html``) plus the
schema-validated digest itself (``--consistency``).

Usage::

    python -m repro store --demo
    python -m repro store --demo --monitor --prom store.prom
    python -m repro store --sites 16 --ops 100000 --seed 7
    python -m repro store --loss 0.1 --seed 3      # chaos faults on

Exits 0 iff the fleet converged (identical per-key sibling sets and
vectors on every site after the final sweep), 1 otherwise — or on a
``--strict-consistency`` abort.
"""

from __future__ import annotations

import json
from typing import List, Optional

from repro.errors import InvariantViolationError, ReproError
from repro.workload.clients import StoreWorkloadConfig, run_store_workload


def _format_summary(summary: dict) -> str:
    return (f"p50 {summary['p50'] * 1000:.3f} ms / "
            f"p90 {summary['p90'] * 1000:.3f} ms / "
            f"p99 {summary['p99'] * 1000:.3f} ms / "
            f"p999 {summary['p999'] * 1000:.3f} ms")


def format_consistency_report(digest: dict) -> str:
    """The observatory section of the store report (digest-driven)."""
    audit = digest["audit"]
    lag = digest["replication_lag_seconds"]
    laggards = [site for site, value in lag.items() if value > 0]
    lines = [
        f"  consistency observatory "
        f"(k={digest['visibility_k']}, {digest['samples']} samples):",
        f"    w_k visibility:   "
        f"{_format_summary(digest['w_k_seconds'])}",
        f"    w_all visibility: "
        f"{_format_summary(digest['w_all_seconds'])}",
        f"    writes: {digest['writes_tracked']} tracked / "
        f"{digest['writes_visible_all']} fully visible / "
        f"{digest['writes_pending']} pending",
        f"    replication lag: max "
        f"{digest['max_replication_lag_seconds'] * 1000:.3f} ms"
        + (f" ({len(laggards)} sites behind)" if laggards
           else " (all sites current)"),
        f"    session audit: {audit['ops_audited']} ops, "
        f"{audit['violations']} violations "
        f"(ryw {audit['read_your_writes']} / "
        f"monotonic {audit['monotonic_reads']} / "
        f"resurrection {audit['resurrections']}), "
        f"{audit['clients_affected']} clients affected",
    ]
    worst = [entry for entry in digest["worst_keys"]
             if entry["violations"] or entry["max_siblings"] > 1]
    if worst:
        ranked = ", ".join(
            f"{entry['key']} ({entry['violations']} violations, "
            f"{entry['max_siblings']} siblings)" for entry in worst)
        lines.append(f"    worst keys: {ranked}")
    return "\n".join(lines)


def format_store_report(result) -> str:
    """The deterministic report for one finished workload run."""
    config = result.config
    store = result.store
    digest = result.digest()
    sets = store.sibling_sets()
    sizes = sorted(len(value) for value in sets.values()) or [0]
    lines = [
        f"store workload: {config.n_sites} sites × {config.n_keys} keys, "
        f"{config.n_clients} clients, {result.ops} ops, "
        f"protocol {config.protocol}, seed {config.seed}"
        + (f", loss {config.loss_rate:g}" if config.loss_rate else ""),
        f"  ops: {result.reads} reads / {result.writes} writes / "
        f"{result.deletes} deletes ({store.ops_deferred} deferred behind "
        f"busy sites)",
        f"  sessions: {store.sessions} "
        f"({store.sessions_abandoned} abandoned), "
        f"{store.read_repairs} read repairs, "
        f"{store.reconciliations} reconciliations",
        f"  wire: {store.total_bits} bits; "
        f"sim completion {store.completion_time:.3f} s",
        f"  get latency: {_format_summary(result.latency_summary('get'))}",
        f"  put latency: {_format_summary(result.latency_summary('put'))}",
        f"  staleness:   {_format_summary(result.staleness_summary())}",
        f"  siblings per key: min {sizes[0]} / "
        f"mean {sum(sizes) / len(sizes):.2f} / max {sizes[-1]}",
        f"  state sha256: {digest['state_sha256']}",
        f"  converged: {result.converged}",
    ]
    if result.consistency is not None:
        lines.append(format_consistency_report(result.consistency))
    return "\n".join(lines)


#: ``--demo`` preset: an 8-site fleet sized to finish in a few seconds.
DEMO_CONFIG = StoreWorkloadConfig(n_sites=8, n_keys=32, n_clients=64,
                                  ops=20_000, op_interval=0.0005, seed=0)


def store_main(argv: List[str]) -> int:
    """``python -m repro store [--demo] [--monitor] [--sites N] ...``."""
    demo = False
    monitor_on = False
    strict = False
    visibility_k: Optional[int] = None
    exports = {"--prom": None, "--otlp": None, "--html": None,
               "--consistency": None, "--trace": None}
    overrides: dict = {}

    def fail(message: str) -> int:
        print(message)
        print("usage: python -m repro store [--demo] [--sites N] [--keys N] "
              "[--clients N] [--ops N] [--read-ratio F] [--zipf F] "
              "[--loss F] [--protocol brv|crv|srv] [--seed N] "
              "[--monitor] [--strict-consistency] [--visibility-k N] "
              "[--prom PATH] [--otlp PATH] [--html PATH] "
              "[--consistency PATH] [--trace PATH]")
        return 2

    flags = {"--sites": ("n_sites", int), "--keys": ("n_keys", int),
             "--clients": ("n_clients", int), "--ops": ("ops", int),
             "--read-ratio": ("read_ratio", float),
             "--zipf": ("zipf", float), "--loss": ("loss_rate", float),
             "--protocol": ("protocol", str), "--seed": ("seed", int)}
    index = 0
    while index < len(argv):
        argument = argv[index]
        if argument == "--demo":
            demo = True
            index += 1
        elif argument == "--monitor":
            monitor_on = True
            index += 1
        elif argument == "--strict-consistency":
            monitor_on = True
            strict = True
            index += 1
        elif argument == "--visibility-k":
            if index + 1 >= len(argv):
                return fail(f"{argument} requires a value")
            try:
                visibility_k = int(argv[index + 1])
            except ValueError:
                return fail(f"{argument} expects int, "
                            f"got {argv[index + 1]!r}")
            monitor_on = True
            index += 2
        elif argument in exports:
            if index + 1 >= len(argv):
                return fail(f"{argument} requires a value")
            exports[argument] = argv[index + 1]
            monitor_on = True
            index += 2
        elif argument in flags:
            if index + 1 >= len(argv):
                return fail(f"{argument} requires a value")
            name, parse = flags[argument]
            try:
                overrides[name] = parse(argv[index + 1])
            except ValueError:
                return fail(f"{argument} expects {parse.__name__}, "
                            f"got {argv[index + 1]!r}")
            index += 2
        else:
            return fail(f"unknown argument {argument!r}")

    monitor = None
    if monitor_on:
        from repro.obs.consistency import (ConsistencyConfig,
                                           ConsistencyMonitor)
        try:
            monitor_config = (
                ConsistencyConfig(strict=strict, visibility_k=visibility_k)
                if visibility_k is not None
                else ConsistencyConfig(strict=strict))
        except ValueError as error:
            return fail(str(error))
        monitor = ConsistencyMonitor(monitor_config)

    base = DEMO_CONFIG if demo else StoreWorkloadConfig()
    try:
        config = StoreWorkloadConfig(
            **{**{name: getattr(base, name)
                  for name in StoreWorkloadConfig.__dataclass_fields__},
               **overrides})
        result = run_store_workload(config, monitor=monitor)
    except InvariantViolationError as error:
        print(f"ABORTED: {error}")
        return 1
    except ReproError as error:
        print(f"store workload failed: {error}")
        return 2
    print(format_store_report(result))
    if monitor is not None and not _write_exports(result, monitor, exports):
        return 1
    return 0 if result.converged else 1


def _write_exports(result, monitor, exports: dict) -> bool:
    """Write the requested export files; False on a validation failure."""
    if exports["--prom"] is not None:
        from repro.obs.exporters import to_prometheus
        with open(exports["--prom"], "w", encoding="utf-8") as handle:
            handle.write(to_prometheus(result.metrics,
                                       consistency=monitor))
        print(f"wrote Prometheus text to {exports['--prom']}")
    if exports["--otlp"] is not None:
        from repro.obs.exporters import to_otlp
        from repro.obs.otlp_schema import validate_otlp
        document = to_otlp(monitor.tracer, result.metrics,
                           consistency=monitor,
                           service_name="repro-store")
        errors = validate_otlp(document)
        if errors:
            print(f"OTLP export failed schema validation "
                  f"({len(errors)} errors):")
            for error in errors[:10]:
                print(f"  {error}")
            return False
        with open(exports["--otlp"], "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
        print(f"wrote OTLP JSON to {exports['--otlp']}")
    if exports["--html"] is not None:
        from repro.obs.dashboard import write_consistency_html_report
        label = f"store:{result.config.protocol}"
        write_consistency_html_report(exports["--html"], {label: monitor})
        print(f"wrote HTML report to {exports['--html']}")
    if exports["--consistency"] is not None:
        from repro.obs.consistency import validate_consistency
        digest = result.consistency
        errors = validate_consistency(digest)
        if errors:
            print(f"consistency digest failed schema validation "
                  f"({len(errors)} errors):")
            for error in errors[:10]:
                print(f"  {error}")
            return False
        with open(exports["--consistency"], "w", encoding="utf-8") as handle:
            json.dump(digest, handle, indent=2, sort_keys=True)
        print(f"wrote consistency digest to {exports['--consistency']}")
    if exports["--trace"] is not None:
        from repro.obs.export import write_jsonl
        count = write_jsonl(monitor.tracer.events, exports["--trace"])
        print(f"wrote {count} trace events to {exports['--trace']} "
              f"(render with: python -m repro trace {exports['--trace']} "
              f"--filter put,get,delete,read_repair,consistency_violation)")
    return True


if __name__ == "__main__":
    import sys

    raise SystemExit(store_main(sys.argv[1:]))
