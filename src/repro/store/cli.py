"""``python -m repro store`` — the replicated-store workload CLI.

Runs one seeded client workload (:mod:`repro.workload.clients`) against
a store fleet and prints a deterministic report: op mix, session and
read-repair counts, wire totals, client-felt latency and staleness
percentiles, and the converged per-key state digest.  Every printed
quantity is a pure function of the flags — no wall-clock numbers — so
two runs of the same seed are byte-identical, which the CI smoke job
checks by diffing them.

Usage::

    python -m repro store --demo
    python -m repro store --sites 16 --ops 100000 --seed 7
    python -m repro store --loss 0.1 --seed 3      # chaos faults on

Exits 0 iff the fleet converged (identical per-key sibling sets and
vectors on every site after the final sweep), 1 otherwise.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ReproError
from repro.workload.clients import StoreWorkloadConfig, run_store_workload


def _format_summary(summary: dict) -> str:
    return (f"p50 {summary['p50'] * 1000:.3f} ms / "
            f"p90 {summary['p90'] * 1000:.3f} ms / "
            f"p99 {summary['p99'] * 1000:.3f} ms")


def format_store_report(result) -> str:
    """The deterministic report for one finished workload run."""
    config = result.config
    store = result.store
    digest = result.digest()
    sets = store.sibling_sets()
    sizes = sorted(len(value) for value in sets.values()) or [0]
    lines = [
        f"store workload: {config.n_sites} sites × {config.n_keys} keys, "
        f"{config.n_clients} clients, {result.ops} ops, "
        f"protocol {config.protocol}, seed {config.seed}"
        + (f", loss {config.loss_rate:g}" if config.loss_rate else ""),
        f"  ops: {result.reads} reads / {result.writes} writes / "
        f"{result.deletes} deletes ({store.ops_deferred} deferred behind "
        f"busy sites)",
        f"  sessions: {store.sessions} "
        f"({store.sessions_abandoned} abandoned), "
        f"{store.read_repairs} read repairs, "
        f"{store.reconciliations} reconciliations",
        f"  wire: {store.total_bits} bits; "
        f"sim completion {store.completion_time:.3f} s",
        f"  get latency: {_format_summary(result.latency_summary('get'))}",
        f"  put latency: {_format_summary(result.latency_summary('put'))}",
        f"  staleness:   {_format_summary(result.staleness_summary())}",
        f"  siblings per key: min {sizes[0]} / "
        f"mean {sum(sizes) / len(sizes):.2f} / max {sizes[-1]}",
        f"  state sha256: {digest['state_sha256']}",
        f"  converged: {result.converged}",
    ]
    return "\n".join(lines)


#: ``--demo`` preset: an 8-site fleet sized to finish in a few seconds.
DEMO_CONFIG = StoreWorkloadConfig(n_sites=8, n_keys=32, n_clients=64,
                                  ops=20_000, op_interval=0.0005, seed=0)


def store_main(argv: List[str]) -> int:
    """``python -m repro store [--demo] [--sites N] ...``."""
    demo = False
    overrides: dict = {}

    def fail(message: str) -> int:
        print(message)
        print("usage: python -m repro store [--demo] [--sites N] [--keys N] "
              "[--clients N] [--ops N] [--read-ratio F] [--zipf F] "
              "[--loss F] [--protocol brv|crv|srv] [--seed N]")
        return 2

    flags = {"--sites": ("n_sites", int), "--keys": ("n_keys", int),
             "--clients": ("n_clients", int), "--ops": ("ops", int),
             "--read-ratio": ("read_ratio", float),
             "--zipf": ("zipf", float), "--loss": ("loss_rate", float),
             "--protocol": ("protocol", str), "--seed": ("seed", int)}
    index = 0
    while index < len(argv):
        argument = argv[index]
        if argument == "--demo":
            demo = True
            index += 1
        elif argument in flags:
            if index + 1 >= len(argv):
                return fail(f"{argument} requires a value")
            name, parse = flags[argument]
            try:
                overrides[name] = parse(argv[index + 1])
            except ValueError:
                return fail(f"{argument} expects {parse.__name__}, "
                            f"got {argv[index + 1]!r}")
            index += 2
        else:
            return fail(f"unknown argument {argument!r}")

    base = DEMO_CONFIG if demo else StoreWorkloadConfig()
    try:
        config = StoreWorkloadConfig(
            **{**{name: getattr(base, name)
                  for name in StoreWorkloadConfig.__dataclass_fields__},
               **overrides})
        result = run_store_workload(config)
    except ReproError as error:
        print(f"store workload failed: {error}")
        return 2
    print(format_store_report(result))
    return 0 if result.converged else 1


if __name__ == "__main__":
    import sys

    raise SystemExit(store_main(sys.argv[1:]))
