"""Performance harness: cluster-scale benchmark regression.

* :mod:`repro.perf.bench` — runs the paper's workload scenarios on the
  :class:`~repro.net.cluster.ClusterRunner` at several fleet sizes and
  emits a machine-readable ``BENCH_cluster.json`` document.
* :mod:`repro.perf.schema` — the document's schema and a dependency-free
  validator (also runnable: ``python -m repro.perf.schema FILE``).

The CLI entry point is ``python -m repro bench`` (or ``repro bench`` for
an installed distribution).
"""

from repro.perf.bench import (BenchConfig, bench_main, format_bench_table,
                              run_cluster_bench, write_bench)
from repro.perf.schema import SCHEMA_ID, validate_bench, validate_file

__all__ = [
    "BenchConfig",
    "SCHEMA_ID",
    "bench_main",
    "format_bench_table",
    "run_cluster_bench",
    "validate_bench",
    "validate_file",
    "write_bench",
]
