"""Timing-regression micro-benchmarks for the fast paths.

Every optimized path in this repo keeps an oracle next to it so property
tests can compare *results*: the segment-partition cache has
``segments_uncached``, the CRG Π/segment memos have uncached walks, the
array vector backend has the linked backend, and the one-pass stream
codec has the bit-by-bit codec.  This module compares their **timing**:
on workloads where the fast path is supposed to pay, it must beat its
oracle by at least the cell's floor (``min_speedup``).  CI runs
``python -m repro.perf.microbench`` and fails the build if any cell
falls below its floor — the cheap tripwire for "someone broke the
optimization and everything silently fell back to the slow path".

The E4/E11 cells gate the headline pipelines: E4 ships one SRV's whole
element walk (parse + messages + wire) and E11 round-trips the 8×32
chaos fleet's batched frame; both carry a 5× floor.

The workloads are deterministic (fixed seeds, fixed sizes) and sized so
a healthy fast path clears its floor with margin — far above scheduler
noise on any CI box.  Timings take the best of several rounds to shave
outliers further.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.core.arrayvec import ArraySkipRotatingVector
from repro.core.skip import SkipRotatingVector
from repro.extensions.varint import AdaptiveEncoding
from repro.graphs.crg import coalesce
from repro.graphs.replicationgraph import ReplicationGraph
from repro.net.codec import BitByBitReader, BitByBitWriter, Codec
from repro.protocols.batch import BatchFrame
from repro.protocols.messages import ElementSMsg, Halt
from repro.replication.membership import SiteRegistry

#: Timing rounds; each result keeps the fastest (least-noise) round.
ROUNDS = 5


@dataclass(frozen=True)
class MicrobenchResult:
    """One fast-path-vs-oracle timing comparison.

    ``min_speedup`` is the cell's floor: 1.0 (the default) just demands
    "never slower than the oracle"; the pipeline cells demand 5×.
    """

    name: str
    cached_seconds: float
    uncached_seconds: float
    min_speedup: float = 1.0

    @property
    def speedup(self) -> float:
        """Oracle time over fast-path time (> 1 means the fast path pays)."""
        return (self.uncached_seconds / self.cached_seconds
                if self.cached_seconds else float("inf"))

    @property
    def regressed(self) -> bool:
        """True when the fast path fell below its ``min_speedup`` floor."""
        return self.speedup < self.min_speedup


def _best_of(fn: Callable[[], None], rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_srv_segments(*, n_segments: int = 150, segment_len: int = 3,
                       repeats: int = 100) -> MicrobenchResult:
    """Repeated segment parses of one large SRV: cache vs full walk.

    The cached path re-parses only when the element order's version
    moves; ``repeats`` reads of an unchanged vector should cost one walk,
    not ``repeats``.
    """
    sites = iter(f"S{i:04d}" for i in range(n_segments * segment_len))
    vector = SkipRotatingVector.from_segments(
        [[(next(sites), 1) for _ in range(segment_len)]
         for _ in range(n_segments)])

    def cached() -> None:
        for _ in range(repeats):
            vector.segments()

    def uncached() -> None:
        for _ in range(repeats):
            vector.segments_uncached()

    # Warm the partition cache outside the timed region: steady-state
    # read cost is what regressions would change.
    vector.segments()
    return MicrobenchResult("srv.segments", _best_of(cached),
                            _best_of(uncached))


def _grown_crg(steps: int, seed: int):
    """A coalesced graph over a deterministic random update/merge history."""
    rng = random.Random(seed)
    graph = ReplicationGraph()
    counter = {"A": 1}
    frontier = [graph.add_initial([("A", 1)]).node_id]
    sites = ["A", "B", "C", "D", "E"]
    for _ in range(steps):
        site = rng.choice(sites)
        counter[site] = counter.get(site, 0) + 1
        vector = sorted(counter.items())
        if len(frontier) >= 2 and rng.random() < 0.25:
            left, right = rng.sample(frontier, 2)
            node = graph.add_merge(left, right, vector)
            frontier = [f for f in frontier
                        if f not in (left, right)] + [node.node_id]
        else:
            parent = rng.choice(frontier)
            node = graph.add_update(parent, vector)
            if rng.random() < 0.5:
                frontier.remove(parent)
            frontier.append(node.node_id)
    return coalesce(graph)


def bench_crg_pi_sweep(*, steps: int = 400, seed: int = 7
                       ) -> MicrobenchResult:
    """Π of every node: memoized sweep vs per-node ancestor walks.

    The memo shares ancestors' Π sets, making a whole-graph sweep linear
    in arcs; the oracle re-walks the ancestry per node.  A fresh graph is
    built per timing round so every cached round starts memo-cold.
    """
    node_ids = [node.node_id for node in _grown_crg(steps, seed).nodes()]

    def cached() -> None:
        crg = _grown_crg(steps, seed)
        for node_id in node_ids:
            crg.pi_set(node_id)

    def uncached() -> None:
        crg = _grown_crg(steps, seed)
        for node_id in node_ids:
            crg.pi_set_uncached(node_id)

    return MicrobenchResult("crg.pi_sweep", _best_of(cached),
                            _best_of(uncached))


def _srv_segment_spec(n_segments: int, segment_len: int
                      ) -> List[List[Tuple[str, int]]]:
    """Deterministic segment layout shared by the backend-vs-backend cells."""
    rng = random.Random(4)
    sites = iter(f"S{i:04d}" for i in range(n_segments * segment_len))
    return [[(next(sites), rng.randrange(1, 200))
             for _ in range(segment_len)]
            for _ in range(n_segments)]


def bench_vector_copy(*, n_segments: int = 300, segment_len: int = 3,
                      repeats: int = 50) -> MicrobenchResult:
    """Deep-copying a large SRV: array backend vs the linked oracle.

    ``copy`` dominates session snapshots (resumable sessions snapshot the
    receiver before every sync); the array backend copies six flat lists
    instead of relinking ~1000 nodes.
    """
    spec = _srv_segment_spec(n_segments, segment_len)
    array_vec = ArraySkipRotatingVector.from_segments(spec)
    linked_vec = SkipRotatingVector.from_segments(spec)

    def fast() -> None:
        for _ in range(repeats):
            array_vec.copy()

    def oracle() -> None:
        for _ in range(repeats):
            linked_vec.copy()

    return MicrobenchResult("vector.copy", _best_of(fast), _best_of(oracle),
                            min_speedup=3.0)


def bench_vector_rotate(*, n_segments: int = 300, segment_len: int = 3,
                        rotations: int = 2000, repeats: int = 10
                        ) -> MicrobenchResult:
    """Batched ROTATE replay: array backend vs the linked oracle.

    Both backends splice in O(1) per rotation, so this is a *parity*
    guard, not a speedup gate: the floor only fails the build if the
    array backend's pointer surgery drifts well behind the linked
    list's.
    """
    spec = _srv_segment_spec(n_segments, segment_len)
    array_vec = ArraySkipRotatingVector.from_segments(spec)
    linked_vec = SkipRotatingVector.from_segments(spec)
    rng = random.Random(5)
    names = [site for segment in spec for site, _ in segment]
    sites = [rng.choice(names) for _ in range(rotations)]

    def fast() -> None:
        for _ in range(repeats):
            array_vec.rotate_many(sites)

    def oracle() -> None:
        for _ in range(repeats):
            linked_vec.rotate_many(sites)

    return MicrobenchResult("vector.rotate", _best_of(fast), _best_of(oracle),
                            min_speedup=0.8)


def _pipeline_fixture(n_segments: int, segment_len: int):
    """Vectors, registry, and codecs for the E4/E11 pipeline cells.

    Returns ``(array_vec, linked_vec, fast_codec, slow_codec)`` where the
    slow codec runs the same wire format through the one-bit-at-a-time
    reference writer/reader — the honest pre-optimization baseline.
    """
    spec = _srv_segment_spec(n_segments, segment_len)
    array_vec = ArraySkipRotatingVector.from_segments(spec)
    linked_vec = SkipRotatingVector.from_segments(spec)
    n_sites = n_segments * segment_len
    encoding = AdaptiveEncoding.for_system(n_sites, 4096)
    registry = SiteRegistry(site for segment in spec for site, _ in segment)
    fast_codec = Codec(encoding, registry)
    slow_codec = Codec(encoding, registry,
                       bit_io=(BitByBitWriter, BitByBitReader))
    return array_vec, linked_vec, fast_codec, slow_codec


def bench_e4_segment_stream(*, n_segments: int = 333, segment_len: int = 3,
                            repeats: int = 3) -> MicrobenchResult:
    """E4's wire hop: a whole element walk over the wire and back.

    Fast: ``encode_elements``/``decode_elements`` streaming ~1000 SRV
    elements plus HALT in one pass.  Oracle: per-message bit-by-bit
    encode/decode — the shape of the code before the stream fast path
    existed, when every message paid its own writer, reader, and
    byte-assembly.  This is the ≥5× gate on the E4 microcell.  (Parse
    cost is gated separately by ``srv.segments``; message construction
    is identical on both sides and so is excluded.)
    """
    array_vec, _, fast_codec, slow_codec = _pipeline_fixture(
        n_segments, segment_len)
    channel = "srv_fwd"
    messages = [ElementSMsg(site, value, conflict, segment)
                for site, value, conflict, segment
                in array_vec.order.as_tuples()]
    messages.append(Halt(1))

    def fast() -> None:
        for _ in range(repeats):
            data, nbits = fast_codec.encode_elements(messages, channel)
            fast_codec.decode_elements(data, nbits, channel)

    def oracle() -> None:
        for _ in range(repeats):
            for message in messages:
                data, nbits = slow_codec.encode(message, channel)
                slow_codec.decode(data, nbits, channel)

    return MicrobenchResult("e4.segment_stream", _best_of(fast),
                            _best_of(oracle), min_speedup=5.0)


def bench_e11_batch_frame(*, n_objects: int = 32, msgs_per_object: int = 5,
                          repeats: int = 30) -> MicrobenchResult:
    """E11's batched frame round-trip: one-pass codec vs per-message bits.

    The frame mirrors one turn of the 8×32 chaos fleet: 32 multiplexed
    objects, each contributing a handful of SRV elements plus HALT.
    Fast: ``encode_batch``/``decode_batch`` in a single stream pass.
    Oracle: bit-by-bit γ headers per entry plus a per-message bit-by-bit
    round-trip — how frames were priced-and-shipped before batch frames
    had a wire path.  This is the ≥5× gate on the E11 microcell.
    """
    array_vec, _, fast_codec, slow_codec = _pipeline_fixture(40, 4)
    channel = "srv_fwd"
    rows = array_vec.order.as_tuples()
    rng = random.Random(6)
    entries = []
    for index in range(n_objects):
        picks = rng.sample(rows, msgs_per_object)
        payload = [ElementSMsg(site, value, conflict, segment)
                   for site, value, conflict, segment in picks]
        payload.append(Halt(1))
        entries.append((index, tuple(payload)))
    frame = BatchFrame(tuple(entries))

    def fast() -> None:
        for _ in range(repeats):
            data, nbits = fast_codec.encode_batch(frame, channel)
            fast_codec.decode_batch(data, nbits, channel)

    def oracle() -> None:
        for _ in range(repeats):
            for index, messages in frame.entries:
                headers = BitByBitWriter()
                headers.write_gamma(index)
                headers.write_gamma(len(messages))
                header_bytes = headers.getvalue()
                header_reader = BitByBitReader(header_bytes,
                                               headers.bit_length)
                header_reader.read_gamma()
                header_reader.read_gamma()
                for message in messages:
                    data, nbits = slow_codec.encode(message, channel)
                    slow_codec.decode(data, nbits, channel)

    return MicrobenchResult("e11.batch_frame", _best_of(fast),
                            _best_of(oracle), min_speedup=5.0)


def run_microbench() -> List[MicrobenchResult]:
    """All fast-path-vs-oracle probes, in a stable order."""
    return [bench_srv_segments(), bench_crg_pi_sweep(),
            bench_vector_copy(), bench_vector_rotate(),
            bench_e4_segment_stream(), bench_e11_batch_frame()]


def format_results(results: List[MicrobenchResult]) -> str:
    """Render the probe timings as an aligned table with verdicts."""
    header = (f"{'probe':20} {'fast ms':>10} {'oracle ms':>10} "
              f"{'speedup':>8} {'floor':>6} {'status':>8}")
    lines = [header, "-" * len(header)]
    for result in results:
        lines.append(
            f"{result.name:20} {result.cached_seconds * 1000:>10.2f} "
            f"{result.uncached_seconds * 1000:>10.2f} "
            f"{result.speedup:>7.1f}x "
            f"{result.min_speedup:>5.1f}x "
            f"{'REGRESS' if result.regressed else 'ok':>8}")
    return "\n".join(lines)


def main(argv: List[str] | None = None) -> int:
    """``python -m repro.perf.microbench`` — exit 1 below any floor."""
    results = run_microbench()
    print(format_results(results))
    regressed = [r.name for r in results if r.regressed]
    if regressed:
        print(f"\nfast path below its speedup floor: "
              f"{', '.join(regressed)} — an optimization regression")
        return 1
    print("\nall fast paths clear their speedup floors")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
