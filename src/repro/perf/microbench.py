"""Timing-regression micro-benchmarks for the incremental caches.

The segment-partition cache (:meth:`repro.core.skip.SkipRotatingVector.
partition`) and the CRG Π/segment memos (:mod:`repro.graphs.crg`) each
keep an *uncached* oracle next to the cached path so property tests can
compare results.  This module compares their **timing**: on workloads
where the caches are supposed to pay, the cached path must never be
slower than its oracle.  CI runs ``python -m repro.perf.microbench`` and
fails the build if that inverts — the cheap tripwire for "someone broke
the memoization and everything silently fell back to re-walking".

The workloads are deterministic (fixed seeds, fixed sizes) and sized so
a healthy cache wins by an order of magnitude — far above scheduler
noise on any CI box.  Timings take the best of several rounds to shave
outliers further.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, List

from repro.core.skip import SkipRotatingVector
from repro.graphs.crg import coalesce
from repro.graphs.replicationgraph import ReplicationGraph

#: Timing rounds; each result keeps the fastest (least-noise) round.
ROUNDS = 3


@dataclass(frozen=True)
class MicrobenchResult:
    """One cached-vs-oracle timing comparison."""

    name: str
    cached_seconds: float
    uncached_seconds: float

    @property
    def speedup(self) -> float:
        """Oracle time over cached time (> 1 means the cache pays)."""
        return (self.uncached_seconds / self.cached_seconds
                if self.cached_seconds else float("inf"))

    @property
    def regressed(self) -> bool:
        """True when the cached path was slower than its oracle."""
        return self.cached_seconds > self.uncached_seconds


def _best_of(fn: Callable[[], None], rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_srv_segments(*, n_segments: int = 150, segment_len: int = 3,
                       repeats: int = 100) -> MicrobenchResult:
    """Repeated segment parses of one large SRV: cache vs full walk.

    The cached path re-parses only when the element order's version
    moves; ``repeats`` reads of an unchanged vector should cost one walk,
    not ``repeats``.
    """
    sites = iter(f"S{i:04d}" for i in range(n_segments * segment_len))
    vector = SkipRotatingVector.from_segments(
        [[(next(sites), 1) for _ in range(segment_len)]
         for _ in range(n_segments)])

    def cached() -> None:
        for _ in range(repeats):
            vector.segments()

    def uncached() -> None:
        for _ in range(repeats):
            vector.segments_uncached()

    # Warm the partition cache outside the timed region: steady-state
    # read cost is what regressions would change.
    vector.segments()
    return MicrobenchResult("srv.segments", _best_of(cached),
                            _best_of(uncached))


def _grown_crg(steps: int, seed: int):
    """A coalesced graph over a deterministic random update/merge history."""
    rng = random.Random(seed)
    graph = ReplicationGraph()
    counter = {"A": 1}
    frontier = [graph.add_initial([("A", 1)]).node_id]
    sites = ["A", "B", "C", "D", "E"]
    for _ in range(steps):
        site = rng.choice(sites)
        counter[site] = counter.get(site, 0) + 1
        vector = sorted(counter.items())
        if len(frontier) >= 2 and rng.random() < 0.25:
            left, right = rng.sample(frontier, 2)
            node = graph.add_merge(left, right, vector)
            frontier = [f for f in frontier
                        if f not in (left, right)] + [node.node_id]
        else:
            parent = rng.choice(frontier)
            node = graph.add_update(parent, vector)
            if rng.random() < 0.5:
                frontier.remove(parent)
            frontier.append(node.node_id)
    return coalesce(graph)


def bench_crg_pi_sweep(*, steps: int = 400, seed: int = 7
                       ) -> MicrobenchResult:
    """Π of every node: memoized sweep vs per-node ancestor walks.

    The memo shares ancestors' Π sets, making a whole-graph sweep linear
    in arcs; the oracle re-walks the ancestry per node.  A fresh graph is
    built per timing round so every cached round starts memo-cold.
    """
    node_ids = [node.node_id for node in _grown_crg(steps, seed).nodes()]

    def cached() -> None:
        crg = _grown_crg(steps, seed)
        for node_id in node_ids:
            crg.pi_set(node_id)

    def uncached() -> None:
        crg = _grown_crg(steps, seed)
        for node_id in node_ids:
            crg.pi_set_uncached(node_id)

    return MicrobenchResult("crg.pi_sweep", _best_of(cached),
                            _best_of(uncached))


def run_microbench() -> List[MicrobenchResult]:
    """All cache-vs-oracle probes, in a stable order."""
    return [bench_srv_segments(), bench_crg_pi_sweep()]


def format_results(results: List[MicrobenchResult]) -> str:
    """Render the probe timings as an aligned table with verdicts."""
    header = (f"{'probe':16} {'cached ms':>10} {'oracle ms':>10} "
              f"{'speedup':>8} {'status':>8}")
    lines = [header, "-" * len(header)]
    for result in results:
        lines.append(
            f"{result.name:16} {result.cached_seconds * 1000:>10.2f} "
            f"{result.uncached_seconds * 1000:>10.2f} "
            f"{result.speedup:>7.1f}x "
            f"{'REGRESS' if result.regressed else 'ok':>8}")
    return "\n".join(lines)


def main(argv: List[str] | None = None) -> int:
    """``python -m repro.perf.microbench`` — exit 1 on a cache regression."""
    results = run_microbench()
    print(format_results(results))
    regressed = [r.name for r in results if r.regressed]
    if regressed:
        print(f"\ncached path slower than its oracle: "
              f"{', '.join(regressed)} — a cache regression")
        return 1
    print("\nall cached paths at least as fast as their oracles")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
