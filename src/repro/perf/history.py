"""Bench-history observatory: per-cell trajectories across documents.

:mod:`repro.perf.compare` diffs *two* ``BENCH_cluster.json`` documents;
this module ingests a chronological *sequence* of them and watches each
cell (one :func:`~repro.perf.compare.run_key`) move through time —
wire bits, bits per object, goodput, simulated completion, wall time,
and (when the bench ran with ``--analyze``) the convergence
critical-path length.  It renders sparkline trajectories and flags
regressions:

* **deterministic metrics** (bits, goodput, simulated seconds,
  critical-path seconds) are pure functions of the code — the latest
  document must match the previous one exactly (floats up to 1 ulp-ish
  relative tolerance); any drift is a flagged change, same doctrine as
  ``compare --require-same-bits``.
* **measured metrics** (wall seconds) are noisy — the latest value is
  compared against the *median of all prior* values and flagged only
  beyond the noise band (default ±50%, so an injected 2× slowdown
  always trips it).

``python -m repro history OLD.json ... NEW.json --gate`` exits non-zero
when anything is flagged, closing the loop between the tracer, the
bench suite, and CI.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.dashboard import sparkline
from repro.perf.compare import RunKey, _format_key, run_key
from repro.perf.schema import validate_bench

#: Relative tolerance for "deterministic" float metrics: identical code
#: must reproduce them, but a foreign platform may round the last ulp.
_EXACT_RTOL = 1e-9


@dataclass(frozen=True)
class MetricSpec:
    """One tracked per-run quantity."""

    name: str
    extract: Callable[[Dict[str, Any]], Optional[float]]
    #: Deterministic (exact-match) vs measured (noise-banded).
    exact: bool
    #: Whether an increase is the bad direction (wall time: yes;
    #: goodput: a *decrease* is the regression).
    higher_is_worse: bool = True


def _bits_per_object(run: Dict[str, Any]) -> Optional[float]:
    n_objects = run.get("n_objects")
    if not n_objects:
        return None
    return run["total_bits"] / n_objects


def _consistency_metric(*path: str) -> Callable[[Dict[str, Any]],
                                                Optional[float]]:
    """An extractor into the run's embedded consistency digest.

    Returns ``None`` whenever the block (or any step of the path) is
    absent, so unmonitored documents trend exactly as before.
    """
    def extract(run: Dict[str, Any]) -> Optional[float]:
        node: Any = run.get("consistency")
        for name in path:
            if not isinstance(node, dict):
                return None
            node = node.get(name)
        return node if isinstance(node, (int, float)) else None
    return extract


METRICS: Tuple[MetricSpec, ...] = (
    MetricSpec("total_bits", lambda run: run.get("total_bits"),
               exact=True),
    MetricSpec("bits_per_object", _bits_per_object, exact=True),
    MetricSpec("goodput_bits",
               lambda run: (run.get("traffic", {}).get("reliability", {})
                            .get("goodput_bits")),
               exact=True, higher_is_worse=False),
    MetricSpec("sim_completion_seconds",
               lambda run: run.get("sim_completion_seconds"), exact=True),
    MetricSpec("wall_seconds", lambda run: run.get("wall_seconds"),
               exact=False),
    MetricSpec("critical_path_seconds",
               lambda run: run.get("critical_path_seconds"), exact=True),
    # Consistency-observatory trends (monitored store cells only; all
    # simulated-clock quantities, so exact across identical code):
    MetricSpec("w_all_p99_seconds",
               _consistency_metric("w_all_seconds", "p99"), exact=True),
    MetricSpec("w_k_p99_seconds",
               _consistency_metric("w_k_seconds", "p99"), exact=True),
    MetricSpec("consistency_violations",
               _consistency_metric("audit", "violations"), exact=True),
    MetricSpec("max_replication_lag_seconds",
               _consistency_metric("max_replication_lag_seconds"),
               exact=True),
    # Cluster health rides along for monitored gossip cells: a drop in
    # the worst per-site health score is the regression direction.
    MetricSpec("min_final_score",
               lambda run: (run.get("health", {}).get("min_final_score")
                            if isinstance(run.get("health"), dict)
                            else None),
               exact=True, higher_is_worse=False),
)


@dataclass(frozen=True)
class Flag:
    """One flagged movement in the newest document."""

    key: RunKey
    metric: str
    baseline: float
    latest: float
    exact: bool

    @property
    def ratio(self) -> float:
        return self.latest / self.baseline if self.baseline else float("inf")

    def describe(self) -> str:
        """One human-readable line naming the cell, metric, and move."""
        kind = "CHANGED" if self.exact else "REGRESSION"
        direction = (f"{(self.ratio - 1) * 100:+.1f}%"
                     if self.baseline else "from zero")
        return (f"{_format_key(self.key)} :: {self.metric} {kind} "
                f"{self.baseline:g} → {self.latest:g} ({direction})")


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def extract_trajectories(documents: Sequence[Dict[str, Any]]
                         ) -> Dict[RunKey, Dict[str, List[Optional[float]]]]:
    """Per-cell, per-metric value sequences across the documents.

    A cell absent from some document holds ``None`` at that position, so
    every trajectory is index-aligned with the input sequence.
    """
    cells: Dict[RunKey, Dict[str, List[Optional[float]]]] = {}
    for index, document in enumerate(documents):
        for run in document.get("runs", ()):
            key = run_key(run)
            trajectories = cells.setdefault(
                key, {metric.name: [None] * len(documents)
                      for metric in METRICS})
            for metric in METRICS:
                value = metric.extract(run)
                if value is not None:
                    trajectories[metric.name][index] = float(value)
    return cells


def detect_flags(cells: Dict[RunKey, Dict[str, List[Optional[float]]]],
                 *, band: float = 0.5) -> List[Flag]:
    """Flag the newest document's movements beyond tolerance.

    Deterministic metrics compare the latest value against the most
    recent prior one; measured metrics compare against the median of all
    priors and flag only movements in the bad direction beyond ``band``.
    """
    flags: List[Flag] = []
    for key in sorted(cells, key=str):
        for metric in METRICS:
            series = cells[key][metric.name]
            latest = series[-1]
            priors = [value for value in series[:-1] if value is not None]
            if latest is None or not priors:
                continue
            if metric.exact:
                baseline = priors[-1]
                scale = max(abs(baseline), abs(latest), 1.0)
                if abs(latest - baseline) > _EXACT_RTOL * scale:
                    flags.append(Flag(key, metric.name, baseline, latest,
                                      exact=True))
            else:
                baseline = _median(priors)
                worse = (latest > baseline * (1.0 + band)
                         if metric.higher_is_worse
                         else latest < baseline / (1.0 + band))
                if worse:
                    flags.append(Flag(key, metric.name, baseline, latest,
                                      exact=False))
    return flags


def format_history(cells: Dict[RunKey, Dict[str, List[Optional[float]]]],
                   flags: List[Flag], *, n_documents: int,
                   width: int = 16) -> str:
    """The trajectory report: one sparkline block per cell."""
    flagged = {(flag.key, flag.metric) for flag in flags}
    lines = [f"bench history: {n_documents} document(s), "
             f"{len(cells)} cell(s)"]
    for key in sorted(cells, key=str):
        lines.append(_format_key(key))
        for metric in METRICS:
            series = cells[key][metric.name]
            present = [value for value in series if value is not None]
            if not present:
                continue
            spark = sparkline(present, width=width)
            note = ""
            if (key, metric.name) in flagged:
                note = "  ⚠ " + next(
                    flag.describe().split(" :: ", 1)[1]
                    for flag in flags
                    if (flag.key, flag.metric) == (key, metric.name))
            elif len(set(present)) == 1:
                note = "  (stable)"
            lines.append(f"  {metric.name:<24} {spark:<{width}} "
                         f"{present[-1]:g}{note}")
    if flags:
        lines.append("")
        lines.append(f"{len(flags)} flagged movement(s):")
        lines.extend(f"  {flag.describe()}" for flag in flags)
    else:
        lines.append("no movements beyond tolerance")
    return "\n".join(lines)


def _load(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    errors = validate_bench(document)
    if errors:
        raise ValueError(f"{path} is not a valid bench document: "
                         f"{'; '.join(errors)}")
    return document


def history_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro history DOC.json ... [--gate] [--band 0.5]``.

    Documents are given oldest → newest.  Exit codes: 0 — report
    rendered (no flags, or no ``--gate``); 1 — ``--gate`` and at least
    one movement beyond tolerance; 2 — usage or unreadable documents.
    """
    arguments = list(sys.argv[1:] if argv is None else argv)
    gate = "--gate" in arguments
    band = 0.5
    paths: List[str] = []
    index = 0
    while index < len(arguments):
        argument = arguments[index]
        if argument == "--gate":
            index += 1
        elif argument == "--band":
            if index + 1 >= len(arguments):
                print("--band requires a value")
                return 2
            try:
                band = float(arguments[index + 1])
            except ValueError:
                print(f"--band expects a number, "
                      f"got {arguments[index + 1]!r}")
                return 2
            if band <= 0:
                print(f"--band must be > 0, got {band:g}")
                return 2
            index += 2
        else:
            paths.append(argument)
            index += 1
    if len(paths) < 2:
        print("usage: python -m repro history OLD.json [...] NEW.json "
              "[--gate] [--band 0.5]")
        return 2
    try:
        documents = [_load(path) for path in paths]
    except (OSError, json.JSONDecodeError, ValueError) as error:
        print(error)
        return 2
    cells = extract_trajectories(documents)
    flags = detect_flags(cells, band=band)
    print(format_history(cells, flags, n_documents=len(documents)))
    if gate and flags:
        print("\nhistory gate FAILED: the newest document moved beyond "
              "the noise band; investigate or regenerate the baseline")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(history_main())
