"""The cluster-scale benchmark-regression driver.

Runs the paper's workload scenarios on the
:class:`~repro.net.cluster.ClusterRunner` at several fleet sizes and
records, per (protocol, n): total wire traffic, simulated completion
time, and measured wall-clock time.  The result is a
``BENCH_cluster.json`` document (schema :mod:`repro.perf.schema`) meant
to be committed/archived per PR so the performance trajectory is
machine-diffable.

Scenarios mirror the fleet regimes the paper distinguishes:

* **single-writer-gossip** (BRV/SYNCB) — all updates land on one site, so
  no two vectors are ever concurrent: Algorithm 2's precondition holds
  and traffic isolates the pure O(|Δ|) incremental cost.
* **multi-writer-gossip** (CRV/SYNCC, SRV/SYNCS) — updates land
  everywhere; gossip reconciles concurrent vectors, exercising conflict
  bits, segments, and SKIPs under realistic scheduling.
* **store-workload** — zipfian client traffic against the replicated
  key-value store (:mod:`repro.store`): per-key vectors, read-repair,
  background anti-entropy, with client-felt latency and staleness
  percentiles in the record's ``client`` object.

Every run also asserts the harness's accounting invariant — concurrent
scheduling must not change traffic — via
:func:`~repro.net.cluster.replay_sequential` when ``paired=True``.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import time
from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.net.channel import ChannelSpec
from repro.net.cluster import (ClusterConfig, ClusterResult, ClusterRunner,
                               launch_cluster, replay_sequential)
from repro.net.sharding import ShardMap
from repro.net.topology import LinkProfile, TopologySpec
from repro.net.wire import Encoding
from repro.obs.causal import analyze_tracer
from repro.obs.metrics import MetricsRegistry, wall_timer
from repro.obs.monitor import ClusterMonitor, MonitorConfig
from repro.obs.trace import Tracer
from repro.perf.schema import SCHEMA_ID, validate_bench
from repro.workload.cluster import (chaos_faults, gossip_schedule,
                                    site_names, update_schedule)
from repro.workload.epidemic import (closing_sweep, epidemic_schedule,
                                     sharded_update_schedule)

#: Fleet sizes of the standing regression trajectory.
DEFAULT_SITE_COUNTS = (8, 32, 128)
DEFAULT_OUTPUT = "BENCH_cluster.json"

#: The standing multi-region fleet of the E13 bench cell: three regions
#: of 16 sites on fast clean LANs, joined by a slow WAN carrying the
#: standard chaos mix at 1% nominal loss, objects sharded 3-way on the
#: consistent-hash ring.
DEFAULT_BENCH_TOPOLOGY = TopologySpec.grid(
    3, 16,
    intra=LinkProfile(latency=0.002, bandwidth=1_000_000.0),
    inter=LinkProfile(latency=0.04, bandwidth=250_000.0, loss=0.01),
    replication=3, chaos_seed=11)


@dataclass(frozen=True)
class BenchConfig:
    """Knobs of one benchmark sweep (all deterministic given ``seed``)."""

    site_counts: Tuple[int, ...] = DEFAULT_SITE_COUNTS
    protocols: Tuple[str, ...] = ("brv", "crv", "srv")
    #: Vector storage backend for every cell — ``array`` (flat fast
    #: path) or ``linked`` (pointer-chasing oracle).  Wire traffic is
    #: byte-identical either way, so the two backends' fingerprints must
    #: agree cell for cell (``perf.compare --require-same-bits``); only
    #: ``wall_seconds`` — masked from the fingerprint — may differ.
    backend: str = "array"
    rounds: int = 3
    updates_per_site: float = 2.0
    gossip_period: float = 1.0
    gossip_jitter: float = 0.2
    update_interval: float = 0.25
    latency: float = 0.005
    bandwidth: float = 1_000_000.0
    fanout: int = 1
    seed: int = 0
    #: Re-run every schedule sequentially and require identical traffic.
    paired: bool = True
    #: The batched many-objects scenario (§1's motivation, E10-style):
    #: one fleet of ``batched_site_count`` sites replicating
    #: ``batched_objects`` objects, swept over ``batched_sizes`` batch
    #: sizes so the document records how framing amortizes the
    #: ``batched_header_bits`` per-session overhead.  Empty
    #: ``batched_sizes`` skips the scenario.
    batched_site_count: int = 8
    batched_objects: int = 32
    batched_sizes: Tuple[int, ...] = (1, 64)
    batched_header_bits: int = 64
    #: The chaos scenario (E11): the batched fleet re-run per protocol
    #: over a faulted channel (:func:`repro.workload.cluster.chaos_faults`
    #: expands each nominal loss rate into the standard drop/duplicate/
    #: reorder mix) with the reliable ARQ transport engaged.  The record
    #: reports goodput vs retransmitted bits, retry/timeout/resume
    #: counters, and convergence.  Empty ``chaos_loss_rates`` skips the
    #: scenario.
    chaos_loss_rates: Tuple[float, ...] = (0.01, 0.1)
    chaos_seed: int = 11
    chaos_batch_size: int = 8
    #: The store-workload scenario (E12): zipfian client traffic against
    #: the replicated key-value store (:mod:`repro.store`) — per-key
    #: rotating vectors, causal-context writes, read-repair, background
    #: anti-entropy — reporting client-felt latency and staleness
    #: percentiles alongside the wire totals.  ``store_ops=0`` skips the
    #: scenario.
    store_site_count: int = 8
    store_keys: int = 32
    store_clients: int = 64
    store_ops: int = 2000
    store_read_ratio: float = 0.9
    store_zipf: float = 1.1
    #: The multi-region sharded scenario (E13): the ``topology`` fleet —
    #: regions, link profiles, loss, replication factor, gossip shape —
    #: replicating ``mr_objects`` objects over the consistent-hash ring,
    #: disseminated by ``mr_rounds`` epidemic push/pull rounds and closed
    #: by the deterministic two-phase sweep.  The record always embeds
    #: the ClusterMonitor health digest (per-region scores, shard load)
    #: — that visibility is the scenario's point.  ``topology=None``
    #: skips the scenario (the pre-E13 document shape).
    topology: Optional[TopologySpec] = DEFAULT_BENCH_TOPOLOGY
    mr_objects: int = 512
    mr_rounds: int = 4
    mr_batch_size: int = 8

    def channel(self) -> ChannelSpec:
        """The link model every session runs over."""
        return ChannelSpec(latency=self.latency, bandwidth=self.bandwidth)

    def chaos_channel(self, loss: float) -> ChannelSpec:
        """The same link carrying the standard fault mix for ``loss``."""
        return ChannelSpec(
            latency=self.latency, bandwidth=self.bandwidth,
            faults=chaos_faults(loss, latency=self.latency,
                                seed=self.chaos_seed))


def _scenario_for(protocol: str) -> str:
    return ("single-writer-gossip" if protocol == "brv"
            else "multi-writer-gossip")


def _make_monitor(enabled: bool) -> Optional[ClusterMonitor]:
    """The per-cell monitor, or ``None`` (the byte-identical default).

    Bench cells run the monitor in counting mode: a violation must land
    in the document (where the comparator gate fails on it), not abort
    the sweep halfway through.
    """
    return ClusterMonitor(MonitorConfig(strict=False)) if enabled else None


def _monitor_fields(monitor: Optional[ClusterMonitor]) -> Dict[str, Any]:
    """The extra record fields a monitored cell carries (picklable)."""
    if monitor is None:
        return {}
    return {"invariant_violations": monitor.violation_count,
            "health": monitor.health_summary()}


def _make_tracer(enabled: bool) -> Optional[Tracer]:
    """The per-cell causal tracer, or ``None`` (the default)."""
    return Tracer() if enabled else None


def _analyze_fields(tracer: Optional[Tracer]) -> Dict[str, Any]:
    """The causal-analysis record fields an analyzed cell carries.

    The cell's full trace is reduced post-run to three picklable
    scalars/dicts: the convergence critical-path length in simulated
    seconds, its hop count, and its category attribution — exactly the
    trajectory :mod:`repro.perf.history` watches across documents.
    """
    if tracer is None:
        return {}
    analysis = analyze_tracer(tracer)
    path = analysis.critical_path
    if path is None:
        return {"critical_path_seconds": 0.0, "critical_path_hops": 0,
                "critical_path_attribution": {}}
    return {"critical_path_seconds": path["elapsed"],
            "critical_path_hops": len(path["hops"]),
            "critical_path_attribution": path["attribution"]}


def _run_one(protocol: str, n_sites: int, config: BenchConfig, *,
             metrics: Optional[MetricsRegistry] = None,
             monitor: bool = False, analyze: bool = False) -> Dict[str, Any]:
    sites = site_names(n_sites)
    n_updates = max(1, round(n_sites * config.updates_per_site))
    cluster_config = ClusterConfig(
        protocol=protocol,
        channel=config.channel(),
        encoding=Encoding.for_system(n_sites, max(16, n_updates)),
        fanout=config.fanout,
        backend=config.backend,
    )
    sessions = gossip_schedule(
        sites, rounds=config.rounds, period=config.gossip_period,
        jitter=config.gossip_jitter, seed=config.seed)
    writers = [sites[0]] if protocol == "brv" else None
    updates = update_schedule(
        sites, n_updates=n_updates, interval=config.update_interval,
        seed=config.seed + 1, writers=writers)
    cell_monitor = _make_monitor(monitor)
    cell_tracer = _make_tracer(analyze)
    runner = ClusterRunner(sites, cluster_config, metrics=metrics,
                           monitor=cell_monitor, tracer=cell_tracer)
    start = time.perf_counter()
    with wall_timer(metrics, f"bench.cluster.{protocol}.wall_seconds"):
        result = runner.run(sessions, updates)
    wall_seconds = time.perf_counter() - start
    if config.paired:
        _assert_scheduling_independent(sites, cluster_config, result)
    per_session = result.per_session_bits()
    ranked = sorted(per_session)
    return {
        **_monitor_fields(cell_monitor),
        **_analyze_fields(cell_tracer),
        "scenario": _scenario_for(protocol),
        "protocol": protocol,
        "n_sites": n_sites,
        "sessions": result.sessions,
        "updates": result.updates_applied,
        "updates_deferred": result.updates_deferred,
        "reconciliations": result.reconciliations,
        "total_bits": result.total_bits,
        "traffic": result.totals.summary(),
        "bits_per_session": {
            "mean": sum(per_session) / len(per_session) if per_session else 0,
            "p50": ranked[len(ranked) // 2] if ranked else 0,
            "p90": ranked[min(len(ranked) - 1, (9 * len(ranked)) // 10)]
                   if ranked else 0,
            "max": ranked[-1] if ranked else 0,
        },
        "sim_completion_seconds": result.completion_time,
        "wall_seconds": wall_seconds,
        "max_queue_wait_seconds": result.max_queue_wait,
        "consistent": result.consistent(),
    }


def _run_batched_one(batch_size: int, config: BenchConfig, *,
                     metrics: Optional[MetricsRegistry] = None,
                     monitor: bool = False,
                     analyze: bool = False) -> Dict[str, Any]:
    """One batched many-objects run (always SRV, stop-and-wait).

    Stop-and-wait plus a non-zero per-session header is the regime where
    framing pays: ``batch_size=1`` ships one header and one ack stream
    per object, larger sizes one header and one ack per frame.  The
    record adds ``n_objects``/``batch_size``/``wire_bits_per_object`` on
    top of the standard fields so two batch sizes are directly
    comparable.
    """
    n_sites = config.batched_site_count
    n_objects = config.batched_objects
    sites = site_names(n_sites)
    n_updates = max(1, round(n_sites * config.updates_per_site))
    cluster_config = ClusterConfig(
        protocol="srv",
        channel=config.channel(),
        encoding=replace(Encoding.for_system(n_sites, max(16, n_updates)),
                         session_header_bits=config.batched_header_bits),
        fanout=config.fanout,
        stop_and_wait=True,
        n_objects=n_objects,
        batch_size=batch_size,
        backend=config.backend,
    )
    sessions = gossip_schedule(
        sites, rounds=config.rounds, period=config.gossip_period,
        jitter=config.gossip_jitter, seed=config.seed)
    updates = update_schedule(
        sites, n_updates=n_updates, interval=config.update_interval,
        seed=config.seed + 1, n_objects=n_objects)
    cell_monitor = _make_monitor(monitor)
    cell_tracer = _make_tracer(analyze)
    runner = ClusterRunner(sites, cluster_config, metrics=metrics,
                           monitor=cell_monitor, tracer=cell_tracer)
    start = time.perf_counter()
    with wall_timer(metrics, "bench.cluster.batched.wall_seconds"):
        result = runner.run(sessions, updates)
    wall_seconds = time.perf_counter() - start
    if config.paired:
        _assert_scheduling_independent(sites, cluster_config, result)
    per_session = result.per_session_bits()
    ranked = sorted(per_session)
    synced_objects = result.sessions * n_objects
    return {
        **_monitor_fields(cell_monitor),
        **_analyze_fields(cell_tracer),
        "scenario": "batched-many-objects",
        "protocol": "srv",
        "n_sites": n_sites,
        "n_objects": n_objects,
        "batch_size": batch_size,
        "sessions": result.sessions,
        "updates": result.updates_applied,
        "updates_deferred": result.updates_deferred,
        "reconciliations": result.reconciliations,
        "total_bits": result.total_bits,
        "wire_bits_per_object": (result.total_bits / synced_objects
                                 if synced_objects else 0.0),
        "traffic": result.totals.summary(),
        "bits_per_session": {
            "mean": sum(per_session) / len(per_session) if per_session else 0,
            "p50": ranked[len(ranked) // 2] if ranked else 0,
            "p90": ranked[min(len(ranked) - 1, (9 * len(ranked)) // 10)]
                   if ranked else 0,
            "max": ranked[-1] if ranked else 0,
        },
        "sim_completion_seconds": result.completion_time,
        "wall_seconds": wall_seconds,
        "max_queue_wait_seconds": result.max_queue_wait,
        "consistent": result.consistent(),
    }


def _run_chaos_one(protocol: str, loss: float, config: BenchConfig, *,
                   metrics: Optional[MetricsRegistry] = None,
                   monitor: bool = False,
                   analyze: bool = False) -> Dict[str, Any]:
    """One chaos cell: the batched fleet on a faulted channel.

    Every protocol runs the same ``batched_site_count`` ×
    ``batched_objects`` workload (single-writer updates for BRV, which
    cannot reconcile concurrent vectors) over a channel injecting the
    standard fault mix for ``loss``.  The reliable ARQ transport engages
    automatically; the record separates goodput from retransmitted bits
    and carries the retry/timeout/resume counters, so the per-scheme
    robustness overhead is machine-diffable across PRs.  The paired
    sequential replay applies here too — per-session injector seeds make
    even chaotic runs scheduling-independent.
    """
    n_sites = config.batched_site_count
    n_objects = config.batched_objects
    sites = site_names(n_sites)
    n_updates = max(1, round(n_sites * config.updates_per_site))
    cluster_config = ClusterConfig(
        protocol=protocol,
        channel=config.chaos_channel(loss),
        encoding=Encoding.for_system(n_sites, max(16, n_updates)),
        fanout=config.fanout,
        n_objects=n_objects,
        batch_size=config.chaos_batch_size,
        backend=config.backend,
    )
    sessions = gossip_schedule(
        sites, rounds=config.rounds, period=config.gossip_period,
        jitter=config.gossip_jitter, seed=config.seed)
    writers = [sites[0]] if protocol == "brv" else None
    updates = update_schedule(
        sites, n_updates=n_updates, interval=config.update_interval,
        seed=config.seed + 1, writers=writers, n_objects=n_objects)
    cell_monitor = _make_monitor(monitor)
    cell_tracer = _make_tracer(analyze)
    runner = ClusterRunner(sites, cluster_config, metrics=metrics,
                           monitor=cell_monitor, tracer=cell_tracer)
    start = time.perf_counter()
    with wall_timer(metrics, f"bench.cluster.chaos.{protocol}.wall_seconds"):
        result = runner.run(sessions, updates)
    wall_seconds = time.perf_counter() - start
    if config.paired:
        _assert_scheduling_independent(sites, cluster_config, result)
    per_session = result.per_session_bits()
    ranked = sorted(per_session)
    totals = result.totals
    return {
        **_monitor_fields(cell_monitor),
        **_analyze_fields(cell_tracer),
        "scenario": "chaos-loss",
        "protocol": protocol,
        "n_sites": n_sites,
        "n_objects": n_objects,
        "batch_size": config.chaos_batch_size,
        "loss_rate": loss,
        "chaos_seed": config.chaos_seed,
        "sessions": result.sessions,
        "updates": result.updates_applied,
        "updates_deferred": result.updates_deferred,
        "reconciliations": result.reconciliations,
        "total_bits": result.total_bits,
        "goodput_bits": totals.total_goodput_bits,
        "retransmitted_bits": totals.total_retransmitted_bits,
        "retries": totals.retries,
        "timeouts": totals.timeouts,
        "resumes": totals.resumes,
        "goodput_overhead_pct": (
            (result.total_bits - totals.total_goodput_bits)
            / totals.total_goodput_bits * 100
            if totals.total_goodput_bits else 0.0),
        "traffic": totals.summary(),
        "bits_per_session": {
            "mean": sum(per_session) / len(per_session) if per_session else 0,
            "p50": ranked[len(ranked) // 2] if ranked else 0,
            "p90": ranked[min(len(ranked) - 1, (9 * len(ranked)) // 10)]
                   if ranked else 0,
            "max": ranked[-1] if ranked else 0,
        },
        "sim_completion_seconds": result.completion_time,
        "wall_seconds": wall_seconds,
        "max_queue_wait_seconds": result.max_queue_wait,
        "consistent": result.consistent(),
    }


def _run_store_one(config: BenchConfig, *,
                   metrics: Optional[MetricsRegistry] = None,
                   monitor: bool = False,
                   analyze: bool = False) -> Dict[str, Any]:
    """One store-workload cell: client traffic against the KV store.

    The record keeps the standard cluster shape (``updates`` counts
    client writes, ``updates_deferred`` the ops parked behind a busy
    site, ``consistent`` the per-key sibling-set convergence check) and
    adds a ``client`` object with the client-felt numbers: op mix,
    read-repair count, and exact latency/staleness percentiles.  A
    monitored sweep attaches the *consistency* observatory
    (:mod:`repro.obs.consistency`) rather than the cluster health
    monitor — the health monitor's ancestor-closure oracle assumes
    whole-state sessions, which per-key store sessions are not — and
    embeds its digest as the record's ``consistency`` object
    (schema-validated alongside the rest of the document).
    """
    from repro.workload.clients import StoreWorkloadConfig, run_store_workload

    workload_config = StoreWorkloadConfig(
        n_sites=config.store_site_count, n_keys=config.store_keys,
        n_clients=config.store_clients, ops=config.store_ops,
        read_ratio=config.store_read_ratio, zipf=config.store_zipf,
        net_latency=config.latency, bandwidth=config.bandwidth,
        seed=config.seed, backend=config.backend)
    cell_monitor = None
    if monitor:
        from repro.obs.consistency import (ConsistencyConfig,
                                           ConsistencyMonitor)
        cell_monitor = ConsistencyMonitor(ConsistencyConfig())
    cell_tracer = _make_tracer(analyze)
    start = time.perf_counter()
    with wall_timer(metrics, "bench.cluster.store.wall_seconds"):
        result = run_store_workload(workload_config, tracer=cell_tracer,
                                    metrics=metrics, monitor=cell_monitor)
    wall_seconds = time.perf_counter() - start
    store = result.store
    per_session = [record.result.stats.total_bits
                   for record in store.records if record.result is not None]
    ranked = sorted(per_session)

    def _percentiles(summary: Dict[str, float]) -> Dict[str, float]:
        return {name: summary[name] for name in ("p50", "p90", "p99")}

    return {
        **_analyze_fields(cell_tracer),
        "scenario": "store-workload",
        "protocol": workload_config.protocol,
        "n_sites": workload_config.n_sites,
        "n_objects": workload_config.n_keys,
        "batch_size": workload_config.batch_size,
        "sessions": store.sessions,
        "updates": result.writes + result.deletes,
        "updates_deferred": store.ops_deferred,
        "reconciliations": store.reconciliations,
        "total_bits": store.total_bits,
        "traffic": store.totals.summary(),
        "bits_per_session": {
            "mean": sum(per_session) / len(per_session) if per_session else 0,
            "p50": ranked[len(ranked) // 2] if ranked else 0,
            "p90": ranked[min(len(ranked) - 1, (9 * len(ranked)) // 10)]
                   if ranked else 0,
            "max": ranked[-1] if ranked else 0,
        },
        "sim_completion_seconds": store.completion_time,
        "wall_seconds": wall_seconds,
        "max_queue_wait_seconds": store.max_queue_wait,
        "consistent": result.converged,
        "client": {
            "ops": result.ops,
            "reads": result.reads,
            "writes": result.writes,
            "deletes": result.deletes,
            "read_repairs": store.read_repairs,
            "sessions_abandoned": store.sessions_abandoned,
            "get_latency_seconds": _percentiles(
                result.latency_summary("get")),
            "put_latency_seconds": _percentiles(
                result.latency_summary("put")),
            "staleness_seconds": _percentiles(result.staleness_summary()),
        },
        **({"consistency": result.consistency}
           if result.consistency is not None else {}),
    }


def _run_multiregion_one(config: BenchConfig, *,
                         metrics: Optional[MetricsRegistry] = None,
                         monitor: bool = False,
                         analyze: bool = False) -> Dict[str, Any]:
    """One multi-region sharded cell (always SRV, always monitored).

    The fleet comes straight from ``config.topology`` via
    :func:`~repro.net.cluster.launch_cluster`: consistent-hash sharding
    at the spec's replication factor, epidemic push/pull dissemination
    among shard peers, chaos-faulted WAN links, and the deterministic
    two-phase closing sweep — so ``consistent`` asserts that every
    replica group converged under loss, not that it probably did.  The
    monitor rides along unconditionally (ignoring the ``monitor`` flag,
    which other cells use as an opt-in): the per-region scores and
    shard-load spread in ``health`` are the scenario's deliverable, and
    attaching it is deterministic, so the record is identical either
    way.
    """
    spec = config.topology
    if spec is None:  # pragma: no cover - the grid gates on the spec
        raise ReproError("multi-region cell needs a BenchConfig.topology")
    n_sites = spec.n_sites
    n_objects = config.mr_objects
    n_updates = max(1, round(n_sites * config.updates_per_site))
    cell_monitor = _make_monitor(True)
    cell_tracer = _make_tracer(analyze)
    runner = launch_cluster(
        spec, protocol="srv", n_objects=n_objects,
        batch_size=config.mr_batch_size,
        encoding=Encoding.for_system(n_sites, max(16, n_updates)),
        backend=config.backend, metrics=metrics, monitor=cell_monitor,
        tracer=cell_tracer)
    shards = runner.shards
    sessions = epidemic_schedule(
        spec, shards, rounds=config.mr_rounds, period=config.gossip_period,
        jitter=config.gossip_jitter, seed=config.seed)
    updates = sharded_update_schedule(
        spec, shards, n_updates=n_updates, interval=config.update_interval,
        seed=config.seed + 1)
    last = max([request.at for request in sessions]
               + [update.at for update in updates], default=0.0)
    sessions = list(sessions) + closing_sweep(shards, start=last + 500.0)
    start = time.perf_counter()
    with wall_timer(metrics, "bench.cluster.multiregion.wall_seconds"):
        result = runner.run(sessions, updates)
    wall_seconds = time.perf_counter() - start
    if config.paired:
        _assert_scheduling_independent(runner.sites, runner.config, result,
                                       shards=shards)
    per_session = result.per_session_bits()
    ranked = sorted(per_session)
    totals = result.totals
    return {
        **_monitor_fields(cell_monitor),
        **_analyze_fields(cell_tracer),
        "scenario": "multi-region-sharded",
        "protocol": "srv",
        "n_sites": n_sites,
        "n_objects": n_objects,
        "batch_size": config.mr_batch_size,
        "regions": len(spec.regions),
        "replication": spec.replication,
        "shard_groups": len(shards.groups()),
        "shard_load": shards.load_summary(),
        "loss_rate": spec.inter.loss,
        "chaos_seed": spec.chaos_seed,
        "sessions": result.sessions,
        "skipped_sessions": result.skipped_sessions,
        "updates": result.updates_applied,
        "updates_deferred": result.updates_deferred,
        "reconciliations": result.reconciliations,
        "total_bits": result.total_bits,
        "goodput_bits": totals.total_goodput_bits,
        "retransmitted_bits": totals.total_retransmitted_bits,
        "retries": totals.retries,
        "timeouts": totals.timeouts,
        "resumes": totals.resumes,
        "goodput_overhead_pct": (
            (result.total_bits - totals.total_goodput_bits)
            / totals.total_goodput_bits * 100
            if totals.total_goodput_bits else 0.0),
        "traffic": totals.summary(),
        "bits_per_session": {
            "mean": sum(per_session) / len(per_session) if per_session else 0,
            "p50": ranked[len(ranked) // 2] if ranked else 0,
            "p90": ranked[min(len(ranked) - 1, (9 * len(ranked)) // 10)]
                   if ranked else 0,
            "max": ranked[-1] if ranked else 0,
        },
        "sim_completion_seconds": result.completion_time,
        "wall_seconds": wall_seconds,
        "max_queue_wait_seconds": result.max_queue_wait,
        "consistent": result.consistent(),
    }


def _assert_scheduling_independent(sites: Sequence[str],
                                   cluster_config: ClusterConfig,
                                   result: ClusterResult, *,
                                   shards: Optional[ShardMap] = None
                                   ) -> None:
    """Concurrent and sequential execution must move identical bits."""
    sequential, _ = replay_sequential(sites, cluster_config, result.log,
                                      shards=shards)
    concurrent_bits = result.per_session_bits()
    sequential_bits = [r.stats.total_bits for r in sequential]
    if concurrent_bits != sequential_bits:
        mismatches = [i for i, (c, s) in
                      enumerate(zip(concurrent_bits, sequential_bits))
                      if c != s]
        raise ReproError(
            f"cluster scheduling changed traffic accounting: "
            f"{len(mismatches)} of {len(concurrent_bits)} sessions differ "
            f"(first at index {mismatches[0] if mismatches else '?'}) — "
            f"this falsifies the harness, not the workload")


#: One grid cell: ``("gossip", protocol, n_sites)``,
#: ``("batched", batch_size)``, ``("chaos", protocol, loss_rate)``,
#: ``("store",)``, or ``("multiregion",)``.
#: The grid order *is* the document's run order, whether cells run
#: serially or fan out across workers.
_BenchTask = Tuple[Any, ...]


def _task_grid(config: BenchConfig) -> List[_BenchTask]:
    tasks: List[_BenchTask] = [("gossip", protocol, n_sites)
                               for n_sites in config.site_counts
                               for protocol in config.protocols]
    tasks.extend(("batched", batch_size)
                 for batch_size in config.batched_sizes)
    tasks.extend(("chaos", protocol, loss)
                 for loss in config.chaos_loss_rates
                 for protocol in config.protocols)
    if config.store_ops > 0:
        tasks.append(("store",))
    if config.topology is not None and config.mr_objects > 0:
        tasks.append(("multiregion",))
    return tasks


def _run_task(task_and_config: Tuple[_BenchTask, BenchConfig, bool, bool]
              ) -> Tuple[Dict[str, Any], MetricsRegistry]:
    """Execute one grid cell with a private registry (pool-picklable).

    Every cell derives its schedules from ``config.seed`` alone — no
    state is shared between cells — so the record is identical whether
    the cell runs in the parent or in a pool worker.  ``monitor`` and
    ``analyze`` ride along as plain flags (not ``BenchConfig`` fields —
    the config is embedded in the document, and neither observation mode
    may move the default fingerprint); opted-in cells embed only the
    picklable digest.
    """
    task, config, monitor, analyze = task_and_config
    metrics = MetricsRegistry()
    if task[0] == "gossip":
        record = _run_one(task[1], task[2], config, metrics=metrics,
                          monitor=monitor, analyze=analyze)
    elif task[0] == "chaos":
        record = _run_chaos_one(task[1], task[2], config, metrics=metrics,
                                monitor=monitor, analyze=analyze)
    elif task[0] == "store":
        record = _run_store_one(config, metrics=metrics,
                                monitor=monitor, analyze=analyze)
    elif task[0] == "multiregion":
        record = _run_multiregion_one(config, metrics=metrics,
                                      monitor=monitor, analyze=analyze)
    else:
        record = _run_batched_one(task[1], config, metrics=metrics,
                                  monitor=monitor, analyze=analyze)
    return record, metrics


def _echo_record(echo: Any, record: Dict[str, Any]) -> None:
    regions = (f" regions={record['regions']} repl={record['replication']}"
               if "regions" in record else "")
    batch = (f" batch={record['batch_size']}×{record['n_objects']}obj"
             if "batch_size" in record else "")
    chaos = (f" loss={record['loss_rate']:g} "
             f"retrans={record['retransmitted_bits']}b"
             if "loss_rate" in record else "")
    client = (f" client-ops={record['client']['ops']} "
              f"repairs={record['client']['read_repairs']}"
              if "client" in record else "")
    echo(f"  {record['protocol']} n={record['n_sites']}{regions}"
         f"{batch}{chaos}{client}: "
         f"{record['sessions']} sessions, "
         f"{record['total_bits']} bits, "
         f"sim {record['sim_completion_seconds']:.2f}s, "
         f"wall {record['wall_seconds'] * 1000:.0f}ms")


def run_cluster_bench(config: BenchConfig = BenchConfig(), *,
                      metrics: Optional[MetricsRegistry] = None,
                      echo: Optional[Any] = None,
                      workers: int = 1,
                      monitor: bool = False,
                      analyze: bool = False,
                      created_unix: Optional[float] = None) -> Dict[str, Any]:
    """Run the full sweep; returns the (already validated) document.

    With ``workers > 1`` the grid cells fan out across a process pool;
    results are folded back in grid order and ``created_unix`` is stamped
    in the parent, so apart from the measured ``wall_seconds`` the
    document is identical to a serial run —
    :func:`bench_fingerprint` (which masks exactly those fields) must
    agree between the two, and the benchmark suite asserts it.  Each
    worker fills a private :class:`MetricsRegistry`, merged into
    ``metrics`` in the same order a serial run would have written it.

    ``monitor=True`` attaches a :class:`~repro.obs.monitor.ClusterMonitor`
    to every cell and embeds its digest (``invariant_violations`` count
    plus the ``health`` summary) in each record; the default ``False``
    leaves the document — and its fingerprint — exactly as before.  It is
    deliberately a call parameter, not a ``BenchConfig`` field: the
    config is serialized into the document, so a config knob would move
    the default fingerprint.

    ``analyze=True`` traces every cell and embeds the causal digest
    (``critical_path_seconds`` / ``critical_path_hops`` /
    ``critical_path_attribution`` from :mod:`repro.obs.causal`) in each
    record — the trajectory :mod:`repro.perf.history` tracks.  Like
    ``monitor`` it is a call parameter for the same fingerprint reason.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    tasks = [(task, config, monitor, analyze) for task in _task_grid(config)]
    if workers > 1 and len(tasks) > 1:
        with multiprocessing.Pool(min(workers, len(tasks))) as pool:
            outcomes = pool.map(_run_task, tasks)
    else:
        outcomes = [_run_task(task) for task in tasks]
    runs: List[Dict[str, Any]] = []
    for record, task_metrics in outcomes:
        runs.append(record)
        if metrics is not None:
            metrics.merge(task_metrics)
        if echo is not None:
            _echo_record(echo, record)
    document = {
        "schema": SCHEMA_ID,
        "created_unix": time.time() if created_unix is None else created_unix,
        "config": asdict(config),
        "runs": runs,
    }
    errors = validate_bench(document)
    if errors:  # pragma: no cover - would be a driver bug
        raise ReproError(f"emitted an invalid bench document: {errors}")
    return document


def bench_fingerprint(document: Dict[str, Any]) -> str:
    """SHA-256 over the document minus its measurement-irrelevant fields.

    ``created_unix`` and each run's ``wall_seconds`` are host-time
    measurements, and ``config.backend`` is an in-memory representation
    choice that is *required* not to affect any measured quantity;
    everything else is a pure function of the config.  Two documents
    from the same workload — serial or parallel, array or linked, today
    or next year — must fingerprint identically, and the comparator uses
    this to separate "the numbers moved" from "you re-ran it".  (Masking
    the backend is what makes the cross-backend CI check a fingerprint
    equality, not just a bits equality.)
    """
    masked = dict(document)
    masked.pop("created_unix", None)
    if isinstance(masked.get("config"), dict):
        masked["config"] = {key: value
                            for key, value in masked["config"].items()
                            if key != "backend"}
    masked["runs"] = [{key: value for key, value in run.items()
                       if key != "wall_seconds"}
                      for run in document.get("runs", ())]
    canonical = json.dumps(masked, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def write_bench(document: Dict[str, Any], path: str = DEFAULT_OUTPUT) -> str:
    """Write the document as stable, diff-friendly JSON; returns ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def format_bench_table(document: Dict[str, Any]) -> str:
    """A human-readable summary of one document."""
    header = (f"{'protocol':10} {'n':>5} {'sessions':>8} {'bits':>12} "
              f"{'sim s':>9} {'wall ms':>9} {'recons':>7}")
    lines = [header, "-" * len(header)]
    for run in document["runs"]:
        lines.append(
            f"{run['protocol']:10} {run['n_sites']:>5} "
            f"{run['sessions']:>8} {run['total_bits']:>12} "
            f"{run['sim_completion_seconds']:>9.2f} "
            f"{run['wall_seconds'] * 1000:>9.1f} "
            f"{run['reconciliations']:>7}")
    return "\n".join(lines)


def bench_main(argv: List[str]) -> int:
    """``python -m repro bench [--sites CSV] [--workers N] ...``."""
    site_counts: Tuple[int, ...] = DEFAULT_SITE_COUNTS
    protocols: Tuple[str, ...] = ("brv", "crv", "srv")
    rounds = 3
    seed = 0
    out = DEFAULT_OUTPUT
    workers = 1
    profile = False
    monitor = False
    analyze = False
    profile_out = "bench.pstats"
    chaos_loss_rates: Tuple[float, ...] = BenchConfig().chaos_loss_rates
    chaos_seed = BenchConfig().chaos_seed
    store_ops = BenchConfig().store_ops
    backend = BenchConfig().backend
    topology: Optional[TopologySpec] = BenchConfig().topology

    def fail(message: str) -> int:
        print(message)
        print("usage: python -m repro bench [--sites 8,32,128] "
              "[--protocols brv,crv,srv] [--backend array|linked] "
              "[--rounds N] [--seed N] "
              "[--workers N] [--profile] [--profile-out bench.pstats] "
              "[--chaos-loss 0.01,0.1] [--chaos-seed N] [--no-chaos] "
              "[--store-ops N] [--no-store] [--no-multiregion] "
              "[--monitor] [--analyze] [--out BENCH_cluster.json]")
        return 2

    index = 0
    while index < len(argv):
        argument = argv[index]
        if argument == "--profile":
            profile = True
            index += 1
        elif argument == "--monitor":
            monitor = True
            index += 1
        elif argument == "--analyze":
            analyze = True
            index += 1
        elif argument == "--no-chaos":
            chaos_loss_rates = ()
            index += 1
        elif argument == "--no-store":
            store_ops = 0
            index += 1
        elif argument == "--no-multiregion":
            topology = None
            index += 1
        elif argument in ("--sites", "--protocols", "--backend", "--rounds",
                          "--seed", "--workers", "--profile-out", "--out",
                          "--chaos-loss", "--chaos-seed", "--store-ops"):
            if index + 1 >= len(argv):
                return fail(f"{argument} requires a value")
            value = argv[index + 1]
            if argument == "--sites":
                try:
                    site_counts = tuple(int(part)
                                        for part in value.split(","))
                except ValueError:
                    return fail(f"--sites expects integers, got {value!r}")
                if any(n < 2 for n in site_counts):
                    return fail("--sites values must be >= 2")
            elif argument == "--protocols":
                protocols = tuple(value.split(","))
                unknown = [p for p in protocols
                           if p not in ("brv", "crv", "srv")]
                if unknown:
                    return fail(f"unknown protocols: {', '.join(unknown)}")
            elif argument == "--backend":
                if value not in ("array", "linked"):
                    return fail(f"unknown backend {value!r}; "
                                f"expected array or linked")
                backend = value
            elif argument == "--rounds":
                try:
                    rounds = int(value)
                except ValueError:
                    return fail(f"--rounds expects an integer, got {value!r}")
            elif argument == "--seed":
                try:
                    seed = int(value)
                except ValueError:
                    return fail(f"--seed expects an integer, got {value!r}")
            elif argument == "--workers":
                try:
                    workers = int(value)
                except ValueError:
                    return fail(f"--workers expects an integer, "
                                f"got {value!r}")
                if workers < 1:
                    return fail("--workers must be >= 1")
            elif argument == "--profile-out":
                profile_out = value
            elif argument == "--chaos-loss":
                try:
                    chaos_loss_rates = tuple(float(part)
                                             for part in value.split(","))
                except ValueError:
                    return fail(f"--chaos-loss expects floats, got {value!r}")
                if any(not 0 <= rate <= 1 for rate in chaos_loss_rates):
                    return fail("--chaos-loss rates must be in [0, 1]")
            elif argument == "--chaos-seed":
                try:
                    chaos_seed = int(value)
                except ValueError:
                    return fail(f"--chaos-seed expects an integer, "
                                f"got {value!r}")
            elif argument == "--store-ops":
                try:
                    store_ops = int(value)
                except ValueError:
                    return fail(f"--store-ops expects an integer, "
                                f"got {value!r}")
                if store_ops < 0:
                    return fail("--store-ops must be >= 0")
            else:
                out = value
            index += 2
        else:
            return fail(f"unknown argument {argument!r}")
    config = BenchConfig(site_counts=site_counts, protocols=protocols,
                         backend=backend, rounds=rounds, seed=seed,
                         chaos_loss_rates=chaos_loss_rates,
                         chaos_seed=chaos_seed, store_ops=store_ops,
                         topology=topology)
    multiregion = ("off" if topology is None
                   else f"{len(topology.regions)}×"
                        f"{topology.regions[0].sites} sites")
    print(f"cluster bench: n ∈ {list(site_counts)}, "
          f"protocols {list(protocols)}, backend {backend}, "
          f"{rounds} rounds, seed {seed}, "
          f"chaos loss {list(chaos_loss_rates)}, store ops {store_ops}, "
          f"multi-region {multiregion}")
    if profile:
        # Profiling a process pool attributes everything to pickling and
        # waiting; force the serial path so the numbers mean something.
        if workers > 1:
            print("profiling forces --workers 1")
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            document = run_cluster_bench(config, echo=print,
                                         monitor=monitor, analyze=analyze)
        finally:
            profiler.disable()
        profiler.dump_stats(profile_out)
    else:
        document = run_cluster_bench(config, echo=print, workers=workers,
                                     monitor=monitor, analyze=analyze)
    path = write_bench(document, out)
    print()
    print(format_bench_table(document))
    print(f"\nwrote {path} ({SCHEMA_ID})")
    print(f"fingerprint {bench_fingerprint(document)}")
    if profile:
        print(f"\nprofile written to {profile_out}; top 20 by cumulative "
              f"time:")
        stats = pstats.Stats(profile_out)
        stats.sort_stats("cumulative").print_stats(20)
    return 0
