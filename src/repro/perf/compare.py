"""Diff two ``BENCH_cluster.json`` documents, run by run.

The trajectory only means something if comparing two PRs' documents is
mechanical.  This module pairs runs by their identity — (scenario,
protocol, n_sites, and for batched runs n_objects/batch_size) — and
reports, per pair, how the deterministic quantities (wire bits,
simulated time) and the measured ones (wall time) moved.

Wire bits and simulated time are pure functions of the config, so on an
unchanged codebase they diff to zero; :func:`repro.perf.bench.
bench_fingerprint` makes the same statement in one hash.  CI runs::

    python -m repro.perf.compare BENCH_cluster.json fresh.json --require-same-bits

to assert the committed document still describes what the code does —
a PR that changes traffic must regenerate the document, making every
traffic change reviewable in the diff.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.perf.bench import bench_fingerprint
from repro.perf.schema import validate_bench

#: Identity of one run within a document (None fields when absent).
#: Chaos cells add their loss rate and fault seed so two chaos runs of
#: the same protocol/fleet never collide.
RunKey = Tuple[str, str, int, Optional[int], Optional[int],
               Optional[float], Optional[int]]


def run_key(run: Dict[str, Any]) -> RunKey:
    """The pairing identity of one run record."""
    return (run.get("scenario", "?"), run.get("protocol", "?"),
            run.get("n_sites", 0), run.get("n_objects"),
            run.get("batch_size"), run.get("loss_rate"),
            run.get("chaos_seed"))


def _format_key(key: RunKey) -> str:
    scenario, protocol, n_sites, n_objects, batch_size, loss, seed = key
    label = f"{scenario}/{protocol} n={n_sites}"
    if batch_size is not None:
        label += f" batch={batch_size}×{n_objects}obj"
    if loss is not None:
        label += f" loss={loss:g}"
    return label


@dataclass(frozen=True)
class RunDelta:
    """One paired run's movement between two documents."""

    key: RunKey
    old_bits: int
    new_bits: int
    old_sim: float
    new_sim: float
    old_wall: float
    new_wall: float

    @property
    def bits_delta_pct(self) -> float:
        return ((self.new_bits - self.old_bits) / self.old_bits * 100
                if self.old_bits else 0.0)

    @property
    def bits_changed(self) -> bool:
        return self.new_bits != self.old_bits


@dataclass
class Comparison:
    """The full diff between two documents."""

    deltas: List[RunDelta]
    only_old: List[RunKey]
    only_new: List[RunKey]
    fingerprints_equal: bool
    #: Runs in the NEW document whose inline invariant checkers fired
    #: (``--monitor`` records only); any entry fails the gate outright —
    #: a violated invariant falsifies the measurement, so "the bits
    #: didn't move" is no longer evidence of anything.
    new_violations: List[Tuple[RunKey, int]] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.new_violations is None:
            self.new_violations = []

    @property
    def bits_changed(self) -> bool:
        """True when any paired run moved bits or the grids differ."""
        return (bool(self.only_old) or bool(self.only_new)
                or any(d.bits_changed for d in self.deltas))

    @property
    def invariants_violated(self) -> bool:
        """True when any NEW run recorded invariant violations."""
        return bool(self.new_violations)


def compare_documents(old: Dict[str, Any],
                      new: Dict[str, Any]) -> Comparison:
    """Pair the runs of two documents and measure every movement."""
    old_runs = {run_key(run): run for run in old.get("runs", ())}
    new_runs = {run_key(run): run for run in new.get("runs", ())}
    deltas = [RunDelta(key=key,
                       old_bits=old_runs[key]["total_bits"],
                       new_bits=new_runs[key]["total_bits"],
                       old_sim=old_runs[key]["sim_completion_seconds"],
                       new_sim=new_runs[key]["sim_completion_seconds"],
                       old_wall=old_runs[key]["wall_seconds"],
                       new_wall=new_runs[key]["wall_seconds"])
              for key in old_runs if key in new_runs]
    return Comparison(
        deltas=deltas,
        only_old=[key for key in old_runs if key not in new_runs],
        only_new=[key for key in new_runs if key not in old_runs],
        fingerprints_equal=(bench_fingerprint(old)
                            == bench_fingerprint(new)),
        new_violations=[(key, run["invariant_violations"])
                        for key, run in new_runs.items()
                        if run.get("invariant_violations")],
    )


def format_comparison(comparison: Comparison) -> str:
    """Render a comparison as the aligned per-pair movement table."""
    header = (f"{'run':44} {'old bits':>10} {'new bits':>10} {'Δ%':>7} "
              f"{'old wall ms':>12} {'new wall ms':>12}")
    lines = [header, "-" * len(header)]
    for delta in comparison.deltas:
        lines.append(
            f"{_format_key(delta.key):44} {delta.old_bits:>10} "
            f"{delta.new_bits:>10} {delta.bits_delta_pct:>+6.1f}% "
            f"{delta.old_wall * 1000:>12.1f} {delta.new_wall * 1000:>12.1f}")
    for key in comparison.only_old:
        lines.append(f"{_format_key(key):44} only in OLD document")
    for key in comparison.only_new:
        lines.append(f"{_format_key(key):44} only in NEW document")
    for key, count in comparison.new_violations:
        lines.append(f"{_format_key(key):44} {count} INVARIANT "
                     f"VIOLATION(S) in NEW document")
    lines.append("")
    lines.append("fingerprints "
                 + ("identical (deterministic fields unchanged)"
                    if comparison.fingerprints_equal else "DIFFER"))
    return "\n".join(lines)


def _load(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    errors = validate_bench(document)
    if errors:
        raise ValueError(f"{path} is not a valid bench document: "
                         f"{'; '.join(errors)}")
    return document


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.perf.compare OLD NEW [--require-same-bits]``.

    Exit codes: 0 — compared (and, with ``--require-same-bits``, no wire
    bits moved); 1 — ``--require-same-bits`` and traffic changed, or the
    NEW document records inline invariant violations (always fatal — a
    run that broke its own accounting cannot pass any gate);
    2 — usage or unreadable/invalid documents.
    """
    arguments = list(sys.argv[1:] if argv is None else argv)
    require_same = "--require-same-bits" in arguments
    paths = [a for a in arguments if a != "--require-same-bits"]
    if len(paths) != 2:
        print("usage: python -m repro.perf.compare OLD.json NEW.json "
              "[--require-same-bits]")
        return 2
    try:
        old, new = _load(paths[0]), _load(paths[1])
    except (OSError, json.JSONDecodeError, ValueError) as error:
        print(error)
        return 2
    comparison = compare_documents(old, new)
    print(f"old: {paths[0]}\nnew: {paths[1]}\n")
    print(format_comparison(comparison))
    if comparison.invariants_violated:
        print("\nthe new document records invariant violations; the "
              "measurements cannot be trusted — fix the regression "
              "before comparing numbers")
        return 1
    if require_same and comparison.bits_changed:
        print("\nwire traffic changed; regenerate and commit the bench "
              "document if this is intended")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
