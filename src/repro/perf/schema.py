"""Schema of the ``BENCH_cluster.json`` regression document.

The benchmark trajectory only works if every PR emits the *same shape*:
a diff between two runs must be a field-by-field comparison, never a
parser archaeology session.  This module pins that shape with a
dependency-free validator (the container has no ``jsonschema``), used by
the benchmark tests, the CI smoke job, and anyone diffing two documents.

Document layout (version ``repro.bench.cluster/1``)::

    {
      "schema": "repro.bench.cluster/1",
      "created_unix": 1754500000.0,        # wall clock at emission
      "config": { ... BenchConfig fields ... },
      "runs": [
        {
          "scenario": "multi-writer-gossip",
          "protocol": "srv",               # brv | crv | srv
          "n_sites": 8,
          "sessions": 24,
          "updates": 16,
          "updates_deferred": 0,
          "reconciliations": 3,
          "total_bits": 4242,              # == traffic.total_bits
          "traffic": {                     # TransferStats.summary()
            "forward_bits": ..., "backward_bits": ..., "total_bits": ...,
            "forward_messages": ..., "backward_messages": ...,
            "by_type": {"forward": {...}, "backward": {...}}
          },
          "bits_per_session": {"mean": ..., "p50": ..., "p90": ..., "max": ...},
          "sim_completion_seconds": 4.25,  # simulated clock at drain
          "wall_seconds": 0.08,            # measured host time
          "max_queue_wait_seconds": 0.01,
          "consistent": true,
          # Batched many-objects runs additionally carry (all optional,
          # validated when present):
          "n_objects": 32,                 # replicated objects per site
          "batch_size": 64,                # objects per framed session
          "wire_bits_per_object": 103.4,   # total_bits / synced objects
          # Chaos (faulted-channel) runs additionally carry:
          "loss_rate": 0.1,                # nominal fault rate in [0, 1]
          "chaos_seed": 11,                # fault-schedule seed
          "goodput_bits": 4000,            # first-transmission bits
          "retransmitted_bits": 242,       # == total_bits - goodput_bits
          "retries": 6,                    # data retransmissions
          "timeouts": 6,                   # expired ARQ timers
          "resumes": 0,                    # session re-handshakes
          "goodput_overhead_pct": 6.05,    # retransmitted/goodput * 100
          # Store-workload runs (the repro.store client scenario)
          # additionally carry the client-felt digest:
          "client": {
            "ops": 2000, "reads": 1802, "writes": 157, "deletes": 41,
            "read_repairs": 310, "sessions_abandoned": 0,
            # p999 is validated when present (newer cells carry it):
            "get_latency_seconds": {"p50": 0.01, "p90": ..., "p99": ...},
            "put_latency_seconds": {"p50": 0.01, "p90": ..., "p99": ...},
            "staleness_seconds":   {"p50": 0.08, "p90": ..., "p99": ...}
          },
          # Monitored store runs additionally embed the consistency
          # observatory digest, validated against its own schema
          # (repro.obs.consistency/1 — see schemas/ for the JSON copy):
          "consistency": {
            "schema": "repro.obs.consistency/1",
            "w_k_seconds": {...}, "w_all_seconds": {...},
            "audit": {...}, "worst_keys": [...], ...
          },
          # Multi-region sharded runs (the E13 scenario) additionally
          # carry the fleet shape and shard accounting:
          "regions": 3,                    # regions in the TopologySpec
          "replication": 3,                # replicas per object
          "shard_groups": 61,              # distinct replica groups
          "shard_load": {"min": 24.0, "mean": 32.0, "max": 41.0},
          "skipped_sessions": 0,           # gossip pairs sharing no object
          # Analyzed runs (``--analyze``) additionally carry the causal
          # digest from ``repro.obs.causal``:
          "critical_path_seconds": 4.21,   # convergence critical path
          "critical_path_hops": 12,        # hops on that path
          "critical_path_attribution": {   # category → simulated seconds
            "latency": 0.04, "serialization": 0.002, ...
          },
          # Monitored runs (``--monitor``) additionally carry:
          "invariant_violations": 0,       # inline-checker failures
          "health": {                      # ClusterMonitor.health_summary()
            "samples": 18, "sites": 8, "invariant_violations": 0,
            "sessions_checked": 24, "final_scores": {"S000": 1.0, ...},
            "min_final_score": 1.0, "mean_final_score": 1.0
          }
        }, ...
      ]
    }

Validate from the command line::

    PYTHONPATH=src python -m repro.perf.schema BENCH_cluster.json
"""

from __future__ import annotations

import json
import numbers
import sys
from typing import Any, Dict, List

SCHEMA_ID = "repro.bench.cluster/1"

PROTOCOLS = ("brv", "crv", "srv")

#: Required numeric count fields of one run record (all ≥ 0).
_RUN_COUNTS = ("n_sites", "sessions", "updates", "updates_deferred",
               "reconciliations", "total_bits")
#: Required numeric duration fields of one run record (all ≥ 0).
_RUN_SECONDS = ("sim_completion_seconds", "wall_seconds",
                "max_queue_wait_seconds")
_TRAFFIC_FIELDS = ("forward_bits", "backward_bits", "total_bits",
                   "forward_messages", "backward_messages")
_BPS_FIELDS = ("mean", "p50", "p90", "max")


def _is_number(value: Any) -> bool:
    return isinstance(value, numbers.Real) and not isinstance(value, bool)


def _check_number(errors: List[str], where: str, record: Dict[str, Any],
                  name: str, *, integer: bool = False) -> None:
    value = record.get(name)
    if value is None:
        errors.append(f"{where}: missing field {name!r}")
    elif not _is_number(value) or (integer and not isinstance(value, int)):
        kind = "an integer" if integer else "a number"
        errors.append(f"{where}: field {name!r} must be {kind}, "
                      f"got {value!r}")
    elif value < 0:
        errors.append(f"{where}: field {name!r} must be >= 0, got {value!r}")


def _validate_consistency_block(errors: List[str], where: str,
                                digest: Any) -> None:
    """Validate an embedded consistency-observatory digest.

    Delegates to the digest's own schema
    (:func:`repro.obs.consistency.validate_consistency`) so the bench
    document and the standalone ``--consistency`` export can never
    drift apart; the returned paths are re-rooted under ``where``.
    """
    from repro.obs.consistency import validate_consistency
    if not isinstance(digest, dict):
        errors.append(f"{where}: 'consistency' must be an object, "
                      f"got {type(digest).__name__}")
        return
    for error in validate_consistency(digest):
        errors.append(f"{where}.consistency: {error}")


def _validate_run(errors: List[str], index: int,
                  run: Dict[str, Any]) -> None:
    where = f"runs[{index}]"
    if not isinstance(run, dict):
        errors.append(f"{where}: must be an object, got {type(run).__name__}")
        return
    if not isinstance(run.get("scenario"), str) or not run.get("scenario"):
        errors.append(f"{where}: missing or empty 'scenario'")
    if run.get("protocol") not in PROTOCOLS:
        errors.append(f"{where}: 'protocol' must be one of {PROTOCOLS}, "
                      f"got {run.get('protocol')!r}")
    for name in _RUN_COUNTS:
        _check_number(errors, where, run, name, integer=True)
    for name in _RUN_SECONDS:
        _check_number(errors, where, run, name)
    if isinstance(run.get("n_sites"), int) and run["n_sites"] < 1:
        errors.append(f"{where}: 'n_sites' must be >= 1")
    if not isinstance(run.get("consistent"), bool):
        errors.append(f"{where}: 'consistent' must be a boolean")
    traffic = run.get("traffic")
    if not isinstance(traffic, dict):
        errors.append(f"{where}: missing 'traffic' object")
    else:
        for name in _TRAFFIC_FIELDS:
            _check_number(errors, f"{where}.traffic", traffic, name,
                          integer=True)
        if isinstance(traffic.get("total_bits"), int) \
                and isinstance(run.get("total_bits"), int) \
                and traffic["total_bits"] != run["total_bits"]:
            errors.append(f"{where}: total_bits ({run['total_bits']}) "
                          f"disagrees with traffic.total_bits "
                          f"({traffic['total_bits']})")
        if not isinstance(traffic.get("by_type"), dict):
            errors.append(f"{where}.traffic: missing 'by_type' object")
    bits_per_session = run.get("bits_per_session")
    if not isinstance(bits_per_session, dict):
        errors.append(f"{where}: missing 'bits_per_session' object")
    else:
        for name in _BPS_FIELDS:
            _check_number(errors, f"{where}.bits_per_session",
                          bits_per_session, name)
    # Batched many-objects runs carry extra fields; optional, but when
    # present they must be well-formed.
    for name in ("n_objects", "batch_size"):
        if name in run:
            _check_number(errors, where, run, name, integer=True)
            if isinstance(run[name], int) and run[name] < 1:
                errors.append(f"{where}: {name!r} must be >= 1")
    if "wire_bits_per_object" in run:
        _check_number(errors, where, run, "wire_bits_per_object")
    # Chaos (faulted-channel) runs carry the reliability accounting;
    # optional, but when present they must be well-formed and the
    # goodput identity must hold exactly.
    for name in ("chaos_seed", "goodput_bits", "retransmitted_bits",
                 "retries", "timeouts", "resumes"):
        if name in run:
            _check_number(errors, where, run, name, integer=True)
    if "loss_rate" in run:
        _check_number(errors, where, run, "loss_rate")
        if _is_number(run["loss_rate"]) and run["loss_rate"] > 1:
            errors.append(f"{where}: 'loss_rate' must be <= 1, "
                          f"got {run['loss_rate']!r}")
    if "goodput_overhead_pct" in run:
        _check_number(errors, where, run, "goodput_overhead_pct")
    # Multi-region sharded runs carry the fleet shape and shard
    # accounting; optional, but when present they must be well-formed.
    for name in ("regions", "replication", "shard_groups",
                 "skipped_sessions"):
        if name in run:
            _check_number(errors, where, run, name, integer=True)
    if "shard_load" in run:
        load = run["shard_load"]
        if not isinstance(load, dict):
            errors.append(f"{where}: 'shard_load' must be an object, "
                          f"got {type(load).__name__}")
        else:
            for name in ("min", "mean", "max"):
                _check_number(errors, f"{where}.shard_load", load, name)
    # Store-workload runs carry the client-felt digest; optional, but
    # when present the counts and percentile maps must be well-formed
    # and the op mix must add up.
    if "client" in run:
        client = run["client"]
        if not isinstance(client, dict):
            errors.append(f"{where}: 'client' must be an object, "
                          f"got {type(client).__name__}")
        else:
            for name in ("ops", "reads", "writes", "deletes",
                         "read_repairs", "sessions_abandoned"):
                _check_number(errors, f"{where}.client", client, name,
                              integer=True)
            if all(isinstance(client.get(name), int)
                   for name in ("ops", "reads", "writes", "deletes")) \
                    and client["reads"] + client["writes"] \
                    + client["deletes"] != client["ops"]:
                errors.append(
                    f"{where}.client: reads ({client['reads']}) + writes "
                    f"({client['writes']}) + deletes ({client['deletes']}) "
                    f"must equal ops ({client['ops']})")
            for name in ("get_latency_seconds", "put_latency_seconds",
                         "staleness_seconds"):
                summary = client.get(name)
                if not isinstance(summary, dict):
                    errors.append(f"{where}.client: missing {name!r} object")
                    continue
                for percentile in ("p50", "p90", "p99"):
                    _check_number(errors, f"{where}.client.{name}",
                                  summary, percentile)
                # The tail percentile is newer than the committed
                # baselines: validated when present, never required.
                if "p999" in summary:
                    _check_number(errors, f"{where}.client.{name}",
                                  summary, "p999")
    # Monitored store runs carry the consistency-observatory digest
    # (``repro.obs.consistency``); optional, but when present the
    # visibility summaries and audit counts must be well-formed.
    if "consistency" in run:
        _validate_consistency_block(errors, where, run["consistency"])
    # Analyzed runs (``--analyze``) carry the causal digest; optional,
    # but when present the attribution must be a category→seconds map.
    if "critical_path_seconds" in run:
        _check_number(errors, where, run, "critical_path_seconds")
    if "critical_path_hops" in run:
        _check_number(errors, where, run, "critical_path_hops",
                      integer=True)
    if "critical_path_attribution" in run:
        attribution = run["critical_path_attribution"]
        if not isinstance(attribution, dict):
            errors.append(f"{where}: 'critical_path_attribution' must be "
                          f"an object, got {type(attribution).__name__}")
        else:
            for name, value in attribution.items():
                if not _is_number(value) or value < 0:
                    errors.append(
                        f"{where}.critical_path_attribution: field "
                        f"{name!r} must be a number >= 0, got {value!r}")
    # Monitored runs carry the live-health digest; optional, but when
    # present the count must be sane and the summary well-formed.
    if "invariant_violations" in run:
        _check_number(errors, where, run, "invariant_violations",
                      integer=True)
    if "health" in run:
        health = run["health"]
        if not isinstance(health, dict):
            errors.append(f"{where}: 'health' must be an object, "
                          f"got {type(health).__name__}")
        else:
            for name in ("samples", "sites", "invariant_violations",
                         "sessions_checked"):
                _check_number(errors, f"{where}.health", health, name,
                              integer=True)
            for name in ("min_final_score", "mean_final_score"):
                _check_number(errors, f"{where}.health", health, name)
            if not isinstance(health.get("final_scores"), dict):
                errors.append(f"{where}.health: missing 'final_scores' "
                              f"object")
            # Multi-region monitors roll scores up per region and, when
            # sharded, report the shard-load spread; optional, but when
            # present each rollup must be well-formed.
            if "per_region" in health:
                per_region = health["per_region"]
                if not isinstance(per_region, dict):
                    errors.append(f"{where}.health: 'per_region' must be "
                                  f"an object, "
                                  f"got {type(per_region).__name__}")
                else:
                    for region, stats in per_region.items():
                        region_where = f"{where}.health.per_region" \
                                       f"[{region!r}]"
                        if not isinstance(stats, dict):
                            errors.append(f"{region_where}: must be an "
                                          f"object, "
                                          f"got {type(stats).__name__}")
                            continue
                        _check_number(errors, region_where, stats, "sites",
                                      integer=True)
                        for name in ("min_final_score",
                                     "mean_final_score"):
                            _check_number(errors, region_where, stats,
                                          name)
            if "shards" in health:
                shard_info = health["shards"]
                if not isinstance(shard_info, dict):
                    errors.append(f"{where}.health: 'shards' must be an "
                                  f"object, "
                                  f"got {type(shard_info).__name__}")
                else:
                    for name in ("groups", "objects"):
                        _check_number(errors, f"{where}.health.shards",
                                      shard_info, name, integer=True)
                    if not isinstance(shard_info.get("load"), dict):
                        errors.append(f"{where}.health.shards: missing "
                                      f"'load' object")
            if ("invariant_violations" in run
                    and isinstance(run["invariant_violations"], int)
                    and isinstance(health.get("invariant_violations"), int)
                    and run["invariant_violations"]
                    != health["invariant_violations"]):
                errors.append(
                    f"{where}: invariant_violations "
                    f"({run['invariant_violations']}) disagrees with "
                    f"health.invariant_violations "
                    f"({health['invariant_violations']})")
    if (isinstance(run.get("goodput_bits"), int)
            and isinstance(run.get("retransmitted_bits"), int)
            and isinstance(run.get("total_bits"), int)
            and run["goodput_bits"] + run["retransmitted_bits"]
            != run["total_bits"]):
        errors.append(
            f"{where}: goodput_bits ({run['goodput_bits']}) + "
            f"retransmitted_bits ({run['retransmitted_bits']}) must equal "
            f"total_bits ({run['total_bits']})")


def validate_bench(doc: Any) -> List[str]:
    """All schema violations in ``doc`` (empty list == valid)."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"document must be an object, got {type(doc).__name__}"]
    if doc.get("schema") != SCHEMA_ID:
        errors.append(f"'schema' must be {SCHEMA_ID!r}, "
                      f"got {doc.get('schema')!r}")
    if not _is_number(doc.get("created_unix")) or doc.get("created_unix") < 0:
        errors.append("'created_unix' must be a non-negative number")
    if not isinstance(doc.get("config"), dict):
        errors.append("'config' must be an object")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        errors.append("'runs' must be a non-empty array")
    else:
        for index, run in enumerate(runs):
            _validate_run(errors, index, run)
    return errors


def validate_file(path: str) -> List[str]:
    """Validate a JSON document on disk; parse errors are violations too."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return [f"cannot read {path}: {error}"]
    return validate_bench(doc)


def main(argv: List[str] | None = None) -> int:
    """``python -m repro.perf.schema FILE [FILE...]`` — exit 1 on errors."""
    paths = list(sys.argv[1:] if argv is None else argv)
    if not paths:
        print("usage: python -m repro.perf.schema BENCH_cluster.json [...]")
        return 2
    status = 0
    for path in paths:
        errors = validate_file(path)
        if errors:
            status = 1
            print(f"{path}: INVALID")
            for error in errors:
                print(f"  - {error}")
        else:
            print(f"{path}: ok ({SCHEMA_ID})")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
