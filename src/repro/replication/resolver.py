"""Conflict-resolution policies (§1, §2.1).

Conflict *detection* is the metadata's job; *resolution* is policy:

* **Manual** resolution excludes conflicting replicas from the system until
  a human merges them (the revision-control style); the system records the
  conflict and stops synchronizing the pair.  BRV suffices for such
  systems.
* **Automatic** resolution (reconciliation) merges the concurrent values
  into a new version without excluding anything; it requires CRV/SRV (or
  the full-vector baseline) and is followed by the §2.2 self-increment.

Resolvers operate on replica *values*; deterministic, commutative merge
functions keep eventual consistency honest regardless of reconciliation
order, and the stock ones below all have that property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, FrozenSet, Tuple

MergeFn = Callable[[Any, Any], Any]


@dataclass(frozen=True)
class ManualResolution:
    """Exclude conflicting replicas; no reconciliation (BRV territory)."""

    kind: str = "manual"


@dataclass(frozen=True)
class AutomaticResolution:
    """Reconcile with ``merge``; requires conflict-capable metadata."""

    merge: MergeFn
    kind: str = "automatic"


def union_merge(a: Any, b: Any) -> FrozenSet[Any]:
    """Set union — the classic convergent merge (shopping carts, tag sets)."""
    return frozenset(_as_set(a) | _as_set(b))


def _as_set(value: Any) -> FrozenSet[Any]:
    if isinstance(value, (set, frozenset)):
        return frozenset(value)
    return frozenset([value]) if value is not None else frozenset()


def log_merge(a: Any, b: Any) -> Tuple[Any, ...]:
    """Append-only log merge: deduplicated, deterministically ordered."""
    entries = set(_as_tuple(a)) | set(_as_tuple(b))
    return tuple(sorted(entries, key=repr))


def _as_tuple(value: Any) -> Tuple[Any, ...]:
    if isinstance(value, tuple):
        return value
    if isinstance(value, list):
        return tuple(value)
    return (value,) if value is not None else ()


def deterministic_pick(a: Any, b: Any) -> Any:
    """Pick one value deterministically (order-independent tiebreak).

    A stand-in for application-specific resolution when values cannot be
    merged structurally; both sites reconciling the same pair choose the
    same winner.
    """
    return max((a, b), key=repr)


def max_merge(a: Any, b: Any) -> Any:
    """Numeric max — convergent for monotonic counters."""
    return max(a, b)
