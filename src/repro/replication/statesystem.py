"""A complete state-transfer optimistic replication system (§2.1).

Sites hold at most one replica per object; any site may update its replica;
synchronization is a directional *pull* that overwrites the whole object
(state transfer).  Conflict detection is syntactic, through pluggable
metadata — plain version vectors (the traditional baseline, whole-vector
exchange), BRV, CRV, or SRV (the paper's incremental schemes) — and
resolution is either manual (exclude the pair) or automatic
(reconcile-and-increment, §2.2).

Every synchronization accounts its traffic in bits, split into metadata
(COMPARE + SYNC*) and payload (the object value), so the benchmark harness
can reproduce the paper's communication comparisons end to end.  When
``track_graph`` is on, the system also maintains the analytic replication
graph of every object (§4), which the CRG module coalesces to evaluate
Π sets and γ bounds against live SYNCS sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.core.order import Ordering
from repro.core.rotating import BasicRotatingVector
from repro.core.versionvector import VersionVector
from repro.errors import ConflictDetected, ReproError
from repro.graphs.replicationgraph import ReplicationGraph
from repro.net.stats import TransferStats
from repro.net.wire import Encoding
from repro.obs.metrics import MetricsRegistry, observe_session
from repro.obs.trace import Tracer
from repro.protocols.comparep import compare_remote
from repro.protocols.fullsync import sync_full_vector
from repro.protocols.messages import PayloadMsg
from repro.protocols.reports import VectorReceiverReport, VectorSenderReport
from repro.protocols.session import SessionResult, run_session
from repro.protocols.syncb import syncb_receiver, syncb_sender
from repro.protocols.syncc import syncc_receiver, syncc_sender
from repro.protocols.syncs import syncs_receiver, syncs_sender
from repro.replication.membership import SiteRegistry
from repro.replication.replica import (METADATA_KINDS, StateReplica,
                                       make_metadata)
from repro.replication.resolver import (AutomaticResolution, ManualResolution,
                                        deterministic_pick)

Resolution = Union[ManualResolution, AutomaticResolution]


def default_payload_size(value: Any) -> int:
    """Payload size estimate in bytes: the repr's UTF-8 length."""
    return len(repr(value).encode("utf-8"))


@dataclass
class SyncOutcome:
    """Everything one directional synchronization did and cost."""

    object_id: str
    src_site: str
    dst_site: str
    verdict: Ordering
    #: "none" (dst current), "pull" (dst overwritten), "reconcile"
    #: (automatic merge + increment), or "conflict" (manual exclusion).
    action: str
    metadata_bits: int = 0
    payload_bits: int = 0
    compare_session: Optional[SessionResult] = None
    sync_session: Optional[SessionResult] = None

    @property
    def total_bits(self) -> int:
        return self.metadata_bits + self.payload_bits

    @property
    def receiver_report(self) -> Optional[VectorReceiverReport]:
        if self.sync_session is None:
            return None
        report = self.sync_session.receiver_result
        return report if isinstance(report, VectorReceiverReport) else None

    @property
    def sender_report(self) -> Optional[VectorSenderReport]:
        if self.sync_session is None:
            return None
        report = self.sync_session.sender_result
        return report if isinstance(report, VectorSenderReport) else None


class StateTransferSystem:
    """Sites, objects, and pull-style synchronization over simulated wires.

    Args:
        metadata: one of ``"vv"``, ``"brv"``, ``"crv"``, ``"srv"``.
        resolution: :class:`ManualResolution` or :class:`AutomaticResolution`;
            defaults to automatic with a deterministic value pick.  BRV only
            supports manual resolution (§3.1) — combining it with automatic
            resolution raises at construction time.
        registry: shared site registry; created fresh when omitted.
        encoding: wire field widths; derived from the registry when omitted
            (after all sites are registered, or pass one explicitly for
            stable pricing).
        track_graph: maintain the analytic replication graph per object.
        payload_size: value → payload bytes estimate for state transfer.
        tracer: optional :class:`~repro.obs.trace.Tracer` threaded into
            every COMPARE and SYNC* session the system runs (one span per
            session, per-element semantic events).  ``None`` (default) is
            the zero-overhead off switch.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`
            receiving per-session instruments (bits-per-session histogram,
            messages-by-type counters) keyed by the metadata kind.
    """

    def __init__(self, *, metadata: str = "srv",
                 resolution: Optional[Resolution] = None,
                 registry: Optional[SiteRegistry] = None,
                 encoding: Optional[Encoding] = None,
                 track_graph: bool = True,
                 payload_size: Callable[[Any], int] = default_payload_size,
                 strict_conflicts: bool = False,
                 verify_wire: bool = False,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if metadata not in METADATA_KINDS:
            raise ValueError(f"unknown metadata kind {metadata!r}")
        if resolution is None:
            resolution = AutomaticResolution(deterministic_pick)
        if metadata == "brv" and isinstance(resolution, AutomaticResolution):
            raise ReproError(
                "BRV supports manual conflict resolution only (§3.1); "
                "use CRV or SRV for automatic reconciliation")
        self.metadata_kind = metadata
        self.resolution = resolution
        self.registry = registry if registry is not None else SiteRegistry()
        self._encoding = encoding
        self.track_graph = track_graph
        self.payload_size = payload_size
        self.strict_conflicts = strict_conflicts
        #: When set, every protocol session's messages are physically
        #: serialized through :class:`repro.net.codec.Codec` (encode →
        #: bits → decode) and the bit lengths are asserted against the
        #: priced traffic — end-to-end validation that the reported
        #: numbers are realizable wire formats.
        self.verify_wire = verify_wire
        self.tracer = tracer
        self.metrics = metrics

        self._replicas: Dict[Tuple[str, str], StateReplica] = {}
        self._graphs: Dict[str, ReplicationGraph] = {}
        self.traffic = TransferStats()
        self.outcomes: List[SyncOutcome] = []
        self.conflicts: List[Tuple[str, str, str]] = []  # (object, dst, src)

    # -- configuration ------------------------------------------------------------

    @property
    def encoding(self) -> Encoding:
        if self._encoding is not None:
            return self._encoding
        return self.registry.encoding()

    def freeze_encoding(self, max_updates_per_site: int = 2 ** 16) -> Encoding:
        """Fix the wire widths from the current membership (call after setup)."""
        self._encoding = self.registry.encoding(max_updates_per_site)
        return self._encoding

    # -- object and replica management ----------------------------------------------

    def create_object(self, site: str, object_id: str,
                      value: Any) -> StateReplica:
        """Create an object on ``site``; creation counts as the first update."""
        self.registry.add(site)
        key = (site, object_id)
        if key in self._replicas:
            raise ReproError(f"{site} already hosts {object_id!r}")
        meta = make_metadata(self.metadata_kind)
        replica = StateReplica(site, object_id, value, meta)
        self._record_update_metadata(replica)
        self._replicas[key] = replica
        if self.track_graph:
            graph = ReplicationGraph()
            node = graph.add_initial(self._snapshot(replica))
            graph.label(node.node_id, site)
            replica.node_id = node.node_id
            self._graphs[object_id] = graph
        return replica

    def replica(self, site: str, object_id: str) -> StateReplica:
        """The replica ``site`` hosts for ``object_id``."""
        try:
            return self._replicas[(site, object_id)]
        except KeyError:
            raise ReproError(f"{site} hosts no replica of {object_id!r}") from None

    def has_replica(self, site: str, object_id: str) -> bool:
        """True iff ``site`` hosts a replica of ``object_id``."""
        return (site, object_id) in self._replicas

    def replicas_of(self, object_id: str) -> List[StateReplica]:
        """Every replica of ``object_id``, ordered by site name."""
        return [r for (_, obj), r in sorted(self._replicas.items())
                if obj == object_id]

    def sites(self) -> List[str]:
        """All registered site names."""
        return self.registry.names()

    def graph(self, object_id: str) -> ReplicationGraph:
        """The analytic replication graph recorded for ``object_id``."""
        if not self.track_graph:
            raise ReproError("replication-graph tracking is disabled")
        return self._graphs[object_id]

    # -- updates -----------------------------------------------------------------------

    def update(self, site: str, object_id: str, value: Any) -> StateReplica:
        """Overwrite ``site``'s replica value with a local update."""
        replica = self.replica(site, object_id)
        if replica.conflicted:
            raise ConflictDetected(
                f"replica of {object_id!r} at {site} is excluded pending "
                f"manual resolution", site_a=site)
        replica.value = value
        self._record_update_metadata(replica)
        if self.track_graph:
            graph = self._graphs[object_id]
            node = graph.add_update(replica.node_id, self._snapshot(replica))
            graph.label(node.node_id, site)
            replica.node_id = node.node_id
        return replica

    def _record_update_metadata(self, replica: StateReplica) -> None:
        replica.updates += 1
        if isinstance(replica.meta, VersionVector):
            replica.meta.record_update(replica.site)
        else:
            replica.meta.record_update(replica.site)

    def _snapshot(self, replica: StateReplica) -> Tuple[Tuple[str, int], ...]:
        if isinstance(replica.meta, BasicRotatingVector):
            return tuple(replica.meta.elements())
        return tuple(sorted(replica.meta.items()))

    # -- synchronization ------------------------------------------------------------------

    def clone_replica(self, src_site: str, dst_site: str,
                      object_id: str) -> StateReplica:
        """First-time replication of an object onto a new site.

        Ships the full value plus metadata via the regular pull path after
        installing an empty replica (an empty vector precedes everything).
        """
        self.registry.add(dst_site)
        key = (dst_site, object_id)
        if key in self._replicas:
            raise ReproError(f"{dst_site} already hosts {object_id!r}")
        source = self.replica(src_site, object_id)
        replica = StateReplica(dst_site, object_id, None,
                               make_metadata(self.metadata_kind))
        if self.track_graph:
            replica.node_id = source.node_id  # provisional; pull confirms
        self._replicas[key] = replica
        self.pull(dst_site, src_site, object_id)
        return replica

    def pull(self, dst_site: str, src_site: str,
             object_id: str) -> SyncOutcome:
        """Synchronize: bring ``dst``'s replica up to date from ``src``."""
        dst = self.replica(dst_site, object_id)
        src = self.replica(src_site, object_id)
        if dst.conflicted or src.conflicted:
            raise ConflictDetected(
                f"replica pair ({dst_site}, {src_site}) of {object_id!r} is "
                f"excluded pending manual resolution",
                site_a=dst_site, site_b=src_site)
        if self.metadata_kind == "vv":
            outcome = self._pull_full_vector(dst, src)
        else:
            outcome = self._pull_rotating(dst, src)
        self.outcomes.append(outcome)
        if outcome.compare_session is not None:
            self.traffic.merge(outcome.compare_session.stats)
        if outcome.sync_session is not None:
            self.traffic.merge(outcome.sync_session.stats)
        if outcome.payload_bits:
            self.traffic.forward.record("PayloadMsg", outcome.payload_bits)
        if self.metrics is not None and outcome.sync_session is not None:
            observe_session(self.metrics, outcome.sync_session.stats,
                            protocol=self.metadata_kind)
        return outcome

    def sync_bidirectional(self, site_a: str, site_b: str,
                           object_id: str) -> Tuple[SyncOutcome, SyncOutcome]:
        """Anti-entropy exchange: pull a←b, then b←a."""
        first = self.pull(site_a, site_b, object_id)
        second = self.pull(site_b, site_a, object_id)
        return first, second

    # -- pull implementations --------------------------------------------------------------

    def _pull_full_vector(self, dst: StateReplica,
                          src: StateReplica) -> SyncOutcome:
        """Traditional baseline: whole vector ships; verdict computed locally.

        The full vector is transmitted in every case — that is what enables
        the receiver-side comparison — but it is only *merged* into the
        local metadata when the pull proceeds (a manual system excludes the
        conflicting pair without merging anything).
        """
        verdict = dst.meta.compare(src.meta)  # type: ignore[union-attr]
        manual_conflict = (verdict is Ordering.CONCURRENT
                           and isinstance(self.resolution, ManualResolution))
        if manual_conflict:
            session = None
            metadata_bits = self.encoding.full_vector_bits(len(src.meta))
            self.traffic.forward.record("FullVectorMsg", metadata_bits)
        else:
            session = sync_full_vector(dst.meta, src.meta,
                                       encoding=self.encoding)
            metadata_bits = session.stats.total_bits
        return self._apply_verdict(dst, src, verdict, session,
                                   metadata_bits=metadata_bits)

    def _pull_rotating(self, dst: StateReplica,
                       src: StateReplica) -> SyncOutcome:
        verdict, compare_session = compare_remote(dst.meta, src.meta,
                                                  encoding=self.encoding,
                                                  tracer=self.tracer)
        sync_session: Optional[SessionResult] = None
        if verdict in (Ordering.BEFORE, Ordering.CONCURRENT):
            if (verdict is Ordering.CONCURRENT
                    and isinstance(self.resolution, ManualResolution)):
                # Manual systems never reconcile metadata on the wire.
                sync_session = None
            else:
                sync_session = self._run_vector_sync(dst, src, verdict)
        metadata_bits = compare_session.stats.total_bits
        if sync_session is not None:
            metadata_bits += sync_session.stats.total_bits
        outcome = self._apply_verdict(dst, src, verdict, sync_session,
                                      metadata_bits=metadata_bits)
        outcome.compare_session = compare_session
        return outcome

    def _run_vector_sync(self, dst: StateReplica, src: StateReplica,
                         verdict: Ordering) -> SessionResult:
        kind = self.metadata_kind
        reconcile = verdict is Ordering.CONCURRENT
        tracer = self.tracer
        if kind == "brv":
            if reconcile:
                raise ReproError("SYNCB cannot reconcile concurrent vectors")
            sender = syncb_sender(src.meta, tracer=tracer)
            receiver = syncb_receiver(dst.meta, tracer=tracer)
        elif kind == "crv":
            sender = syncc_sender(src.meta, tracer=tracer)
            receiver = syncc_receiver(dst.meta, reconcile=reconcile,
                                      tracer=tracer)
        else:
            sender = syncs_sender(src.meta, tracer=tracer)
            receiver = syncs_receiver(dst.meta, reconcile=reconcile,
                                      tracer=tracer)
        if self.verify_wire:
            # The serialized path stays untraced: its codec pipeline does
            # its own bit-level asserts and is a validation harness, not a
            # measurement path.
            from repro.net.codec import Codec, run_session_serialized
            codec = Codec(self.encoding, self.registry)
            return run_session_serialized(
                sender, receiver, codec=codec,
                forward_channel=f"{kind}_fwd", backward_channel=f"{kind}_bwd")
        return run_session(sender, receiver, encoding=self.encoding,
                           tracer=tracer, span_name=f"SYNC{kind[0].upper()}")

    def _apply_verdict(self, dst: StateReplica, src: StateReplica,
                       verdict: Ordering,
                       sync_session: Optional[SessionResult], *,
                       metadata_bits: int) -> SyncOutcome:
        outcome = SyncOutcome(dst.object_id, src.site, dst.site, verdict,
                              action="none", metadata_bits=metadata_bits,
                              sync_session=sync_session)
        if verdict in (Ordering.EQUAL, Ordering.AFTER):
            return outcome
        if verdict is Ordering.BEFORE:
            outcome.action = "pull"
            dst.value = src.value
            outcome.payload_bits = PayloadMsg(
                self.payload_size(src.value)).bits(self.encoding)
            if self.track_graph:
                graph = self._graphs[dst.object_id]
                graph.label(src.node_id, dst.site)
                dst.node_id = src.node_id
            return outcome
        # CONCURRENT
        if isinstance(self.resolution, ManualResolution):
            outcome.action = "conflict"
            dst.conflicted = True
            src.conflicted = True
            self.conflicts.append((dst.object_id, dst.site, src.site))
            if self.strict_conflicts:
                raise ConflictDetected(
                    f"concurrent updates on {dst.object_id!r}",
                    site_a=dst.site, site_b=src.site)
            return outcome
        outcome.action = "reconcile"
        merged = self.resolution.merge(dst.value, src.value)
        dst.value = merged
        outcome.payload_bits = PayloadMsg(
            self.payload_size(src.value)).bits(self.encoding)
        merge_parents = (dst.node_id, src.node_id)
        # §2.2: the hosting site increments its own element as a separate
        # update right after reconciliation, restoring COMPARE's fresh-front
        # precondition.
        self._record_update_metadata(dst)
        if self.track_graph:
            graph = self._graphs[dst.object_id]
            left, right = merge_parents
            assert left is not None and right is not None
            pre_increment = self._pre_increment_snapshot(dst)
            merge_node = graph.add_merge(left, right, pre_increment)
            node = graph.add_update(merge_node.node_id, self._snapshot(dst))
            graph.label(node.node_id, dst.site)
            dst.node_id = node.node_id
        return outcome

    def _pre_increment_snapshot(self, replica: StateReplica
                                ) -> Tuple[Tuple[str, int], ...]:
        """The merge-node vector: the post-sync, pre-increment snapshot."""
        snapshot = list(self._snapshot(replica))
        for index, (site, value) in enumerate(snapshot):
            if site == replica.site:
                if value == 1:
                    del snapshot[index]
                else:
                    # The increment rotated the element to the front; the
                    # merge vector had it one update older, in an unknown
                    # old position — front is the closest faithful spot.
                    snapshot[index] = (site, value - 1)
                break
        return tuple(snapshot)

    # -- manual resolution ----------------------------------------------------------------

    def resolve_manually(self, site: str, object_id: str,
                         merged_value: Any) -> StateReplica:
        """A human merges an excluded pair: install the merged value at
        ``site``, max-merge the metadata out of band, and readmit every
        replica of the object that was excluded with it."""
        replica = self.replica(site, object_id)
        peers = [r for r in self.replicas_of(object_id) if r.conflicted]
        if not replica.conflicted:
            raise ReproError(f"replica at {site} is not conflicted")
        merged_vector = VersionVector()
        for peer in peers:
            merged_vector.merge(VersionVector(dict(self._snapshot(peer))))
        if isinstance(replica.meta, VersionVector):
            replica.meta = merged_vector
        else:
            rebuilt = make_metadata(self.metadata_kind)
            previous = None
            for peer_site, value in sorted(merged_vector.items()):
                element = rebuilt.order.rotate_after(previous, peer_site)  # type: ignore[union-attr]
                element.value = value
                previous = peer_site
            replica.meta = rebuilt
        replica.value = merged_value
        for peer in peers:
            peer.conflicted = False
        self._record_update_metadata(replica)
        if self.track_graph and len(peers) >= 2:
            graph = self._graphs[object_id]
            others = [p for p in peers if p is not replica]
            merge_node = graph.add_merge(replica.node_id, others[0].node_id,
                                         self._pre_increment_snapshot(replica))
            node = graph.add_update(merge_node.node_id, self._snapshot(replica))
            graph.label(node.node_id, site)
            replica.node_id = node.node_id
        return replica

    # -- consistency checks ---------------------------------------------------------------

    def is_consistent(self, object_id: str) -> bool:
        """True iff every (non-excluded) replica agrees on value and vector."""
        replicas = [r for r in self.replicas_of(object_id) if not r.conflicted]
        if len(replicas) <= 1:
            return True
        head = replicas[0]
        return all(r.value == head.value
                   and r.values_snapshot() == head.values_snapshot()
                   for r in replicas[1:])

    def values_consistent(self, object_id: str) -> bool:
        """True iff every replica agrees on the *value* (§2.1's semantic
        equivalence), regardless of vector state.

        Distinct from :meth:`is_consistent` because increment-on-merge can
        keep vectors churning after the values have long converged — e.g.
        two reconciliation waves chasing each other around a perfectly
        symmetric deterministic gossip ring (see
        ``tests/replication/test_antientropy.py::TestIncrementOscillation``).
        """
        replicas = [r for r in self.replicas_of(object_id) if not r.conflicted]
        if len(replicas) <= 1:
            return True
        head = replicas[0]
        return all(r.value == head.value for r in replicas[1:])

    def total_metadata_bits(self) -> int:
        """Metadata traffic accumulated over every synchronization."""
        return sum(o.metadata_bits for o in self.outcomes)

    def total_payload_bits(self) -> int:
        """Payload traffic accumulated over every synchronization."""
        return sum(o.payload_bits for o in self.outcomes)
