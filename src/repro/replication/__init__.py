"""Replication systems built on the paper's concurrency-control schemes.

* :class:`~repro.replication.statesystem.StateTransferSystem` — whole-object
  synchronization with pluggable vector metadata (VV / BRV / CRV / SRV).
* :class:`~repro.replication.opsystem.OpTransferSystem` — operation logs
  with causal graphs and incremental SYNCG exchange.
* :mod:`~repro.replication.resolver` — manual and automatic conflict
  resolution policies.
* :class:`~repro.replication.membership.SiteRegistry` — the membership
  manager that fixes wire field widths.
"""

from repro.replication.antientropy import (AntiEntropyConfig,
                                           AntiEntropyResult,
                                           AntiEntropySimulation,
                                           OpAntiEntropySimulation,
                                           compare_schemes)
from repro.replication.hybrid import HybridOpSystem
from repro.replication.membership import SiteRegistry
from repro.replication.opreplica import (Operation, OpReplica, counter_applier,
                                         kv_applier, log_applier)
from repro.replication.opsystem import OpSyncOutcome, OpTransferSystem
from repro.replication.replica import METADATA_KINDS, StateReplica, make_metadata
from repro.replication.resolver import (AutomaticResolution, ManualResolution,
                                        deterministic_pick, log_merge,
                                        max_merge, union_merge)
from repro.replication.statesystem import (StateTransferSystem, SyncOutcome,
                                           default_payload_size)
from repro.replication.threeway import (MergeResult, merge3, merge_heads,
                                        snapshot_applier)

__all__ = [
    "AntiEntropyConfig",
    "AntiEntropyResult",
    "AntiEntropySimulation",
    "AutomaticResolution",
    "HybridOpSystem",
    "METADATA_KINDS",
    "ManualResolution",
    "MergeResult",
    "OpAntiEntropySimulation",
    "OpReplica",
    "OpSyncOutcome",
    "OpTransferSystem",
    "Operation",
    "SiteRegistry",
    "StateReplica",
    "StateTransferSystem",
    "SyncOutcome",
    "compare_schemes",
    "counter_applier",
    "default_payload_size",
    "deterministic_pick",
    "kv_applier",
    "log_applier",
    "log_merge",
    "make_metadata",
    "max_merge",
    "merge3",
    "merge_heads",
    "snapshot_applier",
    "union_merge",
]
