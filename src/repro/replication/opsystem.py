"""A complete operation-transfer optimistic replication system (§6).

Instead of overwriting whole objects, sites log update *operations* and
synchronization ships only the missing ones.  Each replica carries a causal
graph over its operations; comparing replicas is an O(1) mutual-sink
membership check, and synchronizing graphs uses the paper's incremental
``SYNCG`` (or the whole-graph baseline, for comparison).

Concurrent lineages surface as a replica with two sinks after a pull:

* with :class:`~repro.replication.resolver.AutomaticResolution` the pulling
  site immediately appends a *merge operation* over both sinks (conflict
  reconciliation, "a new node is added as the new sink");
* with :class:`~repro.replication.resolver.ManualResolution` the replica is
  flagged and left with two heads — the distributed-revision-control
  workflow — until :meth:`OpTransferSystem.resolve_manually` commits a
  human merge.

Operation bodies ride along with the graph difference and are priced as
payload; the graph metadata itself is priced by the same encoding the
vector experiments use, so E4 can compare SYNCG against the full-graph
baseline end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.core.order import Ordering
from repro.errors import ConflictDetected, ReproError
from repro.graphs.causalgraph import CausalGraph, NodeId
from repro.net.stats import TransferStats
from repro.net.wire import Encoding
from repro.obs.metrics import MetricsRegistry, observe_session
from repro.obs.trace import Tracer
from repro.protocols.fullsync import sync_full_graph
from repro.protocols.messages import PayloadMsg
from repro.protocols.session import SessionResult
from repro.protocols.syncg import sync_graph
from repro.replication.membership import SiteRegistry
from repro.replication.opreplica import (Applier, Operation, OpId, OpReplica,
                                         log_applier)
from repro.replication.resolver import (AutomaticResolution, ManualResolution)
from repro.replication.statesystem import default_payload_size

Resolution = Union[ManualResolution, AutomaticResolution]


@dataclass
class OpSyncOutcome:
    """What one operation-transfer pull did and cost."""

    object_id: str
    src_site: str
    dst_site: str
    verdict: Ordering
    #: "none", "pull" (fast-forward), "merge" (pull + reconciliation op),
    #: or "conflict" (manual: two heads left pending).
    action: str
    ops_transferred: int = 0
    metadata_bits: int = 0
    payload_bits: int = 0
    sync_session: Optional[SessionResult] = None

    @property
    def total_bits(self) -> int:
        return self.metadata_bits + self.payload_bits


class OpTransferSystem:
    """Sites, operation logs, and incremental causal-graph synchronization.

    Args:
        applier: folds operations into materialized state.
        initial_state: the state before any operation applies.
        resolution: automatic (default; appends a structural merge op) or
            manual (leaves two heads pending human resolution).
        use_syncg: ship graph differences with SYNCG; ``False`` selects the
            traditional whole-graph baseline.
        encoding: wire field widths (node id width matters here).
        payload_size: operation payload → bytes estimate.
    """

    #: Fixed price of the sink-exchange comparison: two node ids + verdicts.
    def __init__(self, *, applier: Applier = log_applier,
                 initial_state: Any = (),
                 resolution: Optional[Resolution] = None,
                 use_syncg: bool = True,
                 registry: Optional[SiteRegistry] = None,
                 encoding: Optional[Encoding] = None,
                 payload_size: Callable[[Any], int] = default_payload_size,
                 verify_wire: bool = False,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if resolution is None:
            resolution = AutomaticResolution(lambda a, b: None)
        self.applier = applier
        self.initial_state = initial_state
        self.resolution = resolution
        self.use_syncg = use_syncg
        self.registry = registry if registry is not None else SiteRegistry()
        self._encoding = encoding
        self.payload_size = payload_size
        #: Serialize every graph session through the codec and assert
        #: priced bits == wire bits (see StateTransferSystem.verify_wire).
        #: Tuple operation ids ride through a shared NodeInterner, the
        #: in-process stand-in for content-derived wire identifiers.
        self.verify_wire = verify_wire
        #: Optional observability sinks (see StateTransferSystem).
        self.tracer = tracer
        self.metrics = metrics
        self._interner = None

        self._replicas: Dict[Tuple[str, str], OpReplica] = {}
        self._seq: Dict[Tuple[str, str], int] = {}
        self.traffic = TransferStats()
        self.outcomes: List[OpSyncOutcome] = []
        self.conflicts: List[Tuple[str, str, str]] = []

    @property
    def encoding(self) -> Encoding:
        if self._encoding is not None:
            return self._encoding
        return self.registry.encoding()

    # -- object and replica management -------------------------------------------------

    def _next_op_id(self, site: str, object_id: str) -> OpId:
        key = (site, object_id)
        self._seq[key] = self._seq.get(key, 0) + 1
        return (site, self._seq[key])

    def create_object(self, site: str, object_id: str,
                      payload: Any = None) -> OpReplica:
        """Create an object on ``site``; the creation is the source operation."""
        self.registry.add(site)
        key = (site, object_id)
        if key in self._replicas:
            raise ReproError(f"{site} already hosts {object_id!r}")
        op_id = self._next_op_id(site, object_id)
        graph = CausalGraph.with_source(op_id)
        replica = OpReplica(site, object_id, graph)
        replica.ops[op_id] = Operation(op_id, site, payload)
        self._replicas[key] = replica
        return replica

    def replica(self, site: str, object_id: str) -> OpReplica:
        """The replica ``site`` hosts for ``object_id``."""
        try:
            return self._replicas[(site, object_id)]
        except KeyError:
            raise ReproError(f"{site} hosts no replica of {object_id!r}") from None

    def replicas_of(self, object_id: str) -> List[OpReplica]:
        """Every replica of ``object_id``, ordered by site name."""
        return [r for (_, obj), r in sorted(self._replicas.items())
                if obj == object_id]

    def clone_replica(self, src_site: str, dst_site: str,
                      object_id: str) -> OpReplica:
        """First-time replication onto a new site (full fetch)."""
        self.registry.add(dst_site)
        key = (dst_site, object_id)
        if key in self._replicas:
            raise ReproError(f"{dst_site} already hosts {object_id!r}")
        source = self.replica(src_site, object_id)
        sources = source.graph.sources()
        graph = CausalGraph.with_source(sources[0])
        replica = OpReplica(dst_site, object_id, graph)
        root_body = source.ops.get(sources[0])
        if root_body is not None:
            replica.ops[sources[0]] = root_body
        # else: archived at the source — the hybrid snapshot pull covers it.
        self._replicas[key] = replica
        self.pull(dst_site, src_site, object_id)
        return replica

    # -- updates ----------------------------------------------------------------------------

    def update(self, site: str, object_id: str, payload: Any) -> Operation:
        """Log one operation on top of the replica's (unique) sink."""
        replica = self.replica(site, object_id)
        if replica.conflicted:
            raise ConflictDetected(
                f"replica of {object_id!r} at {site} has unresolved heads",
                site_a=site)
        op_id = self._next_op_id(site, object_id)
        replica.graph.append(op_id, replica.graph.sink)
        operation = Operation(op_id, site, payload)
        replica.ops[op_id] = operation
        return operation

    def state(self, site: str, object_id: str) -> Any:
        """Materialize the replica's current state."""
        replica = self.replica(site, object_id)
        return replica.materialize(self.applier, self.initial_state)

    # -- synchronization ----------------------------------------------------------------------

    def compare(self, site_a: str, site_b: str,
                object_id: str) -> Tuple[Ordering, int]:
        """O(1) replica comparison by sink exchange; returns (verdict, bits).

        Each side ships its sink identifier and answers one membership bit
        (§6: "comparison is therefore an optimal operation").
        """
        a = self.replica(site_a, object_id)
        b = self.replica(site_b, object_id)
        verdict = a.graph.compare(b.graph)
        bits = 2 * self.encoding.node_id_bits + 2
        self.traffic.forward.record("SinkExchange", bits // 2)
        self.traffic.backward.record("SinkExchange", bits - bits // 2)
        return verdict, bits

    def pull(self, dst_site: str, src_site: str,
             object_id: str) -> OpSyncOutcome:
        """Bring ``dst``'s graph up to the union with ``src``'s.

        Fast-forwards when behind, reconciles (or flags) when concurrent.
        """
        dst = self.replica(dst_site, object_id)
        src = self.replica(src_site, object_id)
        if dst.conflicted:
            raise ConflictDetected(
                f"replica of {object_id!r} at {dst_site} has unresolved heads",
                site_a=dst_site)
        verdict, compare_bits = self.compare(dst_site, src_site, object_id)
        outcome = OpSyncOutcome(object_id, src_site, dst_site, verdict,
                                action="none", metadata_bits=compare_bits)
        self.outcomes.append(outcome)
        if verdict in (Ordering.EQUAL, Ordering.AFTER):
            return outcome
        mark = dst.graph.version
        session = self._run_graph_sync(dst, src)
        outcome.sync_session = session
        outcome.metadata_bits += session.stats.total_bits
        self.traffic.merge(session.stats)
        if self.metrics is not None:
            observe_session(self.metrics, session.stats,
                            protocol="syncg" if self.use_syncg
                            else "full_graph")
        added = dst.graph.added_since(mark)
        outcome.ops_transferred = len(added)
        for node_id in sorted(added, key=repr):
            operation = src.ops.get(node_id)
            if operation is None:
                # Body archived at the sender (hybrid transfer): the graph
                # node still arrived; the snapshot fallback ships its effect.
                continue
            dst.ops[node_id] = operation
            outcome.payload_bits += PayloadMsg(
                self.payload_size(operation.payload)).bits(self.encoding)
        if outcome.payload_bits:
            self.traffic.forward.record("PayloadMsg", outcome.payload_bits)

        if verdict is Ordering.BEFORE:
            outcome.action = "pull"
            return outcome
        # CONCURRENT: the union graph has two sinks now.
        if isinstance(self.resolution, ManualResolution):
            outcome.action = "conflict"
            dst.conflicted = True
            self.conflicts.append((object_id, dst_site, src_site))
            return outcome
        outcome.action = "merge"
        self._append_merge(dst, self.resolution.merge(None, None))
        return outcome

    def _run_graph_sync(self, dst: OpReplica, src: OpReplica) -> SessionResult:
        """One graph session, optionally serialized through the codec."""
        if not self.verify_wire:
            if self.use_syncg:
                return sync_graph(dst.graph, src.graph,
                                  encoding=self.encoding, tracer=self.tracer)
            return sync_full_graph(dst.graph, src.graph,
                                   encoding=self.encoding)
        from repro.net.codec import (Codec, NodeInterner,
                                     run_session_serialized)
        from repro.protocols.fullsync import (full_graph_receiver,
                                              full_graph_sender)
        from repro.protocols.syncg import syncg_receiver, syncg_sender
        if self._interner is None:
            self._interner = NodeInterner()
        codec = Codec(self.encoding, self.registry, interner=self._interner)
        if self.use_syncg:
            return run_session_serialized(
                syncg_sender(src.graph), syncg_receiver(dst.graph),
                codec=codec, forward_channel="graph_fwd",
                backward_channel="graph_bwd")
        return run_session_serialized(
            full_graph_sender(src.graph), full_graph_receiver(dst.graph),
            codec=codec, forward_channel="full_graph",
            backward_channel="graph_bwd")

    def _append_merge(self, replica: OpReplica, payload: Any) -> Operation:
        sinks = replica.graph.sinks()
        if len(sinks) != 2:
            raise ReproError(f"expected 2 sinks to merge, found {len(sinks)}")
        op_id = self._next_op_id(replica.site, replica.object_id)
        replica.graph.merge_sinks(op_id, sinks[0], sinks[1])
        operation = Operation(op_id, replica.site, payload, is_merge=True)
        replica.ops[op_id] = operation
        return operation

    def resolve_manually(self, site: str, object_id: str,
                         payload: Any = None) -> Operation:
        """Commit a human merge of the two pending heads at ``site``."""
        replica = self.replica(site, object_id)
        if not replica.conflicted:
            raise ReproError(f"replica at {site} has no pending conflict")
        operation = self._append_merge(replica, payload)
        replica.conflicted = False
        return operation

    def sync_bidirectional(self, site_a: str, site_b: str,
                           object_id: str) -> Tuple[OpSyncOutcome, OpSyncOutcome]:
        """Anti-entropy exchange: pull a←b, then b←a."""
        return (self.pull(site_a, site_b, object_id),
                self.pull(site_b, site_a, object_id))

    # -- consistency ------------------------------------------------------------------------------

    def is_consistent(self, object_id: str) -> bool:
        """True iff all replicas hold identical graphs (hence equal states)."""
        replicas = [r for r in self.replicas_of(object_id) if not r.conflicted]
        if len(replicas) <= 1:
            return True
        head = replicas[0]
        return all(r.graph == head.graph for r in replicas[1:])
