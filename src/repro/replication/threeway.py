"""Three-way merging on top of causal graphs (§6's DVCS motivation).

The paper motivates operation transfer with distributed revision control:
"distributed revision control systems use the causal hierarchy for
versioning control and efficient three-way merging."  This module supplies
that last mile:

* :func:`merge3` — a diff3-style line merge of (base, left, right) with
  conflict markers, built on :mod:`difflib`;
* :func:`snapshot_applier` — the applier for snapshot-style operations
  (each op carries the whole content, like a commit's tree);
* :func:`merge_heads` — the DVCS workflow glue: find the merge base via
  :meth:`~repro.graphs.causalgraph.CausalGraph.merge_base`, three-way
  merge the two heads' contents, and commit the result as the merge
  operation of a conflicted :class:`~repro.replication.opsystem.OpTransferSystem`
  replica.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple

from repro.errors import ReproError
from repro.replication.opreplica import Operation
from repro.replication.opsystem import OpTransferSystem

#: Conflict markers, git-style.
MARKER_LEFT = "<<<<<<< left"
MARKER_MID = "======="
MARKER_RIGHT = ">>>>>>> right"


@dataclass(frozen=True)
class MergeResult:
    """Outcome of a three-way merge."""

    lines: Tuple[str, ...]
    conflicts: int

    @property
    def clean(self) -> bool:
        """True iff no conflict markers were emitted."""
        return self.conflicts == 0

    @property
    def text(self) -> str:
        return "\n".join(self.lines)


def _hunks(base: Sequence[str],
           side: Sequence[str]) -> List[Tuple[int, int, Tuple[str, ...]]]:
    """Non-equal diff hunks as ``(base_lo, base_hi, replacement lines)``."""
    matcher = difflib.SequenceMatcher(a=list(base), b=list(side),
                                      autojunk=False)
    return [(lo, hi, tuple(side[side_lo:side_hi]))
            for tag, lo, hi, side_lo, side_hi in matcher.get_opcodes()
            if tag != "equal"]


def _render(base: Sequence[str],
            hunks: List[Tuple[int, int, Tuple[str, ...]]],
            lo: int, hi: int) -> Tuple[str, ...]:
    """One side's text for the base window [lo, hi): hunks + kept lines."""
    out: List[str] = []
    position = lo
    for hunk_lo, hunk_hi, text in hunks:
        out.extend(base[position:hunk_lo])
        out.extend(text)
        position = hunk_hi
    out.extend(base[position:hi])
    return tuple(out)


def merge3(base: Sequence[str], left: Sequence[str],
           right: Sequence[str]) -> MergeResult:
    """Merge two line sequences that diverged from a common base.

    Classic three-way semantics: a region changed on one side only takes
    that side's text; identical changes collapse; different changes to
    overlapping (or touching) base regions emit a conflict block with
    git-style markers.
    """
    left_hunks = _hunks(base, left)
    right_hunks = _hunks(base, right)

    merged: List[str] = []
    conflicts = 0
    li = ri = 0
    cursor = 0
    while li < len(left_hunks) or ri < len(right_hunks):
        next_left = left_hunks[li][0] if li < len(left_hunks) else len(base)
        next_right = (right_hunks[ri][0] if ri < len(right_hunks)
                      else len(base))
        window_lo = min(next_left, next_right)
        merged.extend(base[cursor:window_lo])

        # Grow the window until no pending hunk on either side touches it.
        window_hi = window_lo
        left_start, right_start = li, ri
        changed = True
        while changed:
            changed = False
            while li < len(left_hunks) and left_hunks[li][0] <= window_hi:
                window_hi = max(window_hi, left_hunks[li][1])
                li += 1
                changed = True
            while ri < len(right_hunks) and right_hunks[ri][0] <= window_hi:
                window_hi = max(window_hi, right_hunks[ri][1])
                ri += 1
                changed = True

        left_piece = _render(base, left_hunks[left_start:li],
                             window_lo, window_hi)
        right_piece = _render(base, right_hunks[right_start:ri],
                              window_lo, window_hi)
        base_piece = tuple(base[window_lo:window_hi])

        if left_piece == right_piece:
            merged.extend(left_piece)
        elif left_piece == base_piece:
            merged.extend(right_piece)
        elif right_piece == base_piece:
            merged.extend(left_piece)
        else:
            merged.append(MARKER_LEFT)
            merged.extend(left_piece)
            merged.append(MARKER_MID)
            merged.extend(right_piece)
            merged.append(MARKER_RIGHT)
            conflicts += 1
        cursor = window_hi
    merged.extend(base[cursor:])
    return MergeResult(tuple(merged), conflicts)


def snapshot_applier(state: Any, op: Operation) -> Any:
    """Applier for snapshot operations: the payload *is* the content.

    Merge operations carry the three-way merged content; ordinary commits
    carry their full text (git-style trees, not deltas).  ``None`` payloads
    leave the state alone.
    """
    return state if op.payload is None else op.payload


def merge_heads(system: OpTransferSystem, site: str,
                object_id: str) -> Tuple[Operation, MergeResult]:
    """Resolve a two-head replica with a causal-graph three-way merge.

    Finds the merge base of the two sinks, materializes all three versions
    (base, left, right) by folding snapshots up to each node, runs
    :func:`merge3`, and commits the result via
    :meth:`OpTransferSystem.resolve_manually`.  Returns the merge
    operation and the merge result (whose ``conflicts`` count tells the
    caller whether human attention is still needed — markers and all, the
    content is committed either way, exactly like a VCS working tree).
    """
    replica = system.replica(site, object_id)
    sinks = replica.graph.sinks()
    if len(sinks) != 2:
        raise ReproError(f"expected 2 heads at {site}, found {len(sinks)}")
    left_head, right_head = sinks
    base_node = replica.graph.merge_base(left_head, right_head)

    def content_at(head) -> Tuple[str, ...]:
        covered = replica.graph.ancestors(head) | {head}
        state: Any = system.initial_state
        for node_id in replica.graph.topological_order():
            if node_id in covered:
                state = snapshot_applier(state, replica.ops[node_id])
        return tuple(state)

    base = content_at(base_node)
    left = content_at(left_head)
    right = content_at(right_head)
    result = merge3(base, left, right)
    operation = system.resolve_manually(site, object_id,
                                        payload=result.lines)
    return operation, result
