"""Hybrid transfer (§6): bounded operation logs with state-snapshot fallback.

The paper: "Hybrid transfer intermingles state and operation transfer.
For example, a system may preserve a short history of operations and when
a replica is too old, the entire object is transmitted.  As hybrid
transfer is a degeneration of operation transfer, we do not distinguish
the two models" — the SYNCG machinery is unchanged; only payload delivery
degrades to a snapshot when the log was truncated past what the puller
needs.

Truncation safety
-----------------

Dropping an operation's body is only convergence-safe when the operation
is *stable*: causally dominated by every replica's current sink, so every
future operation descends from it and every deterministic topological
order keeps the archived prefix in a fixed relative position.  (Bayou
establishes stability with a primary-commit protocol; this simulation
computes the stable frontier omnisciently from all replicas' sinks, a
documented stand-in — the point under study is the transfer economics,
not the commit protocol.)

On a pull whose difference includes archived bodies the system falls back
to shipping the sender's materialized baseline — the "entire object" path.
That is only meaningful when the puller is strictly behind; reconciling
*concurrent* lineages across a truncation horizon is impossible without
the bodies, and the system surfaces that as an error (the real failure
mode the paper's §2.2 alludes to: "excessive truncation is equivalent to
removing active sites").
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.core.order import Ordering
from repro.errors import ReproError
from repro.graphs.causalgraph import NodeId
from repro.protocols.messages import PayloadMsg
from repro.replication.opreplica import OpReplica
from repro.replication.opsystem import OpSyncOutcome, OpTransferSystem


class HybridOpSystem(OpTransferSystem):
    """An operation-transfer system whose logs can be truncated.

    Use :meth:`truncate_history` to fold stable operations into a per-
    replica baseline snapshot; pulls transparently fall back to snapshot
    ("whole object") transfer when the difference crosses a truncation
    horizon.  Everything else — SYNCG, comparison, merge operations —
    behaves exactly as in :class:`OpTransferSystem`.
    """

    # -- stability ---------------------------------------------------------------

    def stable_frontier(self, object_id: str) -> Set[NodeId]:
        """Operations causally dominated by *every* replica's sink.

        These are safe to archive anywhere: all future operations descend
        from some current sink and therefore from every stable node.
        """
        replicas = self.replicas_of(object_id)
        if not replicas:
            return set()
        common: Optional[Set[NodeId]] = None
        for replica in replicas:
            covered: Set[NodeId] = set()
            for sink in replica.graph.sinks():
                covered |= replica.graph.ancestors(sink)
                covered.add(sink)
            common = covered if common is None else common & covered
        return common or set()

    # -- truncation ----------------------------------------------------------------

    def truncate_history(self, site: str, object_id: str, *,
                         keep_payloads: int = 0) -> int:
        """Archive this replica's stable prefix, keeping the newest
        ``keep_payloads`` stable bodies unarchived.  Returns how many
        operation bodies were dropped.
        """
        replica = self.replica(site, object_id)
        stable = self.stable_frontier(object_id)
        # Archive the longest stable *prefix of the canonical topological
        # order of the global union graph*.  Prefix-ness matters on both
        # sides of the fold: a concurrent op — already existing at another
        # replica but not here, or created in the future — must never sort
        # before an archived node.  The union prefix guarantees it:
        # in-flight ops are in the union and cut the prefix short if they
        # tie-break early, future ops descend from some current sink and
        # hence from every stable node, and the relative canonical order of
        # existing nodes never changes as graphs grow.  (A deployment gets
        # the same guarantee from a commit protocol that finalizes the
        # order of stable operations, à la Bayou; the union graph is this
        # simulation's omniscient stand-in, like ``stable_frontier``.)
        union = None
        for peer in self.replicas_of(object_id):
            union = (peer.graph.copy() if union is None
                     else union.union_with(peer.graph))
        assert union is not None
        ordered: List[NodeId] = []
        for node_id in union.topological_order():
            if node_id not in stable:
                break
            ordered.append(node_id)
        if keep_payloads:
            ordered = ordered[:max(0, len(ordered) - keep_payloads)]
        to_archive = [n for n in ordered if n not in replica.archived]
        if not to_archive:
            return 0
        if self.tracer is not None:
            self.tracer.event("truncate", party=site,
                              archived=len(to_archive))
        if self.metrics is not None:
            self.metrics.counter("hybrid.truncations").inc()
            self.metrics.counter("hybrid.ops_archived").inc(len(to_archive))
        # Fold in canonical order on top of the existing baseline.
        state = (replica.baseline_state if replica.archived
                 else self.initial_state)
        for node_id in ordered:
            if node_id in replica.archived:
                continue  # already inside the baseline
            state = self.applier(state, replica.ops[node_id])
        replica.baseline_state = state
        replica.archived = frozenset(set(replica.archived) | set(ordered))
        dropped = 0
        for node_id in to_archive:
            if node_id in replica.ops:
                del replica.ops[node_id]
                dropped += 1
        return dropped

    def log_length(self, site: str, object_id: str) -> int:
        """Operation bodies currently retained at this replica."""
        return len(self.replica(site, object_id).ops)

    # -- pull with snapshot fallback ----------------------------------------------

    def pull(self, dst_site: str, src_site: str,
             object_id: str) -> OpSyncOutcome:
        """Pull with snapshot fallback when the diff crosses a truncation
        horizon; otherwise exactly :meth:`OpTransferSystem.pull`."""
        dst = self.replica(dst_site, object_id)
        src = self.replica(src_site, object_id)
        verdict = dst.graph.compare(src.graph)
        needs_fallback = False
        if verdict in (Ordering.BEFORE, Ordering.CONCURRENT):
            missing = src.graph.node_ids() - dst.graph.node_ids()
            needs_fallback = any(node_id in src.archived
                                 for node_id in missing)
        if not needs_fallback:
            return super().pull(dst_site, src_site, object_id)
        if verdict is Ordering.CONCURRENT:
            raise ReproError(
                f"cannot reconcile {object_id!r}: {src_site}'s log is "
                f"truncated past the common ancestor of the concurrent "
                f"lineages (excessive truncation, §2.2)")
        if self.tracer is not None:
            self.tracer.event("snapshot_fallback", party=dst_site,
                              peer=src_site)
        if self.metrics is not None:
            self.metrics.counter("hybrid.snapshot_fallbacks").inc()
        return self._pull_snapshot(dst, src)

    def _pull_snapshot(self, dst: OpReplica,
                       src: OpReplica) -> OpSyncOutcome:
        """The whole-object path: the puller becomes a copy of the sender.

        Graph metadata still travels via the configured graph protocol, so
        concurrency control stays exact; *payload* delivery switches to the
        sender's baseline snapshot plus its retained live bodies.  The
        puller's own archive bookkeeping is replaced wholesale — mixing two
        baselines folded over different prefixes is not meaningful.
        """
        outcome = super().pull(dst.site, src.site, dst.object_id)
        # super().pull unioned the graphs and copied the bodies src still
        # retains for *new* nodes.  Adopt the baseline, then backfill any
        # retained body the puller lacks (e.g. it had archived deeper).
        dst.baseline_state = src.baseline_state
        dst.archived = src.archived
        for node_id, operation in src.ops.items():
            if node_id not in dst.ops:
                dst.ops[node_id] = operation
                bits = PayloadMsg(
                    self.payload_size(operation.payload)).bits(self.encoding)
                outcome.payload_bits += bits
                self.traffic.forward.record("PayloadMsg", bits)
        for node_id in list(dst.ops):
            if node_id in dst.archived:
                del dst.ops[node_id]
        snapshot_bits = PayloadMsg(
            self.payload_size(src.baseline_state)).bits(self.encoding)
        outcome.payload_bits += snapshot_bits
        outcome.action = "snapshot"
        self.traffic.forward.record("PayloadMsg", snapshot_bits)
        return outcome
